//! The [`SatBackend`] trait: the minimal incremental-solving surface the
//! rest of the stack (and the `cbq sat` tool) programs against.
//!
//! Two implementations ship with the crate:
//!
//! * [`crate::Solver`] — the production arena-based CDCL solver;
//! * [`crate::reference::ReferenceSolver`] — exhaustive enumeration,
//!   kept as a differential oracle for tests and for cross-checking small
//!   instances (`cbq sat --backend reference`).

use crate::proof::{ProofLog, ProofMode};
use crate::reference::ReferenceSolver;
use crate::solver::Solver;
use crate::types::{SatLit, SatResult, SatVar};

/// The incremental interface shared by every solver backend.
///
/// ```
/// use cbq_sat::{SatBackend, SatResult, Solver};
/// use cbq_sat::reference::ReferenceSolver;
///
/// fn tiny_check<B: SatBackend>(s: &mut B) -> SatResult {
///     let a = s.new_var();
///     let b = s.new_var();
///     s.add_clause(&[a.pos(), b.pos()]);
///     s.solve_with(&[a.neg(), b.neg()])
/// }
/// assert_eq!(tiny_check(&mut Solver::new()), SatResult::Unsat);
/// assert_eq!(tiny_check(&mut ReferenceSolver::new()), SatResult::Unsat);
/// ```
pub trait SatBackend {
    /// Adds a fresh variable.
    fn new_var(&mut self) -> SatVar;

    /// Number of variables.
    fn num_vars(&self) -> usize;

    /// Adds a clause; `false` if the database became trivially
    /// unsatisfiable.
    fn add_clause(&mut self, lits: &[SatLit]) -> bool;

    /// Solves under the given assumptions.
    fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult;

    /// Solves with no assumptions.
    fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Model value of `v` after a [`SatResult::Sat`] answer.
    fn value(&self, v: SatVar) -> Option<bool>;

    /// Sets (or clears) the per-call conflict budget; backends without a
    /// notion of conflicts may ignore it.
    fn set_conflict_budget(&mut self, budget: Option<u64>);

    /// Selects how much resolution provenance the backend records.
    /// Backends default to no proof support; see
    /// [`crate::Solver::set_proof_mode`] for the caveats (must be called
    /// before any clause is added).
    fn set_proof_mode(&mut self, mode: ProofMode) {
        let _ = mode;
    }

    /// The recorded proof log, when a mode other than `Off` is active.
    fn proof(&self) -> Option<&ProofLog> {
        None
    }

    /// Serialises the logged derivation as a DRAT proof; `Some` only
    /// after an assumption-free [`SatResult::Unsat`] answer.
    fn drat_proof(&self) -> Option<String> {
        self.proof().and_then(|p| p.to_drat())
    }
}

impl SatBackend for Solver {
    fn new_var(&mut self) -> SatVar {
        Solver::new_var(self)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        Solver::add_clause(self, lits)
    }

    fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult {
        Solver::solve_with(self, assumptions)
    }

    fn value(&self, v: SatVar) -> Option<bool> {
        Solver::value(self, v)
    }

    fn set_conflict_budget(&mut self, budget: Option<u64>) {
        Solver::set_conflict_budget(self, budget)
    }

    fn set_proof_mode(&mut self, mode: ProofMode) {
        Solver::set_proof_mode(self, mode)
    }

    fn proof(&self) -> Option<&ProofLog> {
        Solver::proof(self)
    }
}

impl SatBackend for ReferenceSolver {
    fn new_var(&mut self) -> SatVar {
        ReferenceSolver::new_var(self)
    }

    fn num_vars(&self) -> usize {
        ReferenceSolver::num_vars(self)
    }

    fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        ReferenceSolver::add_clause(self, lits)
    }

    fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult {
        ReferenceSolver::solve_with(self, assumptions)
    }

    fn value(&self, v: SatVar) -> Option<bool> {
        ReferenceSolver::value(self, v)
    }

    fn set_conflict_budget(&mut self, _budget: Option<u64>) {
        // Enumeration has no conflicts to bound; the variable-count cap
        // already keeps every call finite.
    }

    fn set_proof_mode(&mut self, mode: ProofMode) {
        ReferenceSolver::set_proof_mode(self, mode)
    }

    fn proof(&self) -> Option<&ProofLog> {
        ReferenceSolver::proof(self)
    }
}

#[cfg(test)]
mod tests {
    // The pigeonhole construction reads clearest with explicit indices.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn load_php32<B: SatBackend>(s: &mut B) {
        let v: Vec<Vec<SatVar>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            let clause: Vec<SatLit> = row.iter().map(|x| x.pos()).collect();
            s.add_clause(&clause);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
                }
            }
        }
    }

    #[test]
    fn backends_agree_through_the_trait() {
        let mut cdcl = Solver::new();
        let mut oracle = ReferenceSolver::new();
        load_php32(&mut cdcl);
        load_php32(&mut oracle);
        assert_eq!(cdcl.num_vars(), oracle.num_vars());
        assert_eq!(SatBackend::solve(&mut cdcl), SatResult::Unsat);
        assert_eq!(SatBackend::solve(&mut oracle), SatResult::Unsat);
    }

    #[test]
    fn trait_objects_work() {
        let mut backends: Vec<Box<dyn SatBackend>> =
            vec![Box::new(Solver::new()), Box::new(ReferenceSolver::new())];
        for b in &mut backends {
            let a = b.new_var();
            b.add_clause(&[a.pos()]);
            assert_eq!(b.solve(), SatResult::Sat);
            assert_eq!(b.value(a), Some(true));
            assert_eq!(b.solve_with(&[a.neg()]), SatResult::Unsat);
        }
    }
}
