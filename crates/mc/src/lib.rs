//! # cbq-mc — unbounded model checking engines
//!
//! The traversal layer of the DATE 2005 reproduction. The headline engine
//! is [`CircuitUmc`] — the paper's Section 3 routine: backward
//! breadth-first reachability from the complement of the property, with
//! **state sets represented as AIGs**, pre-image computed by
//! *quantification by substitution* (in-lining of the next-state
//! functions) followed by circuit-based quantification of the primary
//! inputs, and all fixpoint/intersection tests delegated to the SAT
//! engine.
//!
//! Alongside it, every method the paper compares against or combines with
//! (Section 4):
//!
//! * [`BddUmc`] — classical canonical-representation reachability (the
//!   baseline the paper wants to escape), backward and forward;
//! * [`Bmc`] — bounded model checking (Biere et al. [1]);
//! * [`KInduction`] — inductive unbounded verification with simple-path
//!   strengthening (Sheeran et al. [5]);
//! * [`ganai`] — all-solutions SAT pre-image with *circuit cofactoring*
//!   (Ganai, Gupta, Ashar [2]), usable standalone or as the
//!   residual-variable fallback of partial circuit quantification — the
//!   hybrid the paper proposes ("our approach could dramatically decrease
//!   the amount of decision (input) variables to be processed by SAT
//!   based pre-image").
//!
//! All engines consume an immutable [`cbq_ckt::Network`] and return a
//! [`Verdict`]; `Unsafe` verdicts carry a [`cbq_ckt::Trace`] that replays
//! concretely on the network.
//!
//! ## Example
//!
//! ```
//! use cbq_ckt::generators;
//! use cbq_mc::{CircuitUmc, Verdict};
//!
//! let net = generators::token_ring(4);
//! let run = CircuitUmc::default().check(&net);
//! assert!(matches!(run.verdict, Verdict::Safe { .. }));
//!
//! let buggy = generators::token_ring_bug(4);
//! let run = CircuitUmc::default().check(&buggy);
//! match run.verdict {
//!     Verdict::Unsafe { trace } => assert!(trace.validates(&buggy)),
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd_umc;
mod bmc;
mod circuit_umc;
mod forward_umc;
mod induction;
mod verdict;

pub mod explicit;
pub mod ganai;
pub mod preimage;

pub use crate::bdd_umc::{BddDirection, BddUmc, BddUmcStats};
pub use crate::bmc::{Bmc, BmcStats};
pub use crate::circuit_umc::{CircuitUmc, CircuitUmcStats, ResidualPolicy};
pub use crate::forward_umc::{ForwardCircuitUmc, ForwardCircuitUmcStats};
pub use crate::induction::{KInduction, KInductionStats};
pub use crate::verdict::{McRun, Verdict};
