//! # cbq-synth — synthesis-based optimisation of circuit state sets
//!
//! Implements the **optimisation phase** of the DATE 2005 paper
//! (Section 2.2): after the cofactors of a quantified variable are merged,
//! "there is still a margin for size reduction, because we do not need
//! individual representations for F₁ and F₀, but we must represent their
//! disjunction F₁ ∨ F₀". Any transformation `F₁ ∨ F₀ → F₁' ∨ F₀'` with the
//! same disjunction is allowed.
//!
//! The passes provided here:
//!
//! * [`restrash`] — rebuilds a cone through the AIG's hashing and local
//!   rewriting rules (constant propagation, factorisation by sharing);
//! * [`dc_simplify`] — the paper's main transformation: using the *onset of
//!   the reference cofactor as an input don't-care set*, nodes of the other
//!   cofactor are replaced by constants or merged with existing nodes. A
//!   guess `n'` is valid iff `(n ⊕ n') ∧ ¬F_ref` is unsatisfiable — "the
//!   above check can be easily achieved by a SAT solver". Candidates are
//!   guessed by care-set-masked simulation, exactly two kinds as in the
//!   paper: *constant value (redundancy)* and *merge, modulo
//!   complementation*;
//! * [`odc_simplify`] — the observability variant: a transform is accepted
//!   when the difference is "not observable on the output of F₁ ∨ F₀",
//!   validated by the extra equivalence check `F₁ ∨ F₀ ≡ F₁ ∨ F₀'`
//!   (equivalently, redundancy of the comparing EXOR gate);
//! * [`redundancy_removal`] — stuck-at-style redundancy removal on a single
//!   function: AND nodes replaceable by a constant without changing the
//!   root are eliminated;
//! * [`optimize_disjunction`] — the driver used by the quantification
//!   engine: mutually simplifies both cofactors.
//!
//! ## Example
//!
//! ```
//! use cbq_aig::Aig;
//! use cbq_cnf::AigCnf;
//! use cbq_synth::{dc_simplify, OptConfig};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input().lit();
//! let b = aig.add_input().lit();
//! let c = aig.add_input().lit();
//! // Reference cofactor: a. Target: (!a & b & c).
//! // Outside the DC set (i.e. where !a holds) the target equals (b & c).
//! let t0 = aig.and(!a, b);
//! let target = aig.and(t0, c);
//! let mut cnf = AigCnf::new();
//! let (smaller, _stats) = dc_simplify(&mut aig, a, target, &mut cnf, &OptConfig::default());
//! assert!(aig.cone_size(smaller) < aig.cone_size(target));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use cbq_aig::sim::BitSim;
use cbq_aig::{Aig, Lit, Node, Var};
use cbq_cnf::{AigCnf, EquivResult};

/// Configuration for the optimisation passes.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Simulation words used for candidate guessing.
    pub sim_words: usize,
    /// Seed for simulation patterns.
    pub seed: u64,
    /// Conflict budget per validation SAT check.
    pub sat_budget: Option<u64>,
    /// Maximum constant/merge validation checks per pass.
    pub max_checks: usize,
    /// Enable the observability-don't-care variant.
    pub use_odc: bool,
    /// Maximum ODC validation checks per pass (each needs a full
    /// equivalence proof, so keep this small).
    pub max_odc_checks: usize,
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            sim_words: 4,
            seed: 0xDC0DE,
            sat_budget: Some(10_000),
            max_checks: 512,
            use_odc: false,
            max_odc_checks: 32,
        }
    }
}

/// Counters describing what an optimisation pass accomplished.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Nodes of the target cone before the pass.
    pub nodes_before: usize,
    /// Nodes of the target cone after the pass.
    pub nodes_after: usize,
    /// Constant-replacement candidates validated by SAT.
    pub const_applied: usize,
    /// Merge candidates validated by SAT.
    pub merge_applied: usize,
    /// Transforms accepted by the ODC check.
    pub odc_applied: usize,
    /// SAT validation checks issued.
    pub checks: u64,
    /// Checks rejected (candidate was simulation noise).
    pub rejected: u64,
}

/// Rebuilds the cones of `roots` through the manager's hashing and local
/// rewriting rules, dropping structure the rules can now simplify.
///
/// Cheap (no SAT) and always sound; returns the rebuilt roots.
pub fn restrash(aig: &mut Aig, roots: &[Lit]) -> Vec<Lit> {
    let cone = aig.collect_cone(roots);
    // Dense memo (no cone index exceeds a root's). Every gate is
    // deliberately re-issued through `Aig::and` — unlike compose's
    // identity shortcut, the whole point here is letting remapped fanins
    // re-trigger the two-level rules.
    let top = roots.iter().map(|r| r.var().index()).max().unwrap_or(0);
    let mut memo = vec![Lit::FALSE; top + 1];
    for v in cone {
        memo[v.index()] = match aig.node(v) {
            Node::Const => Lit::FALSE,
            Node::Input { .. } => v.lit(),
            Node::And { f0, f1 } => {
                let a = memo[f0.var().index()].xor_sign(f0.is_complemented());
                let b = memo[f1.var().index()].xor_sign(f1.is_complemented());
                aig.and(a, b)
            }
        };
    }
    roots
        .iter()
        .map(|r| memo[r.var().index()].xor_sign(r.is_complemented()))
        .collect()
}

/// Simplifies `target` under the input don't-care set given by the onset
/// of `dc_ref` (Section 2.2): the result may differ from `target`
/// anywhere `dc_ref` is true, so it is interchangeable with `target`
/// inside the disjunction `dc_ref ∨ target`.
///
/// Candidates (constants and merges, modulo complementation) are guessed
/// by care-masked simulation and validated by the SAT check
/// `(n ⊕ n') ∧ ¬dc_ref` unsatisfiable.
pub fn dc_simplify(
    aig: &mut Aig,
    dc_ref: Lit,
    target: Lit,
    cnf: &mut AigCnf,
    cfg: &OptConfig,
) -> (Lit, OptStats) {
    let mut stats = OptStats {
        nodes_before: aig.cone_size(target),
        ..OptStats::default()
    };
    if dc_ref == Lit::TRUE {
        // Everything is don't-care; the disjunction is already true.
        stats.nodes_after = 0;
        return (Lit::FALSE, stats);
    }
    if dc_ref == Lit::FALSE || target.is_const() {
        stats.nodes_after = stats.nodes_before;
        return (target, stats);
    }
    let care = !dc_ref;
    let sim = BitSim::random(aig, cfg.sim_words.max(1), cfg.seed);
    let words = sim.words();
    let care_sig: Vec<u64> = sim.signature(care);

    // Group cone nodes of `target` by care-masked signature (normalising
    // the phase on the first care bit), seeding with the constant.
    let masked = |l: Lit| -> (Vec<u64>, bool) {
        // Normalise phase by the first care-bit value of the node.
        let mut flip = false;
        'outer: for (w, &c) in care_sig.iter().enumerate().take(words) {
            if c != 0 {
                let bit = c.trailing_zeros();
                flip = (sim.lit_word(l, w) >> bit) & 1 != 0;
                break 'outer;
            }
        }
        let sig = (0..words)
            .map(|w| (sim.lit_word(l.xor_sign(flip), w)) & care_sig[w])
            .collect();
        (sig, flip)
    };

    let cone = aig.collect_cone(&[target]);
    // Open-addressing class table; unlike a `HashMap`, classes come back
    // in first-insertion (= ascending node) order, so the merge pass
    // below is deterministic.
    let mut groups = cbq_aig::SigClasses::with_capacity(cone.len());
    let (zero_sig, _) = masked(Lit::FALSE);
    groups.insert(&zero_sig, Lit::FALSE);
    for v in &cone {
        if *v == Var::CONST {
            continue;
        }
        let (sig, flip) = masked(v.lit());
        groups.insert(&sig, v.lit().xor_sign(flip));
    }

    let mut merges: HashMap<Var, Lit> = HashMap::new();
    let mut checks = 0usize;
    for (_, mut members) in groups.into_entries() {
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        let repr = members[0];
        for &member in &members[1..] {
            if checks >= cfg.max_checks {
                break;
            }
            if merges.contains_key(&member.var()) || member.var() == repr.var() {
                continue;
            }
            checks += 1;
            stats.checks += 1;
            // Valid iff (member ⊕ repr) ∧ care is UNSAT.
            let diff = aig.xor(member, repr);
            match cnf.prove_implies(aig, care, !diff, cfg.sat_budget) {
                EquivResult::Equiv => {
                    merges.insert(member.var(), repr.xor_sign(member.is_complemented()));
                    if repr.is_const() {
                        stats.const_applied += 1;
                    } else {
                        stats.merge_applied += 1;
                    }
                }
                _ => stats.rejected += 1,
            }
        }
    }
    let new_target = apply_subst(aig, target, &merges);
    stats.nodes_after = aig.cone_size(new_target);
    (new_target, stats)
}

/// Observability-don't-care simplification (Section 2.2's "further
/// optimization degree"): node transforms inside `target` are accepted if
/// the *disjunction* `dc_ref ∨ target` is unchanged, even where the node
/// value differs within the care set.
///
/// Each accepted transform needs a full equivalence check
/// `dc_ref ∨ target ≡ dc_ref ∨ target'` — the redundancy check of the
/// EXOR gate comparing the old and new node — so this pass is budgeted
/// separately and applied sequentially.
pub fn odc_simplify(
    aig: &mut Aig,
    dc_ref: Lit,
    target: Lit,
    cnf: &mut AigCnf,
    cfg: &OptConfig,
) -> (Lit, OptStats) {
    let mut stats = OptStats {
        nodes_before: aig.cone_size(target),
        ..OptStats::default()
    };
    let mut current = target;
    let mut checks = 0usize;
    let whole = aig.or(dc_ref, target);
    // Try replacing each AND node (largest cones first) by a constant and,
    // failing that, by its own fanins — accepting whenever the disjunction
    // is preserved.
    let mut nodes: Vec<Var> = aig
        .collect_cone(&[current])
        .into_iter()
        .filter(|v| aig.node(*v).is_and())
        .collect();
    nodes.sort_unstable_by_key(|v| std::cmp::Reverse(aig.node_level(*v)));
    for v in nodes {
        if checks >= cfg.max_odc_checks {
            break;
        }
        if !aig.support_contains(current, v) && current.var() != v {
            continue; // already rewritten away
        }
        let (f0, f1) = match aig.node(v) {
            Node::And { f0, f1 } => (f0, f1),
            _ => continue,
        };
        for candidate in [Lit::FALSE, Lit::TRUE, f0, f1] {
            if checks >= cfg.max_odc_checks {
                break;
            }
            checks += 1;
            stats.checks += 1;
            let subst = HashMap::from([(v, candidate)]);
            let trial = apply_subst(aig, current, &subst);
            if trial == current {
                continue;
            }
            let trial_whole = aig.or(dc_ref, trial);
            if aig.cone_size(trial_whole) >= aig.cone_size(whole) {
                stats.rejected += 1;
                continue;
            }
            match cnf.prove_equiv(aig, whole, trial_whole, cfg.sat_budget) {
                EquivResult::Equiv => {
                    current = trial;
                    stats.odc_applied += 1;
                    break;
                }
                _ => stats.rejected += 1,
            }
        }
    }
    stats.nodes_after = aig.cone_size(current);
    (current, stats)
}

/// Stuck-at-style redundancy removal: AND nodes of the cone of `root`
/// that can be replaced by a constant without changing `root` are
/// eliminated. Returns the (possibly) smaller root.
///
/// "As our main goal is finding merge points, we are more interested in
/// finding redundancies, than good test patterns for faults."
pub fn redundancy_removal(
    aig: &mut Aig,
    root: Lit,
    cnf: &mut AigCnf,
    cfg: &OptConfig,
) -> (Lit, OptStats) {
    let mut stats = OptStats {
        nodes_before: aig.cone_size(root),
        ..OptStats::default()
    };
    let sim = BitSim::random(aig, cfg.sim_words.max(1), cfg.seed);
    let mut current = root;
    let mut checks = 0usize;
    let nodes: Vec<Var> = aig
        .collect_cone(&[root])
        .into_iter()
        .filter(|v| aig.node(*v).is_and())
        .collect();
    for v in nodes {
        if checks >= cfg.max_checks {
            break;
        }
        if !aig.support_contains(current, v) && current.var() != v {
            continue;
        }
        // Simulation guess: a node that never (or always) fires is a
        // constant-redundancy candidate.
        let sig = sim.signature(v.lit());
        let candidate = if sig.iter().all(|w| *w == 0) {
            Lit::FALSE
        } else if sig.iter().all(|w| *w == !0u64) {
            Lit::TRUE
        } else {
            continue;
        };
        checks += 1;
        stats.checks += 1;
        let subst = HashMap::from([(v, candidate)]);
        let trial = apply_subst(aig, current, &subst);
        if trial == current {
            continue;
        }
        match cnf.prove_equiv(aig, current, trial, cfg.sat_budget) {
            EquivResult::Equiv => {
                current = trial;
                stats.const_applied += 1;
            }
            _ => stats.rejected += 1,
        }
    }
    stats.nodes_after = aig.cone_size(current);
    (current, stats)
}

/// Mutually simplifies the two cofactors of a disjunction (the paper's
/// category-1 optimisation): `f0` is simplified under the onset of `f1`,
/// then `f1` under the onset of the new `f0`; optionally the ODC pass
/// runs on both. Returns the new pair and combined statistics.
pub fn optimize_disjunction(
    aig: &mut Aig,
    f1: Lit,
    f0: Lit,
    cnf: &mut AigCnf,
    cfg: &OptConfig,
) -> (Lit, Lit, OptStats) {
    let (nf0, s0) = dc_simplify(aig, f1, f0, cnf, cfg);
    let (nf1, s1) = dc_simplify(aig, nf0, f1, cnf, cfg);
    let mut total = combine(s0, s1);
    let (nf1, nf0) = if cfg.use_odc {
        let (of0, s2) = odc_simplify(aig, nf1, nf0, cnf, cfg);
        let (of1, s3) = odc_simplify(aig, of0, nf1, cnf, cfg);
        total = combine(total, combine(s2, s3));
        (of1, of0)
    } else {
        (nf1, nf0)
    };
    total.nodes_before = aig.cone_size_many(&[f1, f0]);
    total.nodes_after = aig.cone_size_many(&[nf1, nf0]);
    (nf1, nf0, total)
}

fn combine(a: OptStats, b: OptStats) -> OptStats {
    OptStats {
        nodes_before: a.nodes_before,
        nodes_after: b.nodes_after,
        const_applied: a.const_applied + b.const_applied,
        merge_applied: a.merge_applied + b.merge_applied,
        odc_applied: a.odc_applied + b.odc_applied,
        checks: a.checks + b.checks,
        rejected: a.rejected + b.rejected,
    }
}

/// Depth-balancing pass: maximal AND trees are collected and rebuilt as
/// balanced trees, pairing shallowest operands first (the classical
/// `balance` of logic synthesis). Never changes functions; typically
/// reduces depth, which speeds up both simulation and SAT.
///
/// ```
/// use cbq_aig::Aig;
/// use cbq_synth::balance;
/// let mut aig = Aig::new();
/// let ins: Vec<_> = (0..8).map(|_| aig.add_input().lit()).collect();
/// // A degenerate left-leaning chain of depth 7.
/// let mut f = ins[0];
/// for l in &ins[1..] {
///     f = aig.and(f, *l);
/// }
/// let b = balance(&mut aig, &[f])[0];
/// assert!(aig.node_level(b.var()) <= 3 + 1);
/// ```
pub fn balance(aig: &mut Aig, roots: &[Lit]) -> Vec<Lit> {
    let cone = aig.collect_cone(roots);
    let top = roots.iter().map(|r| r.var().index()).max().unwrap_or(0);
    let mut memo: Vec<Option<Lit>> = vec![None; top + 1];
    for v in &cone {
        let rebuilt = match aig.node(*v) {
            Node::Const => Lit::FALSE,
            Node::Input { .. } => v.lit(),
            Node::And { .. } => {
                // Gather the maximal AND-tree leaves under this node
                // (descending through non-complemented AND fanins).
                let mut leaves: Vec<Lit> = Vec::new();
                let mut stack = vec![v.lit()];
                while let Some(l) = stack.pop() {
                    match aig.node(l.var()) {
                        Node::And { f0, f1 } if !l.is_complemented() => {
                            stack.push(f0);
                            stack.push(f1);
                        }
                        _ => {
                            let m = memo
                                .get(l.var().index())
                                .copied()
                                .flatten()
                                .unwrap_or_else(|| l.abs());
                            leaves.push(m.xor_sign(l.is_complemented()));
                        }
                    }
                }
                // Pair shallowest operands first (min-heap on level).
                let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, Lit)>> = leaves
                    .into_iter()
                    .map(|l| std::cmp::Reverse((aig.node_level(l.var()), l)))
                    .collect();
                loop {
                    let std::cmp::Reverse((_, a)) = heap.pop().expect("non-empty");
                    match heap.pop() {
                        None => break a,
                        Some(std::cmp::Reverse((_, b))) => {
                            let g = aig.and(a, b);
                            heap.push(std::cmp::Reverse((aig.node_level(g.var()), g)));
                        }
                    }
                }
            }
        };
        memo[v.index()] = Some(rebuilt);
    }
    roots
        .iter()
        .map(|r| {
            memo[r.var().index()]
                .expect("root rebuilt")
                .xor_sign(r.is_complemented())
        })
        .collect()
}

/// Rebuilds `root` substituting each variable in `subst` by its
/// replacement literal, chasing replacements through the rebuilt graph.
pub fn apply_subst(aig: &mut Aig, root: Lit, subst: &HashMap<Var, Lit>) -> Lit {
    if subst.is_empty() {
        return root;
    }
    let cone = aig.collect_cone(&[root]);
    let mut memo: Vec<Option<Lit>> = vec![None; root.var().index() + 1];
    for v in cone {
        let rebuilt = match aig.node(v) {
            Node::Const => Lit::FALSE,
            Node::Input { .. } => v.lit(),
            Node::And { f0, f1 } => {
                let a = resolve(&memo, subst, f0);
                let b = resolve(&memo, subst, f1);
                aig.and(a, b)
            }
        };
        memo[v.index()] = Some(rebuilt);
    }
    resolve(&memo, subst, root)
}

fn resolve(memo: &[Option<Lit>], subst: &HashMap<Var, Lit>, l: Lit) -> Lit {
    let mut cur = l;
    let mut hops = 0;
    while let Some(&next) = subst.get(&cur.var()) {
        cur = next.xor_sign(cur.is_complemented());
        hops += 1;
        debug_assert!(hops < 1_000_000, "substitution cycle");
    }
    match memo.get(cur.var().index()).copied().flatten() {
        Some(m) => m.xor_sign(cur.is_complemented()),
        None => cur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_equal(aig: &Aig, a: Lit, b: Lit, n: usize) -> bool {
        (0..1u32 << n).all(|mask| {
            let asg: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 != 0).collect();
            aig.eval(a, &asg) == aig.eval(b, &asg)
        })
    }

    #[test]
    fn restrash_drops_dead_structure() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.and(a, b);
        let roots = restrash(&mut aig, &[f]);
        assert_eq!(roots[0], f);
    }

    #[test]
    fn dc_simplify_preserves_disjunction() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f1 = aig.and(ins[0], ins[1]);
        let f0 = {
            // Contains a term that is subsumed once f1's onset is DC.
            let t = aig.and(ins[0], ins[1]);
            let u = aig.and(t, ins[2]);
            aig.or(u, ins[3])
        };
        let before = aig.or(f1, f0);
        let mut cnf = AigCnf::new();
        let (nf0, _stats) = dc_simplify(&mut aig, f1, f0, &mut cnf, &OptConfig::default());
        let after = aig.or(f1, nf0);
        assert!(exhaustive_equal(&aig, before, after, 4));
    }

    #[test]
    fn dc_simplify_true_reference_kills_target() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let t = aig.and(a, b);
        let mut cnf = AigCnf::new();
        let (nt, stats) = dc_simplify(&mut aig, Lit::TRUE, t, &mut cnf, &OptConfig::default());
        assert_eq!(nt, Lit::FALSE);
        assert_eq!(stats.nodes_after, 0);
    }

    #[test]
    fn dc_simplify_shrinks_known_case() {
        // Reference: a. Target: !a & b & c. Under care set !a, the target
        // equals b & c: one AND node is saved.
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let t0 = aig.and(!a, b);
        let target = aig.and(t0, c);
        let mut cnf = AigCnf::new();
        let (nt, stats) = dc_simplify(&mut aig, a, target, &mut cnf, &OptConfig::default());
        assert!(aig.cone_size(nt) < aig.cone_size(target));
        assert!(stats.const_applied + stats.merge_applied >= 1);
        let before = aig.or(a, target);
        let after = aig.or(a, nt);
        assert!(exhaustive_equal(&aig, before, after, 3));
    }

    #[test]
    fn odc_simplify_preserves_disjunction() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f1 = aig.or(ins[0], ins[1]);
        let f0 = {
            let t = aig.xor(ins[1], ins[2]);
            let u = aig.and(t, ins[3]);
            aig.or(u, ins[0])
        };
        let before = aig.or(f1, f0);
        let mut cnf = AigCnf::new();
        let cfg = OptConfig {
            use_odc: true,
            ..OptConfig::default()
        };
        let (nf0, _stats) = odc_simplify(&mut aig, f1, f0, &mut cnf, &cfg);
        let after = aig.or(f1, nf0);
        assert!(exhaustive_equal(&aig, before, after, 4));
        assert!(aig.cone_size_many(&[f1, nf0]) <= aig.cone_size_many(&[f1, f0]));
    }

    #[test]
    fn redundancy_removal_eliminates_dead_terms() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        // (a & !a-ish dead term) | (b & c) where the dead term is built to
        // dodge local rewriting: xor(a, a) via distinct structure.
        let x = aig.xor(a, b);
        let xn = {
            let both = aig.and(a, b);
            let neither = aig.and(!a, !b);
            aig.or(both, neither)
        };
        let dead = aig.and(x, xn); // constant false, structurally hidden
        let keep = aig.and(b, c);
        let root = aig.or(dead, keep);
        let mut cnf = AigCnf::new();
        let (nr, stats) = redundancy_removal(&mut aig, root, &mut cnf, &OptConfig::default());
        assert!(exhaustive_equal(&aig, root, nr, 3));
        assert!(aig.cone_size(nr) < aig.cone_size(root));
        assert!(stats.const_applied >= 1);
    }

    #[test]
    fn optimize_disjunction_end_to_end() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|_| aig.add_input().lit()).collect();
        let f1 = {
            let t = aig.and(ins[0], ins[1]);
            aig.or(t, ins[2])
        };
        let f0 = {
            let t = aig.and(ins[0], ins[1]);
            let u = aig.and(t, ins[3]);
            let v = aig.xor(ins[2], ins[4]);
            aig.or(u, v)
        };
        let before = aig.or(f1, f0);
        let mut cnf = AigCnf::new();
        let cfg = OptConfig {
            use_odc: true,
            ..OptConfig::default()
        };
        let (nf1, nf0, stats) = optimize_disjunction(&mut aig, f1, f0, &mut cnf, &cfg);
        let after = aig.or(nf1, nf0);
        assert!(exhaustive_equal(&aig, before, after, 5));
        assert!(stats.nodes_after <= stats.nodes_before);
    }

    #[test]
    fn balance_preserves_semantics_and_reduces_depth() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        // Left-leaning chain mixing phases: ((((a&!b)&c)&!d)&...)
        let mut f = ins[0];
        for (i, l) in ins[1..].iter().enumerate() {
            f = aig.and(f, l.xor_sign(i % 2 == 0));
        }
        let depth_before = aig.node_level(f.var());
        let b = balance(&mut aig, &[f])[0];
        assert!(aig.node_level(b.var()) < depth_before);
        for mask in 0..256u32 {
            let asg: Vec<bool> = (0..8).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(aig.eval(f, &asg), aig.eval(b, &asg));
        }
    }

    #[test]
    fn balance_handles_or_chains_through_complements() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let mut f = ins[0];
        for l in &ins[1..] {
            f = aig.or(f, *l);
        }
        let b = balance(&mut aig, &[f])[0];
        for mask in [0u32, 1, 128, 255, 37] {
            let asg: Vec<bool> = (0..8).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(aig.eval(f, &asg), aig.eval(b, &asg));
        }
        assert!(aig.node_level(b.var()) <= aig.node_level(f.var()));
    }

    #[test]
    fn apply_subst_chases_chains() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        // ab -> c, c stays: f becomes c | c = c.
        let subst = HashMap::from([(ab.var(), c)]);
        let nf = apply_subst(&mut aig, f, &subst);
        assert_eq!(nf, c);
    }
}
