//! ASCII AIGER (`aag`) reading and writing.
//!
//! The format follows the AIGER 1.9 ASCII specification closely enough for
//! interchange: a header `aag M I L O A`, then input literal lines, latch
//! lines (`lit next [init]`), output literal lines and AND gate lines
//! (`lhs rhs0 rhs1`). Parsing produces a raw [`AagFile`]; combinational
//! files can be materialised into an [`Aig`] directly with
//! [`AagFile::build`], while sequential files are consumed by the network
//! layer (`cbq-ckt`).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::aig::Aig;
use crate::lit::{Lit, Var};
use crate::node::Node;

/// A raw, numerically addressed AIGER file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AagFile {
    /// Maximum variable index from the header.
    pub max_var: u32,
    /// Input literal codes (always even).
    pub inputs: Vec<u32>,
    /// Latches: `(current literal, next-state literal, initial value)`.
    pub latches: Vec<(u32, u32, bool)>,
    /// Output literal codes.
    pub outputs: Vec<u32>,
    /// AND gates: `(lhs, rhs0, rhs1)`, `lhs` even.
    pub ands: Vec<(u32, u32, u32)>,
    /// Symbol-table comments, kept verbatim.
    pub symbols: Vec<String>,
}

/// Error parsing an `aag` file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAagError {
    line: usize,
    message: String,
}

impl ParseAagError {
    fn new(line: usize, message: impl Into<String>) -> ParseAagError {
        ParseAagError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseAagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aag parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAagError {}

/// Parses the ASCII AIGER format.
///
/// # Errors
///
/// Returns [`ParseAagError`] on malformed headers, counts that do not match
/// the body, or out-of-range literals.
///
/// ```
/// use cbq_aig::io::parse_aag;
/// let f = parse_aag("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n")?;
/// assert_eq!(f.inputs, vec![2, 4]);
/// assert_eq!(f.ands, vec![(6, 2, 4)]);
/// # Ok::<(), cbq_aig::io::ParseAagError>(())
/// ```
pub fn parse_aag(text: &str) -> Result<AagFile, ParseAagError> {
    let mut lines = text.lines().enumerate();
    let (hline, header) = lines
        .next()
        .ok_or_else(|| ParseAagError::new(1, "empty file"))?;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aag" {
        return Err(ParseAagError::new(
            hline + 1,
            "header must be `aag M I L O A`",
        ));
    }
    let nums: Vec<u32> = parts[1..]
        .iter()
        .map(|p| {
            p.parse::<u32>()
                .map_err(|_| ParseAagError::new(hline + 1, format!("bad number `{p}`")))
        })
        .collect::<Result<_, _>>()?;
    let (m, i, l, o, a) = (nums[0], nums[1], nums[2], nums[3], nums[4]);
    let mut file = AagFile {
        max_var: m,
        ..AagFile::default()
    };
    let mut next_line = || -> Result<(usize, &str), ParseAagError> {
        for (n, line) in lines.by_ref() {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok((n + 1, trimmed));
            }
        }
        Err(ParseAagError::new(0, "unexpected end of file"))
    };
    let parse_nums = |line: usize, s: &str, want: usize| -> Result<Vec<u32>, ParseAagError> {
        let ns: Vec<u32> = s
            .split_whitespace()
            .map(|p| {
                p.parse::<u32>()
                    .map_err(|_| ParseAagError::new(line, format!("bad literal `{p}`")))
            })
            .collect::<Result<_, _>>()?;
        if ns.len() < want {
            return Err(ParseAagError::new(line, "too few fields"));
        }
        for n in &ns {
            if n / 2 > m {
                return Err(ParseAagError::new(line, format!("literal {n} exceeds M")));
            }
        }
        Ok(ns)
    };
    for _ in 0..i {
        let (n, s) = next_line()?;
        let ns = parse_nums(n, s, 1)?;
        if ns[0] % 2 != 0 {
            return Err(ParseAagError::new(n, "input literal must be even"));
        }
        file.inputs.push(ns[0]);
    }
    for _ in 0..l {
        let (n, s) = next_line()?;
        let ns = parse_nums(n, s, 2)?;
        let init = if ns.len() >= 3 {
            match ns[2] {
                0 => false,
                1 => true,
                other => {
                    return Err(ParseAagError::new(n, format!("bad init value {other}")));
                }
            }
        } else {
            false
        };
        if ns[0] % 2 != 0 {
            return Err(ParseAagError::new(n, "latch literal must be even"));
        }
        file.latches.push((ns[0], ns[1], init));
    }
    for _ in 0..o {
        let (n, s) = next_line()?;
        let ns = parse_nums(n, s, 1)?;
        file.outputs.push(ns[0]);
    }
    for _ in 0..a {
        let (n, s) = next_line()?;
        let ns = parse_nums(n, s, 3)?;
        if ns[0] % 2 != 0 {
            return Err(ParseAagError::new(n, "AND lhs must be even"));
        }
        file.ands.push((ns[0], ns[1], ns[2]));
    }
    // Remaining non-empty lines are symbols/comments.
    for (_, line) in lines {
        let t = line.trim();
        if !t.is_empty() {
            file.symbols.push(t.to_string());
        }
    }
    Ok(file)
}

impl AagFile {
    /// Materialises a *combinational* file (`L == 0`) into an [`Aig`],
    /// returning the manager, the variables created for the file's inputs,
    /// and the translated output literals.
    ///
    /// # Errors
    ///
    /// Returns [`ParseAagError`] if the file has latches, an AND references
    /// an undefined literal, or definitions are not in topological order.
    pub fn build(&self) -> Result<(Aig, Vec<Var>, Vec<Lit>), ParseAagError> {
        if !self.latches.is_empty() {
            return Err(ParseAagError::new(
                0,
                "sequential file: use the network layer to build it",
            ));
        }
        let mut aig = Aig::new();
        let mut map: HashMap<u32, Lit> = HashMap::new();
        map.insert(0, Lit::FALSE);
        let mut in_vars = Vec::with_capacity(self.inputs.len());
        for code in &self.inputs {
            let v = aig.add_input();
            in_vars.push(v);
            map.insert(code / 2, v.lit());
        }
        for (lhs, r0, r1) in &self.ands {
            let f0 = lookup(&map, *r0)?;
            let f1 = lookup(&map, *r1)?;
            let l = aig.and(f0, f1);
            map.insert(lhs / 2, l);
        }
        let outs = self
            .outputs
            .iter()
            .map(|o| lookup(&map, *o))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((aig, in_vars, outs))
    }
}

fn lookup(map: &HashMap<u32, Lit>, code: u32) -> Result<Lit, ParseAagError> {
    map.get(&(code / 2))
        .map(|l| l.xor_sign(code % 2 == 1))
        .ok_or_else(|| ParseAagError::new(0, format!("undefined literal {code}")))
}

/// Serialises the cone of `roots` as a combinational ASCII AIGER file.
///
/// Inputs keep their ordinals; node numbering is compacted to the cone.
pub fn write_aag(aig: &Aig, roots: &[Lit]) -> String {
    // Re-number: inputs first (all of them, preserving ordinals), then the
    // cone's AND gates in topological order.
    let mut code: HashMap<Var, u32> = HashMap::new();
    code.insert(Var::CONST, 0);
    for (i, v) in aig.inputs().iter().enumerate() {
        code.insert(*v, 2 * (i as u32 + 1));
    }
    let mut and_lines = Vec::new();
    let mut next = aig.num_inputs() as u32 + 1;
    for v in aig.collect_cone(roots) {
        if let Node::And { f0, f1 } = aig.node(v) {
            let lhs = 2 * next;
            next += 1;
            code.insert(v, lhs);
            let c0 = code[&f0.var()] | f0.is_complemented() as u32;
            let c1 = code[&f1.var()] | f1.is_complemented() as u32;
            and_lines.push(format!("{lhs} {c0} {c1}"));
        }
    }
    let m = next - 1;
    let mut out = format!(
        "aag {} {} 0 {} {}\n",
        m,
        aig.num_inputs(),
        roots.len(),
        and_lines.len()
    );
    for i in 0..aig.num_inputs() {
        out.push_str(&format!("{}\n", 2 * (i as u32 + 1)));
    }
    for r in roots {
        let c = code[&r.var()] | r.is_complemented() as u32;
        out.push_str(&format!("{c}\n"));
    }
    for line in and_lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders the cone of `roots` as a Graphviz DOT digraph (inputs as
/// boxes, AND gates as circles, complemented edges dashed).
pub fn write_dot(aig: &Aig, roots: &[Lit]) -> String {
    let mut out = String::from("digraph aig {\n  rankdir=BT;\n");
    for v in aig.collect_cone(roots) {
        match aig.node(v) {
            Node::Const => {
                out.push_str(&format!("  n{} [label=\"0\", shape=box];\n", v.index()));
            }
            Node::Input { index } => {
                out.push_str(&format!(
                    "  n{} [label=\"i{index}\", shape=box];\n",
                    v.index()
                ));
            }
            Node::And { f0, f1 } => {
                out.push_str(&format!("  n{} [label=\"∧\", shape=circle];\n", v.index()));
                for f in [f0, f1] {
                    let style = if f.is_complemented() {
                        " [style=dashed]"
                    } else {
                        ""
                    };
                    out.push_str(&format!(
                        "  n{} -> n{}{};\n",
                        f.var().index(),
                        v.index(),
                        style
                    ));
                }
            }
        }
    }
    for (i, r) in roots.iter().enumerate() {
        let style = if r.is_complemented() {
            " [style=dashed]"
        } else {
            ""
        };
        out.push_str(&format!("  o{i} [label=\"out{i}\", shape=plaintext];\n"));
        out.push_str(&format!("  n{} -> o{i}{};\n", r.var().index(), style));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_export_mentions_every_cone_node() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.xor(a, b);
        let dot = write_dot(&aig, &[f]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("i0") && dot.contains("i1"));
        assert!(dot.contains("style=dashed")); // xor uses complements
        assert!(dot.matches("shape=circle").count() == 3);
    }

    #[test]
    fn roundtrip_combinational() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let f = {
            let x = aig.xor(a, b);
            aig.or(x, c)
        };
        let text = write_aag(&aig, &[f]);
        let file = parse_aag(&text).unwrap();
        let (aig2, _ins, outs) = file.build().unwrap();
        assert_eq!(outs.len(), 1);
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(aig.eval(f, &asg), aig2.eval(outs[0], &asg));
        }
    }

    #[test]
    fn parses_latches_and_init() {
        let text = "aag 3 1 1 1 1\n2\n4 6 1\n4\n6 2 4\n";
        let f = parse_aag(text).unwrap();
        assert_eq!(f.latches, vec![(4, 6, true)]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_aag("aig 1 1 0 0 0\n2\n").is_err());
        assert!(parse_aag("aag 1 1 0\n").is_err());
        assert!(parse_aag("").is_err());
    }

    #[test]
    fn rejects_odd_input_literal() {
        let err = parse_aag("aag 1 1 0 0 0\n3\n").unwrap_err();
        assert!(err.to_string().contains("even"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        assert!(parse_aag("aag 1 1 0 1 0\n2\n9\n").is_err());
    }

    #[test]
    fn constant_outputs_roundtrip() {
        let aig = Aig::with_inputs(1);
        let text = write_aag(&aig, &[Lit::TRUE, Lit::FALSE]);
        let file = parse_aag(&text).unwrap();
        let (aig2, _, outs) = file.build().unwrap();
        assert_eq!(outs, vec![Lit::TRUE, Lit::FALSE]);
        assert_eq!(aig2.num_ands(), 0);
    }

    #[test]
    fn sequential_build_is_rejected() {
        let f = parse_aag("aag 2 1 1 0 0\n2\n4 2 0\n").unwrap();
        assert!(f.build().is_err());
    }
}
