//! End-to-end wire-protocol tests: a real [`Server`] on a loopback
//! port, driven through the [`client`] helpers and raw socket lines.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use cbq_ckt::generators;
use cbq_ckt::io::write_network;
use cbq_mc::Budget;
use cbq_serve::{client, CheckRequest, Json, ServeConfig, Server};

struct Running {
    addr: String,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn start(workers: usize) -> Running {
    let server = Arc::new(
        Server::bind(ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            workers,
            ..ServeConfig::default()
        })
        .expect("bind loopback"),
    );
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    Running {
        addr,
        handle: Some(handle),
    }
}

impl Running {
    fn stop(mut self) {
        client::shutdown(&self.addr).expect("bye");
        self.handle
            .take()
            .expect("running")
            .join()
            .expect("no panic")
            .expect("clean exit");
    }
}

fn check(net: &cbq_ckt::Network, engine: &str, id: u64) -> CheckRequest {
    CheckRequest {
        id,
        model: write_network(net),
        engine: engine.to_string(),
        budget: Budget::unlimited(),
        use_cache: true,
    }
}

#[test]
fn submit_twice_reports_a_cache_hit() {
    let server = start(2);
    let net = generators::token_ring(4);

    let first = client::submit_one(&server.addr, &check(&net, "ic3", 0)).expect("first");
    assert_eq!(first.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(
        first
            .get("cache")
            .and_then(|c| c.get("tier"))
            .and_then(Json::as_u64),
        Some(0),
        "first submission runs cold"
    );
    let first_job = first
        .get("job")
        .and_then(Json::as_u64)
        .expect("assigned id");
    assert!(first_job >= 1);

    let second = client::submit_one(&server.addr, &check(&net, "ic3", 0)).expect("second");
    assert_eq!(second.get("verdict").and_then(Json::as_str), Some("safe"));
    assert_eq!(
        second
            .get("cache")
            .and_then(|c| c.get("tier"))
            .and_then(Json::as_u64),
        Some(1),
        "second submission replays from tier 1"
    );
    assert_ne!(second.get("job").and_then(Json::as_u64), Some(first_job));
    assert_eq!(
        second
            .get("cache_stats")
            .and_then(|s| s.get("tier1_hits"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        second.get("proved_at").and_then(Json::as_u64),
        first.get("proved_at").and_then(Json::as_u64),
        "replayed record matches the original"
    );

    let stats = client::server_stats(&server.addr).expect("stats");
    assert_eq!(stats.get("jobs_done").and_then(Json::as_u64), Some(2));
    assert_eq!(stats.get("cache_entries").and_then(Json::as_u64), Some(1));
    server.stop();
}

#[test]
fn client_ids_and_unsafe_verdicts_round_trip() {
    let server = start(1);
    let net = generators::token_ring_bug(4);
    let result = client::submit_one(&server.addr, &check(&net, "bmc", 77)).expect("result");
    assert_eq!(result.get("job").and_then(Json::as_u64), Some(77));
    assert_eq!(result.get("verdict").and_then(Json::as_str), Some("unsafe"));
    assert!(result.get("cex_depth").and_then(Json::as_u64).is_some());
    server.stop();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let server = start(1);

    // Malformed JSON, unknown command, unknown engine, bad model — all
    // on one connection, each answered, none killing the server.
    let stream = TcpStream::connect(&server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send_recv = |line: &str| -> Json {
        let mut s = stream.try_clone().expect("clone");
        s.write_all(line.as_bytes()).expect("send");
        s.write_all(b"\n").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        Json::parse(&response).expect("parseable response")
    };

    let bad_json = send_recv("{not json");
    assert_eq!(bad_json.get("event").and_then(Json::as_str), Some("error"));

    let bad_cmd = send_recv("{\"cmd\":\"frobnicate\"}");
    assert_eq!(bad_cmd.get("event").and_then(Json::as_str), Some("error"));

    let bad_engine = send_recv("{\"cmd\":\"check\",\"model\":\"x\",\"engine\":\"zchaff\"}");
    assert!(bad_engine
        .get("message")
        .and_then(Json::as_str)
        .expect("message")
        .contains("unknown engine"));

    // A bad model passes parsing (the error surfaces from the worker):
    // expect `accepted` then an `error` event.
    let accepted = send_recv("{\"cmd\":\"check\",\"model\":\"not an aag\",\"engine\":\"bmc\"}");
    assert_eq!(
        accepted.get("event").and_then(Json::as_str),
        Some("accepted")
    );
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    let error = Json::parse(&response).expect("parseable");
    assert_eq!(error.get("event").and_then(Json::as_str), Some("error"));
    assert!(error
        .get("message")
        .and_then(Json::as_str)
        .expect("message")
        .contains("bad model"));
    drop(reader);
    drop(stream);

    // The server still works afterwards.
    let net = generators::mutex();
    let ok = client::submit_one(&server.addr, &check(&net, "ic3", 0)).expect("still alive");
    assert_eq!(ok.get("verdict").and_then(Json::as_str), Some("safe"));
    server.stop();
}

#[test]
fn concurrent_submissions_all_complete() {
    let server = start(3);
    let addr = server.addr.clone();
    let nets = [
        generators::token_ring(4),
        generators::token_ring_bug(4),
        generators::mutex(),
        generators::bounded_counter(4, 9),
    ];
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for (i, net) in nets.iter().enumerate() {
            let addr = &addr;
            joins.push(s.spawn(move || {
                client::submit_one(addr, &check(net, "portfolio", i as u64 + 1)).expect("result")
            }));
        }
        let verdicts: Vec<String> = joins
            .into_iter()
            .map(|j| {
                let result = j.join().expect("no panic");
                result
                    .get("verdict")
                    .and_then(Json::as_str)
                    .expect("verdict")
                    .to_string()
            })
            .collect();
        assert_eq!(verdicts, ["safe", "unsafe", "safe", "safe"]);
    });
    server.stop();
}
