//! Property-based tests of the AIG manager: algebraic laws, cofactor and
//! composition semantics, compaction, simulation-vs-eval agreement and
//! AIGER round-trips on random circuits.

use proptest::prelude::*;

use cbq_aig::io::{parse_aag, write_aag};
use cbq_aig::sim::{BitSim, TernSim};
use cbq_aig::{Aig, AigTuning, Lit, Var};

/// A recipe for building a random circuit: a list of gate descriptors
/// over a pool that starts with `num_inputs` inputs.
#[derive(Clone, Debug)]
enum GateOp {
    And(usize, bool, usize, bool),
    Xor(usize, bool, usize, bool),
    Ite(usize, usize, usize),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<GateOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| GateOp::And(a, pa, b, pb)),
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| GateOp::Xor(a, pa, b, pb)),
            (any::<usize>(), any::<usize>(), any::<usize>())
                .prop_map(|(c, t, e)| GateOp::Ite(c, t, e)),
        ],
        1..=max_ops,
    )
}

/// Materialises a recipe; returns the AIG and the last literal built.
fn build(num_inputs: usize, ops: &[GateOp]) -> (Aig, Lit) {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input().lit()).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            GateOp::And(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.and(x, y)
            }
            GateOp::Xor(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.xor(x, y)
            }
            GateOp::Ite(c, t, e) => {
                let (c, t, e) = (pick(c), pick(t), pick(e));
                aig.ite(c, t, e)
            }
        };
        pool.push(l);
    }
    let root = *pool.last().expect("non-empty pool");
    (aig, root)
}

/// Materialises a recipe in a manager with the given tuning.
fn build_with(num_inputs: usize, ops: &[GateOp], tuning: AigTuning) -> (Aig, Lit) {
    let mut aig = Aig::with_tuning(tuning);
    let mut pool: Vec<Lit> = (0..num_inputs).map(|_| aig.add_input().lit()).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            GateOp::And(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.and(x, y)
            }
            GateOp::Xor(a, pa, b, pb) => {
                let x = pick(a).xor_sign(pa);
                let y = pick(b).xor_sign(pb);
                aig.xor(x, y)
            }
            GateOp::Ite(c, t, e) => {
                let (c, t, e) = (pick(c), pick(t), pick(e));
                aig.ite(c, t, e)
            }
        };
        pool.push(l);
    }
    let root = *pool.last().expect("non-empty pool");
    (aig, root)
}

/// The ablation ladder: reference oracle, then each fast path layered in.
fn tuning_rungs() -> [AigTuning; 5] {
    [
        AigTuning::reference(),
        AigTuning {
            open_strash: true,
            ..AigTuning::reference()
        },
        AigTuning {
            open_strash: true,
            dense_scratch: true,
            ..AigTuning::reference()
        },
        AigTuning {
            cofactor_cache: false,
            ..AigTuning::full()
        },
        AigTuning::full(),
    ]
}

const N: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Gates built through the rewriting rules agree with direct Boolean
    /// evaluation on all 2^N inputs.
    #[test]
    fn structural_rules_preserve_semantics(ops in ops_strategy(24)) {
        let (aig, root) = build(N, &ops);
        // Rebuild the same recipe in a "rule-free" way: via the reference
        // evaluator on each assignment (the recipe semantics).
        let eval_recipe = |asg: &[bool]| -> bool {
            let mut pool: Vec<bool> = asg.to_vec();
            for op in &ops {
                let pick = |i: usize| pool[i % pool.len()];
                let v = match *op {
                    GateOp::And(a, pa, b, pb) => (pick(a) ^ pa) && (pick(b) ^ pb),
                    GateOp::Xor(a, pa, b, pb) => (pick(a) ^ pa) ^ (pick(b) ^ pb),
                    GateOp::Ite(c, t, e) => if pick(c) { pick(t) } else { pick(e) },
                };
                pool.push(v);
            }
            *pool.last().expect("non-empty")
        };
        for mask in 0..1u32 << N {
            let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            prop_assert_eq!(aig.eval(root, &asg), eval_recipe(&asg), "mask {}", mask);
        }
    }

    /// Shannon expansion: f == (v & f|v=1) | (!v & f|v=0).
    #[test]
    fn cofactors_satisfy_shannon(ops in ops_strategy(24), vi in 0..N) {
        let (mut aig, root) = build(N, &ops);
        let v = aig.input_var(vi);
        let (f1, f0) = aig.cofactors(root, v);
        prop_assert!(!aig.support_contains(f1, v));
        prop_assert!(!aig.support_contains(f0, v));
        let shannon = {
            let hi = aig.and(v.lit(), f1);
            let lo = aig.and(!v.lit(), f0);
            aig.or(hi, lo)
        };
        for mask in 0..1u32 << N {
            let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            prop_assert_eq!(aig.eval(root, &asg), aig.eval(shannon, &asg));
        }
    }

    /// Composition with the identity map is the identity; composing a
    /// variable with a constant equals the cofactor.
    #[test]
    fn compose_laws(ops in ops_strategy(24), vi in 0..N, value: bool) {
        let (mut aig, root) = build(N, &ops);
        let v = aig.input_var(vi);
        let same = aig.compose(root, &[(v, v.lit())]);
        prop_assert_eq!(same, root);
        let direct = aig.cofactor(root, v, value);
        let via_compose = aig.compose(
            root,
            &[(v, if value { Lit::TRUE } else { Lit::FALSE })],
        );
        prop_assert_eq!(direct, via_compose);
    }

    /// Compaction preserves semantics and never grows the AND count.
    #[test]
    fn compact_preserves_semantics(ops in ops_strategy(24)) {
        let (aig, root) = build(N, &ops);
        let (packed, roots) = aig.compact(&[root]);
        prop_assert!(packed.num_ands() <= aig.num_ands());
        prop_assert_eq!(packed.num_inputs(), aig.num_inputs());
        for mask in 0..1u32 << N {
            let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            prop_assert_eq!(aig.eval(root, &asg), packed.eval(roots[0], &asg));
        }
    }

    /// 64-way simulation agrees with single-pattern evaluation.
    #[test]
    fn simulation_matches_eval(ops in ops_strategy(24), seed: u64) {
        let (aig, root) = build(N, &ops);
        let sim = BitSim::random(&aig, 2, seed);
        for bit in [0usize, 17, 63, 64, 127] {
            let asg = sim.pattern_assignment(&aig, bit);
            let word = sim.lit_word(root, bit / 64);
            prop_assert_eq!((word >> (bit % 64)) & 1 != 0, aig.eval(root, &asg));
        }
    }

    /// AIGER text round-trips preserve function.
    #[test]
    fn aag_roundtrip(ops in ops_strategy(24)) {
        let (aig, root) = build(N, &ops);
        let text = write_aag(&aig, &[root]);
        let file = parse_aag(&text).unwrap();
        let (aig2, _, outs) = file.build().unwrap();
        for mask in 0..1u32 << N {
            let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            prop_assert_eq!(aig.eval(root, &asg), aig2.eval(outs[0], &asg));
        }
    }

    /// Differential: on X-free inputs the ternary simulator agrees with
    /// the two-valued one *exactly*, at every node of the circuit.
    #[test]
    fn ternary_matches_bitsim_when_definite(ops in ops_strategy(24), mask in 0..1usize << N) {
        let (aig, root) = build(N, &ops);
        let asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
        let mut tern = TernSim::new(&aig, 1);
        let mut bit = BitSim::new(&aig, 1);
        bit.set_pattern(&aig, 0, &asg);
        for (i, &v) in asg.iter().enumerate() {
            tern.set_var(aig.input_var(i), 0, Some(v));
        }
        bit.run(&aig);
        tern.run(&aig);
        for idx in 0..aig.num_nodes() {
            let l = Var::from_index(idx).lit();
            prop_assert_eq!(
                tern.lit_value(l, 0),
                Some(bit.lit_word(l, 0) & 1 != 0),
                "node {} diverges", idx
            );
        }
        prop_assert_eq!(tern.lit_value(root, 0), Some(aig.eval(root, &asg)));
    }

    /// Differential: X inputs are a sound over-approximation — wherever
    /// the ternary simulator reports a *definite* value, every
    /// concretization of the X inputs agrees with it (checked against
    /// BitSim over all assignments of the X-ed variables).
    #[test]
    fn ternary_definite_values_are_sound(ops in ops_strategy(24), xmask in 0..1usize << N, base in 0..1usize << N) {
        let (aig, root) = build(N, &ops);
        let mut tern = TernSim::new(&aig, 1);
        for i in 0..N {
            let val = if (xmask >> i) & 1 != 0 { None } else { Some((base >> i) & 1 != 0) };
            tern.set_var(aig.input_var(i), 0, val);
        }
        tern.run(&aig);
        let xs: Vec<usize> = (0..N).filter(|i| (xmask >> *i) & 1 != 0).collect();
        let mut bit = BitSim::new(&aig, 1);
        for choice in 0..1u32 << xs.len() {
            let mut asg: Vec<bool> = (0..N).map(|i| (base >> i) & 1 != 0).collect();
            for (j, &i) in xs.iter().enumerate() {
                asg[i] = (choice >> j) & 1 != 0;
            }
            bit.set_pattern(&aig, 0, &asg);
            bit.run(&aig);
            for idx in 0..aig.num_nodes() {
                let l = Var::from_index(idx).lit();
                if let Some(def) = tern.lit_value(l, 0) {
                    prop_assert_eq!(
                        def,
                        bit.lit_word(l, 0) & 1 != 0,
                        "definite node {} contradicted by concretization {}", idx, choice
                    );
                }
            }
            let _ = root;
        }
    }

    /// Differential: every tuning rung — reference `HashMap` strash and
    /// per-call maps up to the full dense/open-addressing/cached hot path
    /// — produces *bit-identical* managers under the same build recipe
    /// followed by input-substitution composes and cofactors: same
    /// literals returned, same node counts, at every step.
    #[test]
    fn tuning_rungs_are_bit_identical(
        ops in ops_strategy(24),
        vi in 0..N,
        wi in 0..N,
        value: bool,
        phase: bool,
    ) {
        let runs: Vec<(Vec<Lit>, usize)> = tuning_rungs()
            .iter()
            .map(|&tuning| {
                let (mut aig, root) = build_with(N, &ops, tuning);
                let v = aig.input_var(vi);
                let w = aig.input_var(wi);
                let mut log = vec![root];
                // Input-only substitution: swap v for (w ^ phase).
                log.push(aig.compose(root, &[(v, w.lit().xor_sign(phase))]));
                log.push(aig.cofactor(root, v, value));
                log.push(aig.cofactor(root, v, value)); // cache-hit path
                let (f1, f0) = aig.cofactors(log[1], w);
                log.push(f1);
                log.push(f0);
                (log, aig.num_nodes())
            })
            .collect();
        for (rung, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(&runs[0], run, "rung {} diverged from reference", rung);
        }
    }

    /// Differential: support-limited cofactoring equals the reference
    /// full-cone rebuild semantically on every assignment, and the result
    /// is independent of the eliminated variable.
    #[test]
    fn support_limited_cofactor_matches_reference(
        ops in ops_strategy(24),
        vi in 0..N,
        value: bool,
    ) {
        let (mut fast, froot) = build_with(N, &ops, AigTuning::full());
        let (mut slow, sroot) = build_with(N, &ops, AigTuning::reference());
        let fv = fast.input_var(vi);
        let sv = slow.input_var(vi);
        let fcof = fast.cofactor(froot, fv, value);
        let scof = slow.cofactor(sroot, sv, value);
        prop_assert_eq!(fcof, scof, "cofactor lits diverge");
        prop_assert!(!fast.support_contains(fcof, fv));
        for mask in 0..1u32 << N {
            let mut asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            asg[vi] = value;
            prop_assert_eq!(fast.eval(fcof, &asg), slow.eval(scof, &asg));
        }
    }

    /// Differential: the open-addressing strash answers every `and`
    /// exactly like the reference `HashMap` table — same hit/miss
    /// behaviour, so same literals and node counts — across growth
    /// boundaries, and survives compaction.
    #[test]
    fn open_strash_matches_hashmap_strash(ops in ops_strategy(48)) {
        let (open, oroot) = build_with(N, &ops, AigTuning {
            open_strash: true,
            ..AigTuning::reference()
        });
        let (href, hroot) = build_with(N, &ops, AigTuning::reference());
        prop_assert_eq!(oroot, hroot);
        prop_assert_eq!(open.num_nodes(), href.num_nodes());
        // Compaction rebuilds the table. This tuning has no identity
        // shortcut (reference scratch), so an identity compose re-issues
        // every cone gate through `and` — each must strash back to the
        // packed node instead of creating a duplicate.
        let (mut packed, roots) = open.compact(&[oroot]);
        let before = packed.num_nodes();
        let v = packed.input_var(0);
        let again = packed.compose(roots[0], &[(v, v.lit())]);
        prop_assert_eq!(again, roots[0]);
        prop_assert_eq!(packed.num_nodes(), before);
    }

    /// The support really is the set of variables the function depends on
    /// *at most*: flipping a non-support variable never changes the value.
    #[test]
    fn support_is_sound(ops in ops_strategy(24)) {
        let (aig, root) = build(N, &ops);
        let support: Vec<Var> = aig.support(root);
        for mask in 0..1u32 << N {
            let mut asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
            let base = aig.eval(root, &asg);
            for vi in 0..N {
                let v = aig.input_var(vi);
                if support.contains(&v) {
                    continue;
                }
                asg[vi] = !asg[vi];
                prop_assert_eq!(aig.eval(root, &asg), base, "non-support var changed value");
                asg[vi] = !asg[vi];
            }
        }
    }
}
