//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A node index in an [`Aig`](crate::Aig).
///
/// Variable `0` is reserved for the constant-false node; inputs and AND
/// nodes follow in creation order. Because the manager is append-only, the
/// numeric order of variables is a topological order of the graph.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable of the constant-false node.
    pub const CONST: Var = Var(0);

    /// Creates a variable from its raw index.
    ///
    /// ```
    /// use cbq_aig::Var;
    /// assert_eq!(Var::from_index(3).index(), 3);
    /// ```
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// Raw index of this variable (usable as a slice index).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive-phase literal of this variable.
    pub fn lit(self) -> Lit {
        Lit(self.0 << 1)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A possibly complemented edge to an AIG node.
///
/// Encoded AIGER-style as `2 * var + sign`, so [`Lit::FALSE`] is `0` and
/// [`Lit::TRUE`] is `1`. Complementation ([`Not`]) is free.
///
/// ```
/// use cbq_aig::{Lit, Var};
/// let v = Var::from_index(4);
/// let l = v.lit();
/// assert!(!l.is_complemented());
/// assert!((!l).is_complemented());
/// assert_eq!(!!l, l);
/// assert_eq!(l.var(), v);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a variable and a complement flag.
    pub fn new(var: Var, complemented: bool) -> Lit {
        Lit((var.0 << 1) | complemented as u32)
    }

    /// Creates a literal from its raw AIGER code (`2 * var + sign`).
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// Raw AIGER code of this literal.
    pub fn code(self) -> u32 {
        self.0
    }

    /// The variable (node) this literal points to.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this is [`Lit::FALSE`] or [`Lit::TRUE`].
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// This literal with its complement bit forced to `sign`.
    pub fn with_sign(self, sign: bool) -> Lit {
        Lit((self.0 & !1) | sign as u32)
    }

    /// This literal complemented iff `flip` is true.
    ///
    /// ```
    /// use cbq_aig::Lit;
    /// let l = Lit::from_code(6);
    /// assert_eq!(l.xor_sign(false), l);
    /// assert_eq!(l.xor_sign(true), !l);
    /// ```
    pub fn xor_sign(self, flip: bool) -> Lit {
        Lit(self.0 ^ flip as u32)
    }

    /// The positive-phase literal of the same variable.
    pub fn abs(self) -> Lit {
        Lit(self.0 & !1)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    fn from(v: Var) -> Lit {
        v.lit()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else if self.is_complemented() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_literals() {
        assert_eq!(Lit::FALSE.var(), Var::CONST);
        assert_eq!(Lit::TRUE.var(), Var::CONST);
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert_eq!(!Lit::TRUE, Lit::FALSE);
    }

    #[test]
    fn codes_roundtrip() {
        for code in 0..32 {
            let l = Lit::from_code(code);
            assert_eq!(l.code(), code);
            assert_eq!(Lit::new(l.var(), l.is_complemented()), l);
        }
    }

    #[test]
    fn sign_manipulation() {
        let l = Var::from_index(9).lit();
        assert_eq!(l.with_sign(true), !l);
        assert_eq!(l.with_sign(false), l);
        assert_eq!((!l).abs(), l);
        assert_eq!(l.xor_sign(true).xor_sign(true), l);
    }

    #[test]
    fn ordering_groups_phases() {
        let a = Var::from_index(2).lit();
        assert!(a < !a);
        assert!(!a < Var::from_index(3).lit());
    }
}
