//! E1 / Table 1 — circuit-based quantification vs naive vs BDD.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::preimage_workload;
use cbq_cnf::AigCnf;
use cbq_core::{exists_bdd, exists_many, QuantConfig};
use cbq_ckt::generators;

fn bench_quantify(c: &mut Criterion) {
    let net = generators::arbiter(6);
    let (aig0, pre, pis) = preimage_workload(&net, 1);
    let mut g = c.benchmark_group("e1-quantify");
    g.sample_size(10);
    for (label, cfg) in [
        ("naive", QuantConfig::naive()),
        ("merge", QuantConfig::merge_only()),
        ("full", QuantConfig::full()),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut aig = aig0.clone();
                let mut cnf = AigCnf::new();
                exists_many(&mut aig, pre, &pis, &mut cnf, &cfg).lit
            })
        });
    }
    g.bench_function("bdd", |b| {
        b.iter(|| {
            let mut aig = aig0.clone();
            exists_bdd(&mut aig, pre, &pis, usize::MAX)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_quantify);
criterion_main!(benches);
