//! The cross-engine **lemma bus** of the parallel [`crate::Portfolio`].
//!
//! Concurrent members discover facts about the *same* transition
//! structure from very different angles: IC3 learns frame clauses over
//! the latches (cubes of unreachable states), and the SAT-sweeping path
//! proves node merges over the original next-state/bad cones. The bus is
//! the channel between them — a mutex-guarded append-only store with an
//! atomic generation counter, so consumers poll with one cheap load and
//! only take the lock when something new was published.
//!
//! ## Zero-trust admission
//!
//! Nothing read off the bus is believed. Every consumer re-validates a
//! published lemma with the same admission discipline as the PR-6
//! warm-start seeds before using it:
//!
//! * **latch cubes** (from IC3): well-formed, excludes the initial
//!   state, and passes one relative-induction query against the
//!   consumer's own admitted set ([`LemmaValidator::admit`]) — so the
//!   admitted conjunction is always a genuine inductive invariant and
//!   each admitted clause holds in every reachable state;
//! * **node merges** (from the sweep scout): re-proved equivalent by the
//!   consumer's own SAT database ([`cbq_cnf::AigCnf::prove_equiv`] under
//!   a small conflict budget) before [`cbq_cnf::AigCnf::learn_equiv`]
//!   records it.
//!
//! A bad, stale, or even adversarial publication therefore costs the
//! consumer a few queries — never a verdict.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::Network;
use cbq_cnf::AigCnf;
use cbq_sat::{SatLit, SatResult};

/// A lemma cube over latches: `(latch ordinal, value)` pairs.
pub type LatchCube = Vec<(usize, bool)>;

/// Append-only cube store with exact-duplicate suppression (IC3 pushes
/// the same cube through several frames; siblings only want it once).
/// Each entry carries an *already inductive* tag: `F_∞` clauses — proved
/// inductive outright by the publisher — may be re-published tagged even
/// after an untagged copy went out, so consumers get the upgrade.
#[derive(Debug, Default)]
struct CubeStore {
    list: Vec<(LatchCube, bool)>,
    seen: HashSet<LatchCube>,
    seen_inductive: HashSet<LatchCube>,
}

/// The shared lemma channel of one parallel portfolio run.
///
/// Publications are never removed; consumers track how far they have
/// read with a [`BusCursor`] and fetch only the new tail. All locks
/// recover from poisoning — a panicking member must not silence the bus
/// for its siblings (the store is append-only, so a lock held across a
/// panic can at worst leave one half-pushed entry's allocation, never a
/// torn lemma).
#[derive(Debug, Default)]
pub struct LemmaBus {
    cube_gen: AtomicU64,
    merge_gen: AtomicU64,
    cubes: Mutex<CubeStore>,
    merges: Mutex<Vec<(Lit, Lit)>>,
}

/// A consumer's read position on the bus.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusCursor {
    cube_gen: u64,
    merge_gen: u64,
    cubes: usize,
    merges: usize,
}

/// Publication counters of a [`LemmaBus`], for run stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusCounts {
    /// Distinct latch cubes published (IC3 frame clauses).
    pub cubes: u64,
    /// Node merges published (sweep-proven equivalences, in original
    /// network coordinates).
    pub merges: u64,
}

impl LemmaBus {
    /// An empty bus.
    pub fn new() -> LemmaBus {
        LemmaBus::default()
    }

    /// Publishes an IC3 frame clause (as its blocked cube). Exact
    /// duplicates are dropped. Returns whether the cube was new.
    pub fn publish_cube(&self, cube: LatchCube) -> bool {
        let mut store = self.cubes.lock().unwrap_or_else(|p| p.into_inner());
        if !store.seen.insert(cube.clone()) {
            return false;
        }
        store.list.push((cube, false));
        drop(store);
        self.cube_gen.fetch_add(1, Ordering::Release);
        true
    }

    /// Publishes an `F_∞` clause with the *already inductive* tag: the
    /// publisher proved `¬c` inductive outright, so consumers may
    /// fast-path admission ([`LemmaValidator::admit_inductive`]) instead
    /// of waiting for a mutual-induction batch. A cube previously
    /// published *untagged* is re-published tagged (the upgrade is
    /// news); a tagged duplicate is dropped. Returns whether the tagged
    /// entry was new.
    pub fn publish_inductive(&self, cube: LatchCube) -> bool {
        let mut store = self.cubes.lock().unwrap_or_else(|p| p.into_inner());
        if !store.seen_inductive.insert(cube.clone()) {
            return false;
        }
        store.seen.insert(cube.clone());
        store.list.push((cube, true));
        drop(store);
        self.cube_gen.fetch_add(1, Ordering::Release);
        true
    }

    /// Publishes a SAT-proven node merge `a ≡ b`, in the coordinates of
    /// the *original* network AIG (both literals' nodes predate any
    /// unrolling or sweep GC).
    pub fn publish_merge(&self, a: Lit, b: Lit) {
        self.merges
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((a, b));
        self.merge_gen.fetch_add(1, Ordering::Release);
    }

    /// Whether anything was published since `cursor` last read.
    pub fn has_news(&self, cursor: &BusCursor) -> bool {
        self.cube_gen.load(Ordering::Acquire) != cursor.cube_gen
            || self.merge_gen.load(Ordering::Acquire) != cursor.merge_gen
    }

    /// The cubes published since `cursor` last read them, each with its
    /// *already inductive* tag (advances the cursor). Cheap when nothing
    /// new was published: one atomic load, no lock.
    pub fn cubes_since(&self, cursor: &mut BusCursor) -> Vec<(LatchCube, bool)> {
        let gen = self.cube_gen.load(Ordering::Acquire);
        if gen == cursor.cube_gen {
            return Vec::new();
        }
        cursor.cube_gen = gen;
        let store = self.cubes.lock().unwrap_or_else(|p| p.into_inner());
        let fresh = store.list[cursor.cubes.min(store.list.len())..].to_vec();
        cursor.cubes = store.list.len();
        fresh
    }

    /// The merges published since `cursor` last read them (advances the
    /// cursor).
    pub fn merges_since(&self, cursor: &mut BusCursor) -> Vec<(Lit, Lit)> {
        let gen = self.merge_gen.load(Ordering::Acquire);
        if gen == cursor.merge_gen {
            return Vec::new();
        }
        cursor.merge_gen = gen;
        let merges = self.merges.lock().unwrap_or_else(|p| p.into_inner());
        let fresh = merges[cursor.merges.min(merges.len())..].to_vec();
        cursor.merges = merges.len();
        fresh
    }

    /// Total publication counts so far.
    pub fn counts(&self) -> BusCounts {
        BusCounts {
            cubes: self
                .cubes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .list
                .len() as u64,
            merges: self.merges.lock().unwrap_or_else(|p| p.into_inner()).len() as u64,
        }
    }
}

/// Re-validates bus cubes for one consumer: a private one-step model of
/// the transition structure (latches as free inputs, functional `δ`)
/// plus the conjunction of everything admitted so far.
///
/// [`LemmaValidator::admit`] runs the PR-6 seed discipline: normalize,
/// well-formedness, init-exclusion, then one relative-induction query
/// `SAT? [A ∧ ¬c ∧ c(δ)]` against the admitted set `A`. By induction
/// over admission order the conjunction `A` stays a genuine inductive
/// invariant that the initial state satisfies, so *each* admitted clause
/// holds in every reachable state and may be assumed at any frame of any
/// unrolling.
pub struct LemmaValidator {
    aig: Aig,
    cnf: AigCnf,
    latches: Vec<Var>,
    deltas: Vec<Lit>,
    init_state: Vec<bool>,
    /// Guard of the admitted set `A`.
    admitted: SatLit,
    retired: u32,
}

impl LemmaValidator {
    /// A validator for `net`'s transition structure.
    pub fn new(net: &Network) -> LemmaValidator {
        let mut cnf = AigCnf::new();
        let admitted = cnf.new_guard();
        LemmaValidator {
            aig: net.aig().clone(),
            cnf,
            latches: net.latch_vars(),
            deltas: net.latches().iter().map(|l| l.next).collect(),
            init_state: net.initial_state(),
            admitted,
            retired: 0,
        }
    }

    /// The AIG literal asserting latch `ord == val`.
    fn latch_lit(&self, ord: usize, val: bool) -> Lit {
        self.latches[ord].lit().xor_sign(!val)
    }

    /// Normalizes and validates `cube`; on success the clause `¬cube`
    /// joins the admitted set and the normalized cube is returned.
    pub fn admit(&mut self, cube: &[(usize, bool)]) -> Option<LatchCube> {
        let mut cube = cube.to_vec();
        cube.sort_unstable_by_key(|&(ord, _)| ord);
        cube.dedup();
        let well_formed = !cube.is_empty()
            && cube.windows(2).all(|w| w[0].0 != w[1].0)
            && cube.iter().all(|&(ord, _)| ord < self.latches.len());
        if !well_formed {
            return None;
        }
        // Init-exclusion: some literal must disagree with the (single,
        // fully specified) reset state.
        if !cube.iter().any(|&(ord, val)| self.init_state[ord] != val) {
            return None;
        }
        // One relative-induction query: can a state satisfying A ∧ ¬c
        // step into c? The ¬c clause lives under a per-query guard; each
        // c(δ) conjunct is its own assumption.
        let actq = self.cnf.new_guard();
        let neg_cube: Vec<SatLit> = cube
            .iter()
            .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
            .collect();
        self.cnf.add_guarded_by(actq, &neg_cube);
        let mut assumptions = vec![actq, self.admitted];
        for &(ord, val) in &cube {
            let succ = self.deltas[ord].xor_sign(!val);
            assumptions.push(self.cnf.ensure(&self.aig, succ));
        }
        let result = self.cnf.solve_under_assuming(&self.aig, &[], &assumptions);
        self.cnf.retire_guard(actq);
        self.retired += 1;
        if self.retired.is_multiple_of(256) {
            self.cnf.reclaim_guards();
        }
        match result {
            SatResult::Unsat => {
                let clause: Vec<SatLit> = cube
                    .iter()
                    .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
                    .collect();
                self.cnf.add_guarded_by(self.admitted, &clause);
                Some(cube)
            }
            _ => None,
        }
    }

    /// Admits the **maximal inductive subset** of `cubes` relative to
    /// the admitted set, by the classic peeling iteration: assume the
    /// whole candidate set in the pre-state, check each candidate's
    /// one-step consecution, drop every candidate that fails, repeat
    /// until a round survives intact. This is strictly stronger than
    /// per-cube [`LemmaValidator::admit`]: IC3's pushed frame clauses
    /// are usually inductive only *as a set* (mutual induction), and
    /// one-at-a-time admission rejects all of them.
    ///
    /// Returns the normalized admitted cubes; rejected candidates cost
    /// queries, never soundness — the surviving set plus `A` passes the
    /// same consecution check as sequential admission would.
    pub fn admit_batch(&mut self, cubes: &[LatchCube]) -> Vec<LatchCube> {
        let mut candidates: Vec<LatchCube> = Vec::new();
        for cube in cubes {
            let mut cube = cube.clone();
            cube.sort_unstable_by_key(|&(ord, _)| ord);
            cube.dedup();
            let well_formed = !cube.is_empty()
                && cube.windows(2).all(|w| w[0].0 != w[1].0)
                && cube.iter().all(|&(ord, _)| ord < self.latches.len());
            if well_formed
                && cube.iter().any(|&(ord, val)| self.init_state[ord] != val)
                && !candidates.contains(&cube)
            {
                candidates.push(cube);
            }
        }
        while !candidates.is_empty() {
            // One peeling round: ¬c for every candidate (and everything
            // previously admitted) holds in the pre-state; each c must
            // then be unreachable in one step.
            let round = self.cnf.new_guard();
            for cube in &candidates {
                let clause: Vec<SatLit> = cube
                    .iter()
                    .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
                    .collect();
                self.cnf.add_guarded_by(round, &clause);
            }
            let mut survivors = Vec::new();
            for cube in &candidates {
                let mut assumptions = vec![round, self.admitted];
                for &(ord, val) in cube {
                    let succ = self.deltas[ord].xor_sign(!val);
                    assumptions.push(self.cnf.ensure(&self.aig, succ));
                }
                let result = self.cnf.solve_under_assuming(&self.aig, &[], &assumptions);
                if result == SatResult::Unsat {
                    survivors.push(cube.clone());
                }
            }
            self.cnf.retire_guard(round);
            self.retired += 1;
            if self.retired.is_multiple_of(256) {
                self.cnf.reclaim_guards();
            }
            let stable = survivors.len() == candidates.len();
            candidates = survivors;
            if stable {
                break;
            }
        }
        for cube in &candidates {
            let clause: Vec<SatLit> = cube
                .iter()
                .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
                .collect();
            self.cnf.add_guarded_by(self.admitted, &clause);
        }
        candidates
    }

    /// Fast-path admission for cubes published with the *already
    /// inductive* tag ([`LemmaBus::publish_inductive`]): sequential
    /// [`LemmaValidator::admit`] in publication order. The publisher
    /// proved each clause inductive relative to the tagged clauses
    /// before it, so in-order single queries succeed without the
    /// quadratic peeling of [`LemmaValidator::admit_batch`] — while the
    /// zero-trust discipline is fully retained: a mistagged or poisoned
    /// publication still fails its own consecution query and is
    /// rejected. Returns the normalized admitted cubes.
    pub fn admit_inductive(&mut self, cubes: &[LatchCube]) -> Vec<LatchCube> {
        cubes.iter().filter_map(|cube| self.admit(cube)).collect()
    }

    /// SAT checks issued so far (consumers fold this into their stats).
    pub fn checks(&self) -> u64 {
        self.cnf.stats().checks
    }
}

/// Instantiates an admitted lemma cube as a guarded clause over one
/// unrolled frame: `state[ord]` is the frame's function for latch `ord`,
/// and the added clause is `⋁ ¬(state[ord] == val)`. Constants fold away
/// (see [`cbq_cnf::AigCnf::add_guarded_clause_lits`]); an identically
/// false clause is skipped — dropping an instantiation is always sound.
pub fn assume_cube_at(
    cnf: &mut AigCnf,
    aig: &Aig,
    guard: SatLit,
    state: &[Lit],
    cube: &[(usize, bool)],
) -> bool {
    let clause: Vec<Lit> = cube
        .iter()
        .map(|&(ord, val)| state[ord].xor_sign(val))
        .collect();
    cnf.add_guarded_clause_lits(aig, guard, &clause)
}

/// Per-consumer bus traffic counters, shared by the BMC, k-induction,
/// and IC3 stats records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusClientStats {
    /// Bus cubes admitted after re-validation.
    pub lemmas_admitted: u64,
    /// Bus cubes rejected (malformed, init-intersecting, or not
    /// inductive relative to the consumer's admitted set).
    pub lemmas_rejected: u64,
    /// Bus merges re-proved and learned into the consumer's database.
    pub merges_learned: u64,
    /// Bus merges the consumer could not re-prove (out of coordinate
    /// range, budget, or genuinely not equivalent).
    pub merges_rejected: u64,
}

impl BusClientStats {
    /// Whether any bus traffic reached this consumer.
    pub fn any(&self) -> bool {
        *self != BusClientStats::default()
    }

    /// Sums the counters of `other` into `self`.
    pub fn absorb(&mut self, other: &BusClientStats) {
        self.lemmas_admitted += other.lemmas_admitted;
        self.lemmas_rejected += other.lemmas_rejected;
        self.merges_learned += other.merges_learned;
        self.merges_rejected += other.merges_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn bus_delivers_each_publication_once() {
        let bus = LemmaBus::new();
        let mut cursor = BusCursor::default();
        assert!(bus.cubes_since(&mut cursor).is_empty());
        assert!(bus.publish_cube(vec![(0, true)]));
        assert!(!bus.publish_cube(vec![(0, true)]), "duplicate suppressed");
        assert!(bus.publish_cube(vec![(1, false)]));
        assert_eq!(bus.cubes_since(&mut cursor).len(), 2);
        assert!(bus.cubes_since(&mut cursor).is_empty());
        bus.publish_merge(Lit::TRUE, Lit::FALSE);
        assert_eq!(bus.merges_since(&mut cursor).len(), 1);
        assert_eq!(
            bus.counts(),
            BusCounts {
                cubes: 2,
                merges: 1
            }
        );
        // A second consumer starts from scratch and sees everything.
        let mut fresh = BusCursor::default();
        assert_eq!(bus.cubes_since(&mut fresh).len(), 2);
        assert_eq!(bus.merges_since(&mut fresh).len(), 1);
    }

    #[test]
    fn inductive_tag_rides_the_cube_stream() {
        let bus = LemmaBus::new();
        let mut cursor = BusCursor::default();
        assert!(bus.publish_cube(vec![(0, true)]));
        assert!(bus.publish_inductive(vec![(1, false)]));
        assert_eq!(
            bus.cubes_since(&mut cursor),
            vec![(vec![(0, true)], false), (vec![(1, false)], true)]
        );
        // An untagged cube upgrades to a tagged re-publication; the
        // reverse (and a tagged duplicate) is suppressed.
        assert!(bus.publish_inductive(vec![(0, true)]));
        assert!(!bus.publish_inductive(vec![(0, true)]), "tagged dup");
        assert!(!bus.publish_cube(vec![(1, false)]), "downgrade is not news");
        assert_eq!(bus.cubes_since(&mut cursor), vec![(vec![(0, true)], true)]);
    }

    #[test]
    fn inductive_fast_path_admits_in_order_and_stays_zero_trust() {
        // a' = a (init 0), b' = a (init 0): {b} is inductive only
        // relative to {a} — in publication order the fast path admits
        // both with one query each, while a mistagged junk cube and a
        // genuinely non-inductive cube are still rejected.
        let mut b = cbq_ckt::Network::builder("ford");
        let a = b.add_latch(false);
        let bv = b.add_latch(false);
        b.set_next(a, a.lit());
        b.set_next(bv, a.lit());
        let net = b.build(cbq_aig::Lit::FALSE);
        let mut v = LemmaValidator::new(&net);
        let admitted = v.admit_inductive(&[
            vec![(0, true)],
            vec![(1, true)],              // needs {a} admitted first — it is
            vec![(99, true)],             // mistagged junk
            vec![(0, false), (1, false)], // intersects init
        ]);
        assert_eq!(admitted, vec![vec![(0, true)], vec![(1, true)]]);
    }

    #[test]
    fn validator_admits_real_invariants_and_rejects_junk() {
        let net = generators::token_ring(4);
        let mut v = LemmaValidator::new(&net);
        // Malformed / init-intersecting candidates fall before any query.
        assert!(v.admit(&[]).is_none(), "empty");
        assert!(v.admit(&[(0, true), (0, false)]).is_none(), "contradictory");
        assert!(v.admit(&[(99, true)]).is_none(), "out of range");
        // {l0, l1} (two adjacent tokens) is truly unreachable, but NOT
        // inductive on its own (a {l3, l0} state rotates into it), so
        // the zero-trust validator must reject it — a sound loss.
        assert!(v.admit(&[(0, true), (1, true)]).is_none());
        // The all-zero state loses the token and no state maps to it
        // (rotation is a bijection): inductive alone, admissible.
        assert!(v
            .admit(&[(0, false), (1, false), (2, false), (3, false)])
            .is_some());
        assert!(v.checks() > 0);
    }

    #[test]
    fn validator_admission_is_relative_to_the_admitted_set() {
        // a' = a (init 0), b' = a (init 0), bad = false. The cube {b}
        // is not inductive alone (a state with a=1 steps into b=1) but
        // becomes inductive once {a} is admitted.
        let mut b = cbq_ckt::Network::builder("rel");
        let a = b.add_latch(false);
        let bv = b.add_latch(false);
        b.set_next(a, a.lit());
        b.set_next(bv, a.lit());
        let net = b.build(cbq_aig::Lit::FALSE);
        let mut v = LemmaValidator::new(&net);
        assert!(v.admit(&[(1, true)]).is_none(), "not inductive alone");
        assert!(v.admit(&[(0, true)]).is_some(), "inductive alone");
        assert!(
            v.admit(&[(1, true)]).is_some(),
            "inductive relative to the admitted set"
        );
        // Unordered, duplicated input is normalized before admission.
        let normalized = v.admit(&[(1, true), (0, true), (1, true)]).unwrap();
        assert_eq!(normalized, vec![(0, true), (1, true)]);
    }

    #[test]
    fn batch_admission_handles_mutual_induction() {
        // a' = b, b' = a (both init 0): the states (1,0) and (0,1) swap
        // into each other, so neither cube is inductive alone but the
        // pair is — exactly the shape of IC3's pushed frame clauses.
        let mut b = cbq_ckt::Network::builder("swap");
        let a = b.add_latch(false);
        let bv = b.add_latch(false);
        b.set_next(a, bv.lit());
        b.set_next(bv, a.lit());
        let net = b.build(cbq_aig::Lit::FALSE);
        let c1 = vec![(0, true), (1, false)];
        let c2 = vec![(0, false), (1, true)];
        let mut v = LemmaValidator::new(&net);
        assert!(v.admit(&c1).is_none(), "not inductive alone");
        assert!(v.admit(&c2).is_none(), "not inductive alone");
        // The peeling iteration keeps the mutually inductive pair and
        // drops the junk: an init-intersecting cube and an out-of-range
        // ordinal fall in the filter, a genuinely non-inductive cube in
        // the consecution rounds.
        let batch = v.admit_batch(&[
            c1.clone(),
            c2.clone(),
            vec![(99, true)],
            vec![(0, false), (1, false)],
        ]);
        assert_eq!(batch, vec![c1.clone(), c2]);
        // Once the pair is admitted, each member re-admits trivially.
        assert!(v.admit(&c1).is_some());
    }
}
