//! A minimal recursive-descent JSON reader — the parsing counterpart of
//! the emitters in [`cbq_mc::json`]. The workspace carries no
//! serialization dependency, and the wire protocol needs only the
//! standard scalar/array/object shapes, so ~200 lines of hand-rolled
//! parser is the whole story.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the protocol's integers are all well
    /// inside the exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last value on
    /// lookup, like most readers).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{}", cbq_mc::json::json_str(s)),
            Json::Arr(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", cbq_mc::json::json_str(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            continue; // pos already past the escape
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "non-ascii \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(
            Json::parse("[1,2,[]]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])])
        );
        let obj = Json::parse(r#"{"a":1,"b":{"c":"x\ny"}}"#).unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            obj.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn escapes_roundtrip_with_the_emitter() {
        let original = "line1\nline2\t\"quoted\" \\ λ \u{1}";
        let encoded = cbq_mc::json::json_str(original);
        assert_eq!(
            Json::parse(&encoded).unwrap(),
            Json::Str(original.to_string())
        );
        // Surrogate pair (emoji) via explicit escapes.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"x", "nul", "{\"a\"1}", "1 2", "{]"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_reparses() {
        let v = Json::parse(r#"{"s":"a\"b","n":[1,true,null]}"#).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
