//! E5 / Table 3 — don't-care optimisation passes (ablation).

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::preimage_workload;
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_ckt::generators;
use cbq_synth::OptConfig;

fn bench_dcopt(c: &mut Criterion) {
    let net = generators::arbiter(6);
    let (aig0, pre, pis) = preimage_workload(&net, 1);
    let mut g = c.benchmark_group("e5-dcopt");
    g.sample_size(10);
    let configs: [(&str, QuantConfig); 3] = [
        ("merge-only", QuantConfig::merge_only()),
        ("with-input-dc", QuantConfig::full()),
        ("with-odc", {
            let mut cfg = QuantConfig::full();
            cfg.opt = OptConfig {
                use_odc: true,
                ..OptConfig::default()
            };
            cfg
        }),
    ];
    for (label, cfg) in configs {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut aig = aig0.clone();
                let mut cnf = AigCnf::new();
                exists_many(&mut aig, pre, &pis, &mut cnf, &cfg).lit
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dcopt);
criterion_main!(benches);
