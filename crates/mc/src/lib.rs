//! # cbq-mc — unbounded model checking engines
//!
//! The traversal layer of the DATE 2005 reproduction. The headline engine
//! is [`CircuitUmc`] — the paper's Section 3 routine: backward
//! breadth-first reachability from the complement of the property, with
//! **state sets represented as AIGs**, pre-image computed by
//! *quantification by substitution* (in-lining of the next-state
//! functions) followed by circuit-based quantification of the primary
//! inputs, and all fixpoint/intersection tests delegated to the SAT
//! engine.
//!
//! Alongside it, every method the paper compares against or combines with
//! (Section 4):
//!
//! * [`BddUmc`] — classical canonical-representation reachability (the
//!   baseline the paper wants to escape), backward and forward;
//! * [`Bmc`] — bounded model checking (Biere et al. [1]);
//! * [`KInduction`] — inductive unbounded verification with simple-path
//!   strengthening (Sheeran et al. [5]);
//! * [`Ic3`] — property-directed reachability (Bradley; Eén, Mishchenko,
//!   Brayton): clause frames over latches, proof-obligation blocking with
//!   unsat-core generalization, and forward clause propagation, all on
//!   one persistent activation-literal clause database — the portfolio's
//!   convergence-based prover for properties BMC cannot close and plain
//!   induction cannot reach;
//! * [`ganai`] — all-solutions SAT pre-image with *circuit cofactoring*
//!   (Ganai, Gupta, Ashar [2]), usable standalone or as the
//!   residual-variable fallback of partial circuit quantification — the
//!   hybrid the paper proposes ("our approach could dramatically decrease
//!   the amount of decision (input) variables to be processed by SAT
//!   based pre-image").
//!
//! Every engine implements the [`Engine`] trait — one polymorphic entry
//! point `check(&self, net, budget) -> McRun` over an immutable
//! [`cbq_ckt::Network`]. A [`Budget`] bounds steps, representation
//! nodes, SAT checks, and wall-clock time; exhaustion yields
//! [`Verdict::Bounded`] instead of a hang. `Unsafe` verdicts carry a
//! [`cbq_ckt::Trace`] that replays concretely on the network, and every
//! [`McRun`] holds a common [`McStats`] record with the engine-specific
//! counters downcastable via [`McRun::detail`].
//!
//! The circuit-based traversals run on the partitioned [`stateset`]
//! subsystem: a [`StateSet`] is a disjunction of partitions, each owning
//! its own AIG manager and clause database, tiled over the state space
//! by latch-cofactor windows (or divided by frontier-of-origin), with
//! per-partition pre-image/image + quantification + sweep executed in
//! parallel via `std::thread::scope` and re-joined by a deterministic
//! index-ordered merge. Between iterations each partition runs the
//! [`sweep`] subsystem — SAT-sweeping (fraiging) plus garbage collection
//! of the frontier/reached cones — so state-set representations shrink
//! instead of growing monotonically;
//! `--sweep`/`--quant-order`/`--partitions`/`--split` style tuning is
//! exposed through [`EngineTuning`] / [`by_name_tuned`].
//!
//! Engines are also constructible by name through the registry —
//! [`by_name`] / [`registry`] — which is how the CLI, benches, and
//! cross-engine tests dispatch. [`Portfolio`] composes registered
//! engines into a budget-sliced sequence, or — in parallel mode — into
//! concurrent scoped-thread workers with first-conclusive-answer
//! cancellation and a cross-engine [`LemmaBus`].
//!
//! ## Example
//!
//! ```
//! use cbq_ckt::generators;
//! use cbq_mc::{Budget, CircuitUmc, Engine, Verdict};
//!
//! let net = generators::token_ring(4);
//! let run = CircuitUmc::default().check(&net, &Budget::unlimited());
//! assert!(matches!(run.verdict, Verdict::Safe { .. }));
//!
//! // The same engine, resolved from the registry and driven as a
//! // trait object under a step budget:
//! let engine = <dyn Engine>::by_name("circuit").expect("registered");
//! let buggy = generators::token_ring_bug(4);
//! let run = engine.check(&buggy, &Budget::unlimited().with_steps(64));
//! match run.verdict {
//!     Verdict::Unsafe { trace } => assert!(trace.validates(&buggy)),
//!     other => panic!("expected a counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd_umc;
mod bmc;
mod bus;
mod circuit_umc;
mod engine;
mod forward_umc;
mod ic3;
mod induction;
mod itp;
mod portfolio;
#[cfg(test)]
mod testsupport;
mod verdict;

pub mod explicit;
pub mod ganai;
pub mod json;
pub mod preimage;
pub mod stateset;
pub mod sweep;

pub use crate::bdd_umc::{BddDirection, BddUmc, BddUmcStats};
pub use crate::bmc::{Bmc, BmcStats};
pub use crate::bus::{BusClientStats, BusCounts, BusCursor, LatchCube, LemmaBus, LemmaValidator};
pub use crate::circuit_umc::{CircuitUmc, CircuitUmcStats, ResidualPolicy};
pub use crate::engine::{
    by_name, by_name_tuned, engine_names, registry, supports_tuning, Budget, Engine, EngineSpec,
    EngineTuning, Meter,
};
pub use crate::forward_umc::{ForwardCircuitUmc, ForwardCircuitUmcStats};
pub use crate::ic3::{GenMode, Ic3, Ic3Stats};
pub use crate::induction::{KInduction, KInductionStats};
pub use crate::itp::{Itp, ItpStats};
pub use crate::portfolio::{Portfolio, PortfolioBusStats, PortfolioStats};
pub use crate::stateset::{PartitionConfig, PartitionCount, PartitionStats, SplitPolicy, StateSet};
pub use crate::verdict::{McRun, McStats, Resource, Verdict};
