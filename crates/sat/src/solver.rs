//! The CDCL solver, built on the flat clause arena of [`crate::arena`].
//!
//! Differences from a textbook MiniSat that matter to the rest of the
//! stack:
//!
//! * **Arena clause storage** — clauses are `u32` runs in one contiguous
//!   [`ClauseArena`]; watcher lists carry `CRef` + blocker literal, and
//!   reduce-DB compacts the arena in place (remapping reasons, rebuilding
//!   watches) instead of freeing per-clause allocations.
//! * **LBD (glue) scoring** — each learnt clause's "literal block
//!   distance" is computed at learn time and lowered whenever a conflict
//!   re-derives the clause through fewer decision levels; reduce-DB is
//!   glue-tiered: clauses with LBD ≤ 2 are kept unconditionally, the rest
//!   are sorted by glue and the worst half deleted.
//! * **Saved-phase + target-phase polarity** — branching replays the last
//!   polarity of each variable (phase saving); on alternating restarts it
//!   instead replays the polarity of the deepest trail seen this call
//!   (target phase), which re-approaches the most satisfying region found
//!   so far.
//! * **Per-call conflict budgets** — [`Solver::set_conflict_budget`]
//!   bounds each `solve`/`solve_with` call independently: every call gets
//!   the full budget, nothing leaks from earlier calls.

use crate::arena::{CRef, ClauseArena};
use crate::proof::{ClauseId, ProofLog, ProofMode};
use crate::types::{Lbool, SatLit, SatResult, SatVar};

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: CRef,
    blocker: SatLit,
}

/// Number of buckets of [`SolverStats::lbd_hist`]: bucket `i` counts
/// learnt clauses of LBD `i + 1`, the last bucket everything at or above.
pub const LBD_BUCKETS: usize = 8;

/// Aggregate counters exposed by [`Solver::stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted: u64,
    /// Number of `solve`/`solve_with` calls.
    pub solves: u64,
    /// Reduce-DB (arena compaction) rounds executed.
    pub reduces: u64,
    /// Clauses purged as satisfied at level 0 ([`Solver::purge_satisfied`]).
    pub purged: u64,
    /// Variables released from branching ([`Solver::set_decision`]).
    pub released_vars: u64,
    /// Variables returned to the free list ([`Solver::recycle_vars`]) for
    /// reuse by later [`Solver::new_var`] calls.
    pub recycled_vars: u64,
    /// Current clause-arena size in `u32` words (headers + literals).
    pub arena_words: u64,
    /// Learn-time LBD histogram: bucket `i` counts clauses learnt with
    /// LBD `i + 1`; the last bucket collects everything at or above
    /// [`LBD_BUCKETS`].
    pub lbd_hist: [u64; LBD_BUCKETS],
}

impl SolverStats {
    /// Current clause-arena size in bytes.
    pub fn arena_bytes(&self) -> u64 {
        self.arena_words * std::mem::size_of::<u32>() as u64
    }

    /// Accumulates another counter record into this one (used to fold the
    /// per-partition solvers of a partitioned traversal into one total).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learnts += other.learnts;
        self.deleted += other.deleted;
        self.solves += other.solves;
        self.reduces += other.reduces;
        self.purged += other.purged;
        self.released_vars += other.released_vars;
        self.recycled_vars += other.recycled_vars;
        self.arena_words += other.arena_words;
        for (slot, n) in self.lbd_hist.iter_mut().zip(other.lbd_hist.iter()) {
            *slot += n;
        }
    }
}

const VAR_DECAY: f64 = 0.95;
const RESTART_BASE: u64 = 100;
/// Learnt clauses with LBD at or below this glue tier are never deleted.
const GLUE_KEEP: u32 = 2;

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate-level documentation](crate) for an overview and example.
/// The solver is fully incremental: clauses may be added between calls to
/// [`Solver::solve`]/[`Solver::solve_with`], and everything learnt in one
/// call benefits later calls — the property the paper's factorised
/// SAT-merge depends on.
#[derive(Clone, Debug)]
pub struct Solver {
    ca: ClauseArena,
    clauses: Vec<CRef>,
    learnts: Vec<CRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Lbool>,
    phase: Vec<bool>,
    decision: Vec<bool>,
    target_phase: Vec<bool>,
    best_trail: usize,
    use_target: bool,
    reason: Vec<Option<CRef>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    free: Vec<u32>,
    var_inc: f64,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    lbd_stamp: Vec<u64>,
    lbd_token: u64,
    ok: bool,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    call_conflicts: u64,
    failed: Vec<SatLit>,
    model: Vec<Lbool>,
    stats: SolverStats,
    /// Resolution provenance, allocated only when a [`ProofMode`] other
    /// than `Off` is selected — the hot path pays one `is_some` branch.
    proof: Option<Box<ProofLog>>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            ca: ClauseArena::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            decision: Vec::new(),
            target_phase: Vec::new(),
            best_trail: 0,
            use_target: false,
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            free: Vec::new(),
            var_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            lbd_stamp: vec![0],
            lbd_token: 0,
            ok: true,
            max_learnts: 4000.0,
            conflict_budget: None,
            call_conflicts: 0,
            failed: Vec::new(),
            model: Vec::new(),
            stats: SolverStats::default(),
            proof: None,
        }
    }

    /// Selects the proof mode. Must be called on a pristine solver (no
    /// clauses added, nothing on the trail): provenance cannot be
    /// reconstructed for clauses that predate the log.
    ///
    /// # Panics
    ///
    /// Panics if any clause has already been added.
    pub fn set_proof_mode(&mut self, mode: ProofMode) {
        assert!(
            self.ca.is_empty() && self.clauses.is_empty() && self.trail.is_empty(),
            "proof mode must be selected before any clause is added"
        );
        self.proof = match mode {
            ProofMode::Off => None,
            m => Some(Box::new(ProofLog::new(m))),
        };
    }

    /// The currently selected proof mode.
    pub fn proof_mode(&self) -> ProofMode {
        self.proof.as_ref().map_or(ProofMode::Off, |p| p.mode())
    }

    /// The proof log, when a mode other than `Off` is active.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_deref()
    }

    /// Serialises the logged derivation as a DRAT proof. `Some` only
    /// after an assumption-free [`SatResult::Unsat`] answer (UNSAT under
    /// assumptions derives no empty clause and certifies nothing).
    pub fn drat_proof(&self) -> Option<String> {
        self.proof.as_ref().and_then(|p| p.to_drat())
    }

    /// Sets the partition label stamped on subsequently added clauses
    /// (interpolation tags the A/B sides of a query this way). A no-op
    /// with proofs off.
    pub fn set_proof_label(&mut self, label: u32) {
        if let Some(p) = self.proof.as_mut() {
            p.set_label(label);
        }
    }

    /// Takes the proof log out of the solver (leaving proofs off), so a
    /// caller can keep the trace without cloning it.
    pub fn take_proof(&mut self) -> Option<Box<ProofLog>> {
        self.proof.take()
    }

    #[cfg(test)]
    pub(crate) fn force_reduce_db_for_tests(&mut self) {
        self.max_learnts = 8.0;
    }

    /// Adds a fresh variable, reusing a recycled slot when one is
    /// available (see [`Solver::recycle_vars`]).
    pub fn new_var(&mut self) -> SatVar {
        if let Some(i) = self.free.pop() {
            let v = SatVar::from_index(i as usize);
            self.decision[i as usize] = true;
            self.heap_insert(i);
            return v;
        }
        let v = SatVar::from_index(self.assigns.len());
        self.assigns.push(Lbool::Undef);
        self.phase.push(false);
        self.decision.push(true);
        self.target_phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.heap_pos.push(-1);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v.0);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses added so far, minus any that
    /// were satisfied at level 0 on addition.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics (arena size sampled at call time).
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.arena_words = self.ca.words() as u64;
        s
    }

    /// Sets (or clears) the per-call conflict budget. Each subsequent
    /// `solve`/`solve_with` call gets the *full* budget — conflicts spent
    /// by one call never count against the next — and a call that exceeds
    /// it returns [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Whether the clause database has been proven unsatisfiable outright.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn lit_value(&self, l: SatLit) -> Lbool {
        let a = self.assigns[l.var().index()];
        if l.is_negative() {
            a.negate()
        } else {
            a
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Returns `false` if the database became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (internal use only) or if a literal
    /// names an unknown variable.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut c: Vec<SatLit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(c.len());
        let mut dropped: Vec<SatLit> = Vec::new();
        for (i, &l) in c.iter().enumerate() {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l:?}");
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                Lbool::True => return true,      // already satisfied
                Lbool::False => dropped.push(l), // drop falsified literal
                Lbool::Undef => simplified.push(l),
            }
        }
        // Register the clause as given; if level-0 units dropped literals,
        // the stored clause is a derivation resolving them away.
        let proof_id = self.proof.as_mut().map(|p| {
            let root = p.register_root(&c);
            if dropped.is_empty() {
                root
            } else {
                let steps: Vec<(SatVar, ClauseId)> = dropped
                    .iter()
                    .map(|&l| (l.var(), p.unit_id(l.var())))
                    .collect();
                p.register_derived(&simplified, root, steps)
            }
        });
        match simplified.len() {
            0 => {
                if let (Some(p), Some(id)) = (self.proof.as_mut(), proof_id) {
                    p.set_empty(id);
                }
                self.ok = false;
                false
            }
            1 => {
                if let (Some(p), Some(id)) = (self.proof.as_mut(), proof_id) {
                    p.set_unit(simplified[0].var(), id);
                }
                self.unchecked_enqueue(simplified[0], None);
                if let Some(confl) = self.propagate() {
                    self.proof_empty_from_conflict(confl);
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.attach_clause(&simplified, false, 0);
                if let (Some(p), Some(id)) = (self.proof.as_mut(), proof_id) {
                    p.map_cref(cref, id);
                }
                true
            }
        }
    }

    /// Derives the empty clause from a level-0 conflict: every literal of
    /// the conflicting clause is falsified by a recorded level-0 unit.
    fn proof_empty_from_conflict(&mut self, confl: CRef) {
        if self.proof.is_none() {
            return;
        }
        let lits = self.ca.lits_vec(confl);
        let p = self.proof.as_mut().unwrap();
        let base = p.cref_id(confl);
        let steps: Vec<(SatVar, ClauseId)> =
            lits.iter().map(|q| (q.var(), p.unit_id(q.var()))).collect();
        let id = p.register_derived(&[], base, steps);
        p.set_empty(id);
    }

    /// Records the derivation of a level-0 propagated unit `l` from
    /// clause `c`: every other literal of `c` resolves against its own
    /// recorded level-0 unit. Recorded eagerly because level-0 reasons
    /// are nulled by the purges before they could be consulted.
    fn proof_level0_unit(&mut self, l: SatLit, c: CRef) {
        let lits = self.ca.lits_vec(c);
        let p = self.proof.as_mut().expect("checked by caller");
        let base = p.cref_id(c);
        let steps: Vec<(SatVar, ClauseId)> = lits
            .iter()
            .filter(|q| q.var() != l.var())
            .map(|q| (q.var(), p.unit_id(q.var())))
            .collect();
        let id = p.register_derived(&[l], base, steps);
        p.set_unit(l.var(), id);
    }

    fn attach_clause(&mut self, lits: &[SatLit], learnt: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.ca.alloc(lits, learnt, lbd);
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
        self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.learnts.push(cref);
            self.stats.learnts = self.learnts.len() as u64;
            self.stats.lbd_hist[(lbd.max(1) as usize - 1).min(LBD_BUCKETS - 1)] += 1;
        } else {
            self.clauses.push(cref);
        }
        cref
    }

    fn unchecked_enqueue(&mut self, l: SatLit, reason: Option<CRef>) {
        debug_assert_eq!(self.lit_value(l), Lbool::Undef);
        let v = l.var().index();
        self.assigns[v] = Lbool::from_bool(!l.is_negative());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = !p;
            let mut ws = std::mem::take(&mut self.watches[falsified.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == Lbool::True {
                    i += 1;
                    continue;
                }
                // Normalise: falsified literal at position 1.
                let first = {
                    if self.ca.lit(w.cref, 0) == falsified {
                        self.ca.swap_lits(w.cref, 0, 1);
                    }
                    debug_assert_eq!(self.ca.lit(w.cref, 1), falsified, "stale watcher");
                    self.ca.lit(w.cref, 0)
                };
                // If the other watched literal is already true the clause is
                // satisfied; this must be decided *before* moving watches.
                if self.lit_value(first) == Lbool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                let found_new = {
                    let len = self.ca.len(w.cref);
                    let mut found = None;
                    for k in 2..len {
                        let l = self.ca.lit(w.cref, k);
                        if self.lit_value(l) != Lbool::False {
                            self.ca.swap_lits(w.cref, 1, k);
                            found = Some(l);
                            break;
                        }
                    }
                    found
                };
                if let Some(l) = found_new {
                    // Move watch to l.
                    self.watches[l.code()].push(Watcher {
                        cref: w.cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == Lbool::False {
                    // Conflict: restore the remaining watchers and bail.
                    self.watches[falsified.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                if self.proof.is_some() && self.trail_lim.is_empty() {
                    self.proof_level0_unit(first, w.cref);
                }
                self.unchecked_enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[falsified.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v] >= 0 {
            self.heap_up(self.heap_pos[v] as usize);
        }
    }

    /// The LBD ("glue") of a literal set: distinct decision levels above 0.
    fn compute_lbd(&mut self, lits: &[SatLit]) -> u32 {
        self.lbd_token += 1;
        let mut glue = 0;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl > 0 && self.lbd_stamp[lvl] != self.lbd_token {
                self.lbd_stamp[lvl] = self.lbd_token;
                glue += 1;
            }
        }
        glue
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: CRef) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit::from_code(0)]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let proof_on = self.proof.is_some();
        let base = confl;
        // Resolution steps as (pivot, antecedent CRef), plus the level-0
        // variables whose units close the chain at the end.
        let mut steps: Vec<(SatVar, CRef)> = Vec::new();
        let mut zeros: Vec<SatVar> = Vec::new();
        let mut confl = confl;
        let mut index = self.trail.len();
        loop {
            let lits: Vec<SatLit> = self.ca.lits_vec(confl);
            // Lower the stored glue of a learnt antecedent when the
            // current assignment re-derives it through fewer levels
            // (reusing the literal vector materialised for resolution).
            if self.ca.is_learnt(confl) {
                let glue = self.compute_lbd(&lits);
                if glue < self.ca.lbd(confl) {
                    self.ca.set_lbd(confl, glue);
                }
            }
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if proof_on && self.level[v] == 0 {
                    zeros.push(q.var());
                }
            }
            // Select next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
            if proof_on {
                steps.push((pl.var(), confl));
            }
        }
        learnt[0] = !p.unwrap();

        // Cheap clause minimisation: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        let mut min_dropped: Vec<SatLit> = Vec::new();
        for &q in &learnt[1..] {
            let keep = match self.reason[q.var().index()] {
                None => true,
                Some(r) => {
                    let len = self.ca.len(r);
                    !(1..len).all(|i| {
                        let l = self.ca.lit(r, i);
                        self.seen[l.var().index()] || self.level[l.var().index()] == 0
                    })
                }
            };
            if keep {
                minimized.push(q);
            } else if proof_on {
                min_dropped.push(q);
            }
        }
        // Clear the seen flags of the kept tail.
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = false;
        }
        let mut learnt = minimized;

        // Resolve the minimised literals away, deepest trail position
        // first: a reason only mentions shallower literals, so nothing
        // already resolved out is reintroduced. Level-0 side literals
        // join `zeros` for the trailing unit resolutions.
        if proof_on && !min_dropped.is_empty() {
            let mut pos = vec![0u32; self.num_vars()];
            for (i, &l) in self.trail.iter().enumerate() {
                pos[l.var().index()] = i as u32;
            }
            min_dropped.sort_unstable_by_key(|l| std::cmp::Reverse(pos[l.var().index()]));
            for &q in &min_dropped {
                let r = self.reason[q.var().index()].expect("dropped literal has a reason");
                for i in 1..self.ca.len(r) {
                    let l = self.ca.lit(r, i);
                    if self.level[l.var().index()] == 0 {
                        zeros.push(l.var());
                    }
                }
                steps.push((q.var(), r));
            }
        }
        if proof_on {
            self.proof_stash_chain(base, steps, zeros);
        }

        // Backtrack level: highest level among learnt[1..], whose literal
        // must sit at position 1 (second watch).
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt)
    }

    /// Converts the analysis chain to proof clause ids and stashes it;
    /// `search` consumes the stash when it attaches the learnt clause.
    fn proof_stash_chain(
        &mut self,
        base: CRef,
        steps: Vec<(SatVar, CRef)>,
        mut zeros: Vec<SatVar>,
    ) {
        let p = self.proof.as_mut().expect("checked by caller");
        zeros.sort_unstable();
        zeros.dedup();
        let base = p.cref_id(base);
        let mut chain: Vec<(SatVar, ClauseId)> = Vec::with_capacity(steps.len() + zeros.len());
        for (v, c) in steps {
            chain.push((v, p.cref_id(c)));
        }
        for v in zeros {
            chain.push((v, p.unit_id(v)));
        }
        p.stash(base, chain);
    }

    /// Computes the subset of assumptions responsible for falsifying the
    /// assumption `p`; stores the failed assumptions (including `p`) in
    /// `self.failed`.
    fn analyze_final(&mut self, p: SatLit) {
        self.failed.clear();
        self.failed.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => {
                    if self.level[v] > 0 {
                        // `q` is an assumption pseudo-decision on the trail.
                        self.failed.push(q);
                    }
                }
                Some(r) => {
                    for k in 1..self.ca.len(r) {
                        let l = self.ca.lit(r, k);
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn backtrack(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = !l.is_negative();
            self.assigns[v] = Lbool::Undef;
            self.reason[v] = None;
            if self.decision[v] && self.heap_pos[v] < 0 {
                self.heap_insert(v as u32);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<SatVar> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == Lbool::Undef && self.decision[v as usize] {
                return Some(SatVar(v));
            }
        }
        None
    }

    /// Includes or excludes `v` from branching. Released (non-decision)
    /// variables may be left unassigned by a [`SatResult::Sat`] answer,
    /// so the caller must guarantee one of two invariants for every
    /// released variable: either all its clauses are already satisfied at
    /// level 0 (a retired cone generation), or its value is fully
    /// determined by unit propagation once the decision variables are
    /// assigned — e.g. a Tseitin-defined node whose definition clauses
    /// stay intact and whose fanin chain grounds out in decision
    /// variables (a migrated bridge's strash-collision losers and
    /// constant-mapped nodes). Anything weaker can make a `Sat` answer
    /// unsound.
    pub fn set_decision(&mut self, v: SatVar, decision: bool) {
        let i = v.index();
        if self.decision[i] == decision {
            return;
        }
        self.decision[i] = decision;
        if decision {
            if self.heap_pos[i] < 0 {
                self.heap_insert(i as u32);
            }
        } else {
            self.stats.released_vars += 1;
        }
        // A released variable still in the heap is skipped lazily by
        // `pick_branch_var`.
    }

    /// Returns retired variables to a free list so later
    /// [`Solver::new_var`] calls reuse their slots instead of growing
    /// every per-variable array — the reclamation counterpart to
    /// [`Solver::purge_satisfied`] for activation/guard variables, whose
    /// footprint is otherwise append-only across cone generations.
    ///
    /// The caller must guarantee that **no live clause references any
    /// recycled variable**. A retired guard generation satisfies this
    /// after a purge: the guard appears positively in no clause, so every
    /// clause mentioning it contains its negation, is satisfied once the
    /// unit `!g` is asserted, and is removed by the purge. Any level-0
    /// assignment of a recycled variable is scrubbed from the trail and
    /// all its per-variable state reset to fresh-variable defaults.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search, or if a recycled variable still has
    /// watched clauses (the caller guarantee was violated).
    pub fn recycle_vars(&mut self, vars: &[SatVar]) {
        assert_eq!(self.decision_level(), 0, "recycle only at level 0");
        if vars.is_empty() {
            return;
        }
        let mut mark = vec![false; self.num_vars()];
        for &v in vars {
            let i = v.index();
            assert!(
                self.watches[2 * i].is_empty() && self.watches[2 * i + 1].is_empty(),
                "recycled variable {i} still has watched clauses"
            );
            debug_assert!(
                !mark[i] && !self.free.contains(&(i as u32)),
                "double recycle"
            );
            mark[i] = true;
            self.assigns[i] = Lbool::Undef;
            self.phase[i] = false;
            self.target_phase[i] = false;
            self.reason[i] = None;
            self.level[i] = 0;
            self.activity[i] = 0.0;
            self.seen[i] = false;
            // Keep the slot out of branching until it is re-issued.
            self.decision[i] = false;
            self.heap_remove(i as u32);
            self.free.push(i as u32);
            self.stats.recycled_vars += 1;
            if let Some(p) = self.proof.as_mut() {
                p.clear_unit(v);
            }
        }
        // Scrub the recycled variables' level-0 assignments.
        self.trail.retain(|l| !mark[l.var().index()]);
        self.qhead = self.trail.len();
    }

    /// Deletes every clause satisfied at level 0 (problem and learnt) and
    /// compacts the arena — the memory-reclamation half of retiring a
    /// cone generation: once its activation literal is asserted false,
    /// all its clauses are permanently satisfied and purgeable.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (must be at decision level 0).
    pub fn purge_satisfied(&mut self) {
        assert_eq!(self.decision_level(), 0, "purge only at level 0");
        if !self.ok {
            return;
        }
        let purge_list = |ca: &mut ClauseArena,
                          list: &mut Vec<CRef>,
                          assigns: &[Lbool],
                          purged: &mut u64,
                          dead: &mut Vec<CRef>| {
            list.retain(|&c| {
                let satisfied = (0..ca.len(c)).any(|i| {
                    let l = ca.lit(c, i);
                    let a = assigns[l.var().index()];
                    (if l.is_negative() { a.negate() } else { a }) == Lbool::True
                });
                if satisfied {
                    ca.mark_dead(c);
                    *purged += 1;
                    dead.push(c);
                }
                !satisfied
            });
        };
        let mut purged = 0u64;
        let mut dead: Vec<CRef> = Vec::new();
        purge_list(
            &mut self.ca,
            &mut self.clauses,
            &self.assigns,
            &mut purged,
            &mut dead,
        );
        purge_list(
            &mut self.ca,
            &mut self.learnts,
            &self.assigns,
            &mut purged,
            &mut dead,
        );
        if purged == 0 {
            return;
        }
        if let Some(p) = self.proof.as_mut() {
            for &c in &dead {
                p.delete_cref(c);
            }
        }
        self.stats.purged += purged;
        // Level-0 reasons may point at purged clauses; they are never
        // consulted again (conflict analysis skips level-0 literals), so
        // drop them before compaction instead of remapping dead refs.
        for v in 0..self.num_vars() {
            if self.assigns[v] != Lbool::Undef && self.level[v] == 0 {
                self.reason[v] = None;
            }
        }
        self.compact_arena();
        self.stats.learnts = self.learnts.len() as u64;
    }

    /// Deletes every clause referencing a variable marked in `dead`
    /// (problem and learnt) and compacts the arena. Sound when the marked
    /// variables' constraints are *definitional extensions* — satisfiable
    /// under any assignment of the surviving variables — which is exactly
    /// what a retired/orphaned Tseitin cone is: removing such clauses
    /// changes no verdict of any query over the surviving variables.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (must be at decision level 0).
    pub fn purge_referencing(&mut self, dead: &[bool]) {
        assert_eq!(self.decision_level(), 0, "purge only at level 0");
        if !self.ok {
            return;
        }
        let purge_list =
            |ca: &mut ClauseArena, list: &mut Vec<CRef>, purged: &mut u64, gone: &mut Vec<CRef>| {
                list.retain(|&c| {
                    let orphaned = (0..ca.len(c)).any(|i| {
                        dead.get(ca.lit(c, i).var().index())
                            .copied()
                            .unwrap_or(false)
                    });
                    if orphaned {
                        ca.mark_dead(c);
                        *purged += 1;
                        gone.push(c);
                    }
                    !orphaned
                });
            };
        let mut purged = 0u64;
        let mut gone: Vec<CRef> = Vec::new();
        purge_list(&mut self.ca, &mut self.clauses, &mut purged, &mut gone);
        purge_list(&mut self.ca, &mut self.learnts, &mut purged, &mut gone);
        if purged == 0 {
            return;
        }
        if let Some(p) = self.proof.as_mut() {
            for &c in &gone {
                p.delete_cref(c);
            }
        }
        self.stats.purged += purged;
        // Level-0 reasons may point at purged clauses; they are never
        // consulted again (conflict analysis skips level-0 literals).
        for v in 0..self.num_vars() {
            if self.assigns[v] != Lbool::Undef && self.level[v] == 0 {
                self.reason[v] = None;
            }
        }
        self.compact_arena();
        self.stats.learnts = self.learnts.len() as u64;
    }

    /// Compacts the arena and remaps clause lists, reasons, and watches.
    /// Every dead clause must already be out of the lists and reasons.
    fn compact_arena(&mut self) {
        let remap = self.ca.compact();
        if let Some(p) = self.proof.as_mut() {
            p.remap(&remap);
        }
        for c in &mut self.clauses {
            *c = remap.forward(*c);
        }
        for c in &mut self.learnts {
            *c = remap.forward(*c);
        }
        for r in self.reason.iter_mut() {
            if let Some(c) = *r {
                *r = Some(remap.forward(c));
            }
        }
        for wl in &mut self.watches {
            wl.clear();
        }
        for i in 0..self.clauses.len() + self.learnts.len() {
            let cref = if i < self.clauses.len() {
                self.clauses[i]
            } else {
                self.learnts[i - self.clauses.len()]
            };
            let w0 = self.ca.lit(cref, 0);
            let w1 = self.ca.lit(cref, 1);
            self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
            self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        }
    }

    /// The branching polarity of `v`: the saved phase, or — on
    /// target-phase restarts — the polarity `v` had on the deepest trail
    /// seen this call.
    fn branch_polarity(&self, v: usize) -> bool {
        if self.use_target {
            self.target_phase[v]
        } else {
            self.phase[v]
        }
    }

    /// Records the current (deepest-so-far) trail as the target phase.
    fn save_target_phase(&mut self) {
        for &l in &self.trail {
            self.target_phase[l.var().index()] = !l.is_negative();
        }
    }

    /// Glue-tiered learnt-database reduction with arena compaction.
    ///
    /// Clauses that are reasons of current assignments, binary, or of glue
    /// LBD ≤ 2 are kept unconditionally; the remainder is sorted by glue
    /// and the worst half marked dead. The arena is then compacted and
    /// every live reference (clause lists, reasons, watches) remapped.
    fn reduce_db(&mut self) {
        let locked: Vec<bool> = {
            let mut locked = vec![false; self.learnts.len()];
            // Learnt reasons are identified by a pass over the list (the
            // list is small relative to the trail at reduce time).
            let reasons: std::collections::HashSet<CRef> = (0..self.num_vars())
                .filter(|&v| self.assigns[v] != Lbool::Undef)
                .filter_map(|v| self.reason[v])
                .collect();
            for (i, &c) in self.learnts.iter().enumerate() {
                if reasons.contains(&c) {
                    locked[i] = true;
                }
            }
            locked
        };
        let mut candidates: Vec<CRef> = self
            .learnts
            .iter()
            .enumerate()
            .filter(|&(i, &c)| !locked[i] && self.ca.len(c) > 2 && self.ca.lbd(c) > GLUE_KEEP)
            .map(|(_, &c)| c)
            .collect();
        if candidates.is_empty() {
            return;
        }
        // Worst glue first; ties delete the older (lower-offset) clause.
        candidates.sort_unstable_by_key(|&c| (std::cmp::Reverse(self.ca.lbd(c)), c));
        for &c in &candidates[..candidates.len() / 2] {
            self.ca.mark_dead(c);
            if let Some(p) = self.proof.as_mut() {
                p.delete_cref(c);
            }
            self.stats.deleted += 1;
        }
        if self.ca.wasted() == 0 {
            return;
        }
        // Drop dead references, compact the arena, and remap the rest.
        self.learnts.retain(|&c| !self.ca.is_dead(c));
        self.compact_arena();
        self.stats.learnts = self.learnts.len() as u64;
        self.stats.reduces += 1;
    }

    /// Solves the current database with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions`. On [`SatResult::Unsat`],
    /// [`Solver::failed_assumptions`] holds a subset of the assumptions
    /// sufficient for unsatisfiability.
    pub fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.stats.solves += 1;
        self.failed.clear();
        self.call_conflicts = 0;
        self.best_trail = 0;
        self.use_target = false;
        if !self.ok {
            return SatResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if let Some(confl) = self.propagate() {
            self.proof_empty_from_conflict(confl);
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut restarts = 0u64;
        loop {
            let limit = RESTART_BASE * luby(2, restarts);
            match self.search(limit, assumptions) {
                Some(r) => {
                    self.backtrack(0);
                    return r;
                }
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    // Alternate saved-phase and target-phase restarts.
                    self.use_target = restarts % 2 == 1 && self.best_trail > 0;
                }
            }
        }
    }

    fn search(&mut self, conflict_limit: u64, assumptions: &[SatLit]) -> Option<SatResult> {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.call_conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    self.proof_empty_from_conflict(confl);
                    self.ok = false;
                    return Some(SatResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                #[cfg(test)]
                self.check_watches_dbg("after-analyze-backtrack");
                if learnt.len() == 1 {
                    if let Some(p) = self.proof.as_mut() {
                        let id = p.take_stash_as(&learnt);
                        p.set_unit(learnt[0].var(), id);
                    }
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let cref = self.attach_clause(&learnt, true, lbd);
                    if let Some(p) = self.proof.as_mut() {
                        let id = p.take_stash_as(&learnt);
                        p.map_cref(cref, id);
                    }
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                #[cfg(test)]
                self.check_watches_dbg("after-attach-learnt");
                self.var_inc /= VAR_DECAY;
                if let Some(budget) = self.conflict_budget {
                    if self.call_conflicts >= budget {
                        self.backtrack(0);
                        return Some(SatResult::Unknown);
                    }
                }
            } else {
                // Record the target phase on *geometric* trail improvements
                // only: an exact record would copy the trail on every new
                // depth, which is quadratic on instances with long trails.
                if self.trail.len() >= self.best_trail + self.best_trail / 8 + 16 {
                    self.best_trail = self.trail.len();
                    self.save_target_phase();
                }
                if local_conflicts >= conflict_limit {
                    self.backtrack(0);
                    return None; // restart
                }
                if self.learnts.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                    #[cfg(test)]
                    self.check_watches_dbg("after-reduce-db");
                }
                // Place assumptions as pseudo-decisions, then branch.
                let mut decided = false;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        Lbool::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        Lbool::False => {
                            self.analyze_final(p);
                            return Some(SatResult::Unsat);
                        }
                        Lbool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                            decided = true;
                            break;
                        }
                    }
                }
                if decided {
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.clone();
                        return Some(SatResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let l = v.lit(self.branch_polarity(v.index()));
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    /// The model value of `v` after a [`SatResult::Sat`] answer.
    ///
    /// Returns `None` for variables the model leaves unconstrained or if no
    /// model is available.
    pub fn value(&self, v: SatVar) -> Option<bool> {
        self.model.get(v.index()).and_then(|l| l.to_bool())
    }

    /// The model value of a literal after a [`SatResult::Sat`] answer.
    pub fn value_lit(&self, l: SatLit) -> Option<bool> {
        self.value(l.var()).map(|b| b ^ l.is_negative())
    }

    /// After an [`SatResult::Unsat`] answer from [`Solver::solve_with`]:
    /// a subset of the assumptions sufficient for unsatisfiability
    /// (empty if the database alone is unsatisfiable).
    pub fn failed_assumptions(&self) -> &[SatLit] {
        &self.failed
    }

    // ------------------------------------------------------------------
    // Indexed max-heap ordered by VSIDS activity.
    // ------------------------------------------------------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn heap_insert(&mut self, v: u32) {
        debug_assert!(self.heap_pos[v as usize] < 0);
        self.heap_pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.heap_pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    /// Removes `v` from the heap if present (swap with the tail, then
    /// restore the heap property in both directions).
    fn heap_remove(&mut self, v: u32) {
        let pos = self.heap_pos[v as usize];
        if pos < 0 {
            return;
        }
        let pos = pos as usize;
        self.heap_pos[v as usize] = -1;
        let last = self.heap.pop().expect("non-empty: v is in the heap");
        if pos < self.heap.len() {
            self.heap[pos] = last;
            self.heap_pos[last as usize] = pos as i32;
            self.heap_down(pos);
            self.heap_up(self.heap_pos[last as usize] as usize);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(v, self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.heap_pos[self.heap[i] as usize] = i as i32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as i32;
    }

    fn heap_down(&mut self, mut i: usize) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if self.heap_less(self.heap[child], v) {
                self.heap[i] = self.heap[child];
                self.heap_pos[self.heap[i] as usize] = i as i32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as i32;
    }
}

/// The reluctant-doubling (Luby) sequence scaled by powers of `y`:
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(y: u64, mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    // The pigeonhole constructions read clearest with explicit indices.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<SatVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    pub(super) fn pigeonhole(s: &mut Solver, p: usize, h: usize) -> Vec<Vec<SatVar>> {
        let v: Vec<Vec<SatVar>> = (0..p).map(|_| vars(s, h)).collect();
        for i in 0..p {
            let clause: Vec<SatLit> = (0..h).map(|j| v[i][j].pos()).collect();
            s.add_clause(&clause);
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in (i1 + 1)..p {
                    s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
                }
            }
        }
        v
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[v[0].neg()]));
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 3);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn tautology_is_skipped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos(), v[0].neg()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        s.add_clause(&[v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for x in v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // 2 pigeons, 1 hole.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[1].pos()]);
        s.add_clause(&[v[0].neg(), v[1].neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_php43_is_unsat() {
        // 4 pigeons in 3 holes: forces real conflict analysis.
        let mut s = Solver::new();
        pigeonhole(&mut s, 4, 3);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_non_destructive() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve_with(&[v[0].neg(), v[1].neg()]), SatResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with(&[v[0].neg()]), SatResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn failed_assumptions_are_a_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].neg(), v[1].neg()]);
        // v2 is irrelevant to the conflict.
        assert_eq!(
            s.solve_with(&[v[2].pos(), v[0].pos(), v[1].pos()]),
            SatResult::Unsat
        );
        let core = s.failed_assumptions();
        assert!(core.iter().all(|l| l.var() != v[2]));
        assert!(!core.is_empty());
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard instance with a budget of 1 conflict.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn conflict_budget_is_per_call() {
        // Every budgeted call gets the full budget: N calls at budget B
        // must spend ~N×B conflicts in total, not B overall. (A leaking
        // implementation would return Unknown instantly from call 2 on.)
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_conflict_budget(Some(5));
        for _ in 0..3 {
            assert_eq!(s.solve(), SatResult::Unknown);
        }
        assert!(
            s.stats().conflicts >= 15,
            "calls shared one budget: only {} conflicts spent",
            s.stats().conflicts
        );
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        s.add_clause(&[v[2].neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(2, i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn model_respects_all_clauses() {
        // Random-ish 3-SAT instance, verified against the model.
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        let clauses: Vec<Vec<SatLit>> = vec![
            vec![v[0].pos(), v[1].neg(), v[2].pos()],
            vec![v[3].neg(), v[4].pos(), v[5].neg()],
            vec![v[6].pos(), v[7].pos(), v[0].neg()],
            vec![v[1].pos(), v[3].pos(), v[5].pos()],
            vec![v[2].neg(), v[4].neg(), v[6].neg()],
            vec![v[7].neg(), v[1].pos(), v[4].pos()],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.value_lit(l) == Some(true)),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn lbd_histogram_and_arena_counters_populate() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SatResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.arena_words > 0);
        assert_eq!(st.arena_bytes(), st.arena_words * 4);
        assert!(
            st.lbd_hist.iter().sum::<u64>() > 0,
            "no learnt clause recorded a glue score"
        );
    }

    #[test]
    fn reduce_db_keeps_the_solver_sound() {
        // Force many reductions with a tiny learnt cap, then cross-check
        // the verdict on a known-UNSAT instance.
        let mut s = Solver::new();
        s.max_learnts = 8.0;
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().reduces > 0, "reduce-DB never ran");
        assert!(s.stats().deleted > 0);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = SolverStats {
            conflicts: 3,
            arena_words: 10,
            ..SolverStats::default()
        };
        a.lbd_hist[0] = 2;
        let mut b = SolverStats {
            conflicts: 4,
            arena_words: 5,
            ..SolverStats::default()
        };
        b.lbd_hist[0] = 1;
        b.lbd_hist[7] = 6;
        a.absorb(&b);
        assert_eq!(a.conflicts, 7);
        assert_eq!(a.arena_words, 15);
        assert_eq!(a.lbd_hist[0], 3);
        assert_eq!(a.lbd_hist[7], 6);
    }

    #[test]
    fn recycled_vars_are_reused_and_sound() {
        // Guard-style lifecycle: a guard g protects clauses (each contains
        // !g), is asserted false, its clauses purged, and its slot
        // recycled. The reissued variable must behave like a fresh one.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        let before = s.num_vars();
        for round in 0..50 {
            let g = s.new_var();
            // Guarded constraint: g -> (v0 xor v1).
            s.add_clause(&[g.neg(), v[0].pos(), v[1].pos()]);
            s.add_clause(&[g.neg(), v[0].neg(), v[1].neg()]);
            assert_eq!(s.solve_with(&[g.pos()]), SatResult::Sat);
            assert_ne!(s.value(v[0]), s.value(v[1]), "round {round}");
            s.add_clause(&[g.neg()]); // retire the generation
            s.purge_satisfied();
            s.recycle_vars(&[g]);
            s.check_watches_dbg("recycle round");
        }
        assert_eq!(s.num_vars(), before + 1, "var table must not grow");
        assert_eq!(s.stats().recycled_vars, 50);
        // The recycled slot is unconstrained again: both phases solvable.
        let g = s.new_var();
        assert_eq!(s.solve_with(&[g.pos()]), SatResult::Sat);
        assert_eq!(s.solve_with(&[g.neg()]), SatResult::Sat);
    }

    #[test]
    fn recycle_scrubs_level0_assignment() {
        // A retired guard's unit assignment must not leak into the slot's
        // next life: assert !g, purge, recycle, then constrain the reissued
        // variable to TRUE — satisfiable only if the trail was scrubbed.
        let mut s = Solver::new();
        let keep = vars(&mut s, 1);
        s.add_clause(&[keep[0].pos()]);
        let g = s.new_var();
        s.add_clause(&[g.neg(), keep[0].pos()]);
        s.add_clause(&[g.neg()]);
        s.purge_satisfied();
        s.recycle_vars(&[g]);
        let g2 = s.new_var();
        assert_eq!(g2, g, "slot must be reused");
        assert!(s.add_clause(&[g2.pos()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(g2), Some(true));
        assert_eq!(s.value(keep[0]), Some(true));
    }

    #[test]
    fn recycle_interleaves_with_hard_instances() {
        // Recycling in the middle of real search state (learnt clauses,
        // bumped activities) must not corrupt the heap or verdicts.
        let mut s = Solver::new();
        let holes = pigeonhole(&mut s, 5, 4);
        let g = s.new_var();
        s.add_clause(&[g.neg(), holes[0][0].pos()]);
        assert_eq!(s.solve(), SatResult::Unsat); // PHP(5,4) is UNSAT
        assert!(!s.is_ok());
        // Database is globally unsat; recycling is still well-defined.
        let mut s = Solver::new();
        let holes = pigeonhole(&mut s, 4, 4); // satisfiable
        let g = s.new_var();
        s.add_clause(&[g.neg(), holes[0][0].neg()]);
        assert_eq!(s.solve_with(&[g.pos()]), SatResult::Sat);
        s.add_clause(&[g.neg()]);
        s.purge_satisfied();
        s.recycle_vars(&[g]);
        s.check_watches_dbg("after hard recycle");
        assert_eq!(s.solve(), SatResult::Sat);
    }
}

#[cfg(test)]
impl Solver {
    fn check_watches_dbg(&self, tag: &str) {
        self.check_watches(tag);
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    impl Solver {
        pub(super) fn check_watches(&self, tag: &str) {
            let all: Vec<CRef> = self
                .clauses
                .iter()
                .chain(self.learnts.iter())
                .copied()
                .collect();
            for (code, wl) in self.watches.iter().enumerate() {
                let l = SatLit::from_code(code);
                for w in wl {
                    assert!(
                        self.ca.lit(w.cref, 0) == l || self.ca.lit(w.cref, 1) == l,
                        "{tag}: stale watcher for {:?} on clause {:?}",
                        l,
                        self.ca.lits_vec(w.cref)
                    );
                }
            }
            for &cref in &all {
                for i in 0..2 {
                    let wlit = self.ca.lit(cref, i);
                    let n = self.watches[wlit.code()]
                        .iter()
                        .filter(|w| w.cref == cref)
                        .count();
                    assert_eq!(
                        n,
                        1,
                        "{tag}: clause {:?} {:?} watch count {n} on {:?}",
                        cref,
                        self.ca.lits_vec(cref),
                        wlit
                    );
                }
            }
        }
    }

    #[test]
    fn watch_invariant_php65() {
        let mut s = Solver::new();
        super::tests::pigeonhole(&mut s, 6, 5);
        s.check_watches("after-load");
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.check_watches("after-unknown");
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn watch_invariant_survives_reductions() {
        let mut s = Solver::new();
        s.max_learnts = 8.0;
        super::tests::pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().reduces > 0);
        s.check_watches("after-solve-with-reductions");
    }
}
