//! A tiny reference solver (exhaustive enumeration) used to cross-check
//! the CDCL solver in tests and property-based tests.
//!
//! Only suitable for small variable counts (exponential), but its
//! simplicity makes it an effective oracle.

use crate::types::SatLit;

/// Exhaustively decides satisfiability of a clause list over `num_vars`
/// variables.
///
/// # Panics
///
/// Panics if `num_vars > 24` (would enumerate more than 16M assignments).
///
/// ```
/// use cbq_sat::SatVar;
/// use cbq_sat::reference::brute_force_sat;
/// let v0 = SatVar::from_index(0);
/// assert!(brute_force_sat(1, &[vec![v0.pos()]]).is_some());
/// assert!(brute_force_sat(1, &[vec![v0.pos()], vec![v0.neg()]]).is_none());
/// ```
pub fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 24, "reference solver limited to 24 variables");
    for mask in 0u64..(1u64 << num_vars) {
        let assignment: Vec<bool> = (0..num_vars).map(|i| (mask >> i) & 1 != 0).collect();
        if clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] ^ l.is_negative())
        }) {
            return Some(assignment);
        }
    }
    None
}

/// Counts satisfying assignments by exhaustive enumeration.
///
/// # Panics
///
/// Panics if `num_vars > 24`.
pub fn brute_force_count(num_vars: usize, clauses: &[Vec<SatLit>]) -> u64 {
    assert!(num_vars <= 24, "reference solver limited to 24 variables");
    let mut count = 0;
    for mask in 0u64..(1u64 << num_vars) {
        let assignment: Vec<bool> = (0..num_vars).map(|i| (mask >> i) & 1 != 0).collect();
        if clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] ^ l.is_negative())
        }) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatVar;

    #[test]
    fn counts_xor() {
        let a = SatVar::from_index(0);
        let b = SatVar::from_index(1);
        // (a | b) & (!a | !b) == xor
        let clauses = vec![vec![a.pos(), b.pos()], vec![a.neg(), b.neg()]];
        assert_eq!(brute_force_count(2, &clauses), 2);
    }

    #[test]
    fn model_is_checked() {
        let a = SatVar::from_index(0);
        let m = brute_force_sat(2, &[vec![a.neg()]]).unwrap();
        assert!(!m[0]);
    }
}
