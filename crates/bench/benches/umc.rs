//! E6 / Table 4 — UMC engine comparison on a safe and an unsafe circuit,
//! driven through the engine registry.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_ckt::generators;
use cbq_mc::{registry, Budget};

fn bench_umc(c: &mut Criterion) {
    let safe = generators::token_ring(8);
    let buggy = generators::token_ring_bug(8);
    let budget = Budget::unlimited().with_steps(12);
    let mut g = c.benchmark_group("e6-umc");
    g.sample_size(10);
    for (tag, net) in [("safe", &safe), ("buggy", &buggy)] {
        for spec in registry() {
            g.bench_function(format!("{}-{tag}", spec.name), |b| {
                b.iter(|| (spec.build)().check(net, &budget).verdict)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_umc);
criterion_main!(benches);
