//! Cone traversal, support computation, statistics and compaction.
//!
//! All traversals here are *dense*: visited sets are `Vec`s indexed by
//! [`Var::index`], sized by the largest root index (fanins always precede
//! their gates in an append-only manager, so no cone node can exceed its
//! root's index). No hashing happens on any walk.

use crate::aig::Aig;
use crate::lit::{Lit, Var};
use crate::node::Node;

/// Size/shape statistics of a cone, as reported by [`Aig::cone_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ConeStats {
    /// Number of AND gates in the cone.
    pub ands: usize,
    /// Number of distinct primary inputs in the cone's support.
    pub inputs: usize,
    /// Maximum structural depth over the roots.
    pub depth: u32,
}

impl Aig {
    /// Returns the variables in the transitive fanin cone of `roots`
    /// (including the roots, inputs and constant, if reached) in
    /// topological order (ascending index).
    pub fn collect_cone(&self, roots: &[Lit]) -> Vec<Var> {
        let Some(max) = roots.iter().map(|r| r.var().index()).max() else {
            return Vec::new();
        };
        let mut seen = vec![false; max + 1];
        let mut stack: Vec<Var> = Vec::new();
        let mut cone: Vec<Var> = Vec::new();
        for r in roots {
            let v = r.var();
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push(v);
                cone.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            if let Node::And { f0, f1 } = self.node(v) {
                for f in [f0, f1] {
                    let w = f.var();
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                        cone.push(w);
                    }
                }
            }
        }
        cone.sort_unstable();
        cone
    }

    /// Number of AND gates in the cone of `root`.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let a = aig.add_input().lit();
    /// let b = aig.add_input().lit();
    /// let f = aig.xor(a, b);
    /// assert_eq!(aig.cone_size(f), 3);
    /// ```
    pub fn cone_size(&self, root: Lit) -> usize {
        self.cone_size_many(&[root])
    }

    /// Number of AND gates in the union of the cones of `roots`.
    pub fn cone_size_many(&self, roots: &[Lit]) -> usize {
        self.collect_cone(roots)
            .iter()
            .filter(|v| self.node(**v).is_and())
            .count()
    }

    /// The set of input variables `root` structurally depends on.
    pub fn support(&self, root: Lit) -> Vec<Var> {
        self.support_many(&[root])
    }

    /// The union of the supports of `roots`, sorted by variable index.
    pub fn support_many(&self, roots: &[Lit]) -> Vec<Var> {
        self.collect_cone(roots)
            .into_iter()
            .filter(|v| self.is_input(*v))
            .collect()
    }

    /// Whether `v` occurs in the structural support of `root`.
    ///
    /// Early-exits on first hit, so cheaper than [`Aig::support`] when the
    /// answer is yes.
    pub fn support_contains(&self, root: Lit, v: Var) -> bool {
        if root.var() == v {
            return true;
        }
        // Fanins precede gates: nothing below v's index can reach v, so
        // the walk only descends through the region above it.
        if root.var().index() < v.index() {
            return false;
        }
        let mut seen = vec![false; root.var().index() + 1];
        let mut stack = vec![root.var()];
        seen[root.var().index()] = true;
        while let Some(n) = stack.pop() {
            if let Node::And { f0, f1 } = self.node(n) {
                for f in [f0, f1] {
                    let w = f.var();
                    if w == v {
                        return true;
                    }
                    if w.index() > v.index() && !seen[w.index()] {
                        seen[w.index()] = true;
                        stack.push(w);
                    }
                }
            }
        }
        false
    }

    /// Counts how many AND gates in the cone of `roots` have `v` in their
    /// fanin support — a cheap cost estimate for quantification scheduling.
    pub fn occurrence_count(&self, roots: &[Lit], v: Var) -> usize {
        self.occurrence_counts(roots, &[v])[0]
    }

    /// [`Aig::occurrence_count`] for many variables in **one** cone walk:
    /// `result[i]` is the number of AND gates in the cone depending on
    /// `vars[i]`. Dependence masks are k-bit sets propagated bottom-up, so
    /// scheduling a whole quantification pass costs one walk instead of
    /// one per candidate variable (which made cost estimation quadratic).
    ///
    /// The walk is support-limited: it never descends below the smallest
    /// tracked variable index, since nothing there can depend on any of
    /// them. If `vars` contains duplicates, only the last copy is counted.
    pub fn occurrence_counts(&self, roots: &[Lit], vars: &[Var]) -> Vec<usize> {
        let k = vars.len();
        let mut counts = vec![0usize; k];
        if k == 0 || roots.is_empty() {
            return counts;
        }
        let min_idx = vars.iter().map(|v| v.index()).min().expect("non-empty");
        let max = roots
            .iter()
            .map(|r| r.var().index())
            .max()
            .expect("non-empty");
        if max < min_idx {
            return counts; // no gate above any tracked variable
        }
        // Collect the pruned cone (indices >= min_idx only). Every cone
        // node above the cut is reachable without passing below it: a
        // path through a lower-index node only leads to even lower ones.
        let mut seen = vec![false; max + 1 - min_idx];
        let mut stack: Vec<Var> = Vec::new();
        let mut cone: Vec<Var> = Vec::new();
        for r in roots {
            let v = r.var();
            if v.index() >= min_idx && !seen[v.index() - min_idx] {
                seen[v.index() - min_idx] = true;
                stack.push(v);
                cone.push(v);
            }
        }
        while let Some(v) = stack.pop() {
            if let Node::And { f0, f1 } = self.node(v) {
                for f in [f0, f1] {
                    let w = f.var();
                    if w.index() >= min_idx && !seen[w.index() - min_idx] {
                        seen[w.index() - min_idx] = true;
                        stack.push(w);
                        cone.push(w);
                    }
                }
            }
        }
        cone.sort_unstable();
        // Bit position of each tracked variable, dense by node index.
        let blocks = k.div_ceil(64);
        let mut pos = vec![u32::MAX; max + 1 - min_idx];
        for (j, v) in vars.iter().enumerate() {
            if v.index() <= max {
                pos[v.index() - min_idx] = j as u32;
            }
        }
        let mut mask = vec![0u64; (max + 1 - min_idx) * blocks];
        for &v in &cone {
            let off = (v.index() - min_idx) * blocks;
            match self.node(v) {
                Node::Const => {}
                Node::Input { .. } => {
                    let p = pos[v.index() - min_idx];
                    if p != u32::MAX {
                        mask[off + p as usize / 64] |= 1u64 << (p % 64);
                    }
                }
                Node::And { f0, f1 } => {
                    for b in 0..blocks {
                        let fetch = |l: Lit| {
                            let i = l.var().index();
                            if i >= min_idx {
                                mask[(i - min_idx) * blocks + b]
                            } else {
                                0
                            }
                        };
                        let m = fetch(f0) | fetch(f1);
                        if m != 0 {
                            mask[off + b] = m;
                            let mut mm = m;
                            while mm != 0 {
                                counts[b * 64 + mm.trailing_zeros() as usize] += 1;
                                mm &= mm - 1;
                            }
                        }
                    }
                }
            }
        }
        counts
    }

    /// A structural hash of the cone of `root` — see
    /// [`Aig::cone_hash_many`].
    pub fn cone_hash(&self, root: Lit) -> u64 {
        self.cone_hash_many(&[root])
    }

    /// A structural hash of the union cone of `roots`, canonical across
    /// managers: nodes are numbered by first visit of a deterministic
    /// depth-first traversal (fanin 0 before fanin 1, roots in list
    /// order), inputs contribute their **ordinal** (which clones, splits,
    /// and GC compactions preserve), and AND gates contribute their
    /// fanins' canonical numbers and complement bits. Two root lists hash
    /// equal iff the traversals see the same shapes — independent of
    /// variable indices, node creation order, or dead nodes elsewhere in
    /// the manager. This is the content-addressing primitive for
    /// structural result caches over the ordinal-stable cone export.
    pub fn cone_hash_many(&self, roots: &[Lit]) -> u64 {
        // FNV-1a, 64-bit.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        // Canonical id per variable, assigned in post-order (fanins
        // numbered before their gate, so ids reference earlier ids only).
        // Dense plane: no cone index exceeds the largest root index.
        let top = roots.iter().map(|r| r.var().index()).max().unwrap_or(0);
        let mut id_of = vec![u64::MAX; top + 1];
        let mut next_id = 0u64;
        for &root in roots {
            // Iterative post-order: (var, fanins_expanded).
            let mut stack: Vec<(Var, bool)> = vec![(root.var(), false)];
            while let Some((v, expanded)) = stack.pop() {
                if id_of[v.index()] != u64::MAX {
                    continue;
                }
                match self.node(v) {
                    Node::Const => {
                        id_of[v.index()] = next_id;
                        mix(0);
                        next_id += 1;
                    }
                    Node::Input { index } => {
                        id_of[v.index()] = next_id;
                        mix(1);
                        mix(u64::from(index));
                        next_id += 1;
                    }
                    Node::And { f0, f1 } => {
                        if expanded {
                            id_of[v.index()] = next_id;
                            mix(2);
                            mix(id_of[f0.var().index()] * 2 + u64::from(f0.is_complemented()));
                            mix(id_of[f1.var().index()] * 2 + u64::from(f1.is_complemented()));
                            next_id += 1;
                        } else {
                            stack.push((v, true));
                            stack.push((f1.var(), false));
                            stack.push((f0.var(), false));
                        }
                    }
                }
            }
            mix(3);
            mix(id_of[root.var().index()] * 2 + u64::from(root.is_complemented()));
        }
        h
    }

    /// Aggregate statistics over the union cone of `roots`.
    pub fn cone_stats(&self, roots: &[Lit]) -> ConeStats {
        let cone = self.collect_cone(roots);
        let mut stats = ConeStats::default();
        for v in &cone {
            match self.node(*v) {
                Node::And { .. } => stats.ands += 1,
                Node::Input { .. } => stats.inputs += 1,
                Node::Const => {}
            }
        }
        stats.depth = roots
            .iter()
            .map(|r| self.node_level(r.var()))
            .max()
            .unwrap_or(0);
        stats
    }

    /// Fanout counts (within the cone of `roots`) for every node, indexed by
    /// [`Var::index`]. Root references are **not** counted.
    pub fn fanout_counts(&self, roots: &[Lit]) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_nodes()];
        for v in self.collect_cone(roots) {
            if let Node::And { f0, f1 } = self.node(v) {
                counts[f0.var().index()] += 1;
                counts[f1.var().index()] += 1;
            }
        }
        counts
    }

    /// Garbage-collects the manager: produces a fresh AIG containing all
    /// primary inputs (same ordinals) but only the AND gates reachable from
    /// `roots`, plus the translation of each root.
    ///
    /// Dead nodes accumulated by cofactoring and rewriting are dropped;
    /// input variables keep their *ordinals* (and, when every input was
    /// created before any gate, their variable indices too).
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let a = aig.add_input().lit();
    /// let b = aig.add_input().lit();
    /// let f = aig.and(a, b);
    /// let _dead = aig.xor(f, a);
    /// let (packed, roots) = aig.compact(&[f]);
    /// assert_eq!(packed.num_ands(), 1);
    /// assert_eq!(roots.len(), 1);
    /// ```
    pub fn compact(&self, roots: &[Lit]) -> (Aig, Vec<Lit>) {
        let (out, new_roots, _) = self.compact_with_map(roots);
        (out, new_roots)
    }

    /// Like [`Aig::compact`], additionally returning the translation of
    /// every old variable: `map[old_var.index()]` is the literal of the
    /// new manager computing the same function (`None` for dead nodes).
    ///
    /// This is what lets an incremental SAT bridge carry its
    /// node↔variable map — and therefore its whole learnt-clause
    /// database — across a garbage collection instead of re-encoding.
    pub fn compact_with_map(&self, roots: &[Lit]) -> (Aig, Vec<Lit>, Vec<Option<Lit>>) {
        // The compacted manager inherits the tuning (so the open strash
        // persists across GC) and pre-sizes its table to the incoming
        // cone, avoiding the rehash ladder while it refills.
        let mut out = Aig::with_tuning(self.tuning());
        let cone = self.collect_cone(roots);
        out.reserve_ands(cone.len());
        let mut map: Vec<Option<Lit>> = vec![None; self.num_nodes()];
        map[Var::CONST.index()] = Some(Lit::FALSE);
        // Recreate every input so ordinals are preserved.
        for i in 0..self.num_inputs() {
            let v = self.input_var(i);
            let nv = out.add_input();
            map[v.index()] = Some(nv.lit());
        }
        for v in cone {
            if let Node::And { f0, f1 } = self.node(v) {
                let a = map[f0.var().index()]
                    .expect("fanin mapped")
                    .xor_sign(f0.is_complemented());
                let b = map[f1.var().index()]
                    .expect("fanin mapped")
                    .xor_sign(f1.is_complemented());
                let nl = out.and(a, b);
                map[v.index()] = Some(nl);
            }
        }
        let new_roots = roots
            .iter()
            .map(|r| {
                map[r.var().index()]
                    .expect("root mapped")
                    .xor_sign(r.is_complemented())
            })
            .collect();
        (out, new_roots, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cone_is_topological() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.xor(a, b);
        let cone = aig.collect_cone(&[f]);
        for (i, v) in cone.iter().enumerate() {
            if let Node::And { f0, f1 } = aig.node(*v) {
                let pos0 = cone.iter().position(|x| *x == f0.var()).unwrap();
                let pos1 = cone.iter().position(|x| *x == f1.var()).unwrap();
                assert!(pos0 < i && pos1 < i);
            }
        }
    }

    #[test]
    fn support_and_occurrence() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a.lit(), b.lit());
        let f = aig.or(ab, c.lit());
        assert_eq!(aig.support(f), vec![a, b, c]);
        assert!(aig.support_contains(f, a));
        assert!(!aig.support_contains(ab, c));
        assert_eq!(aig.occurrence_count(&[f], a), 2); // ab and the or-gate
        assert_eq!(aig.occurrence_count(&[f], c), 1);
    }

    #[test]
    fn occurrence_counts_match_single_variable_walks() {
        let mut aig = Aig::new();
        let vars: Vec<_> = (0..70).map(|_| aig.add_input()).collect();
        // A chain mixing most variables, leaving some unused (count 0).
        let mut f = vars[0].lit();
        for v in vars.iter().skip(1).step_by(2) {
            f = aig.xor(f, v.lit());
        }
        let g = aig.and(f, vars[2].lit());
        // More than 64 tracked vars forces the multi-block mask path.
        let batched = aig.occurrence_counts(&[g, !f], &vars);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(
                batched[i],
                aig.occurrence_count(&[g, !f], *v),
                "var {i} diverges"
            );
        }
        // An And variable is never an occurrence seed.
        assert_eq!(aig.occurrence_counts(&[g], &[g.var()]), vec![0]);
        assert_eq!(aig.occurrence_counts(&[], &vars), vec![0; vars.len()]);
        assert_eq!(aig.occurrence_counts(&[g], &[]), Vec::<usize>::new());
    }

    #[test]
    fn compact_drops_garbage_keeps_inputs() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let keep = aig.and(a, b);
        let _dead1 = aig.xor(keep, c);
        let _dead2 = aig.or(a, c);
        let (packed, roots) = aig.compact(&[keep]);
        assert_eq!(packed.num_inputs(), 3);
        assert_eq!(packed.num_ands(), 1);
        for (va, vb) in [(false, false), (true, false), (true, true)] {
            assert_eq!(
                aig.eval(keep, &[va, vb, false]),
                packed.eval(roots[0], &[va, vb, false])
            );
        }
    }

    #[test]
    fn compact_translates_complemented_roots() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.and(a, b);
        let (packed, roots) = aig.compact(&[!f]);
        assert!(packed.eval(roots[0], &[false, true]));
        assert!(!packed.eval(roots[0], &[true, true]));
    }

    #[test]
    fn fanout_counts_within_cone() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let f = aig.and(ab, ac);
        let counts = aig.fanout_counts(&[f]);
        assert_eq!(counts[a.var().index()], 2);
        assert_eq!(counts[ab.var().index()], 1);
        assert_eq!(counts[ac.var().index()], 1);
        assert_eq!(counts[f.var().index()], 0); // roots not counted
    }

    #[test]
    fn cone_stats_shape() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.xor(a, b);
        let s = aig.cone_stats(&[f]);
        assert_eq!(s.ands, 3);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn cone_hash_is_manager_independent() {
        // Same structure built in two managers, one of which carries
        // extra dead nodes that shift every variable index.
        let mut m1 = Aig::new();
        let a1 = m1.add_input().lit();
        let b1 = m1.add_input().lit();
        let f1 = m1.xor(a1, b1);

        let mut m2 = Aig::new();
        let a2 = m2.add_input().lit();
        let b2 = m2.add_input().lit();
        let _dead = m2.and(a2, b2); // shared with xor but also changes history
        let c2 = m2.add_input().lit();
        let _dead2 = m2.and(b2, c2);
        let f2 = m2.xor(a2, b2);

        assert_eq!(m1.cone_hash(f1), m2.cone_hash(f2));
        assert_eq!(m1.cone_hash(!f1), m2.cone_hash(!f2));
    }

    #[test]
    fn cone_hash_discriminates() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let and = aig.and(a, b);
        let or = !aig.and(!a, !b);
        let xor = aig.xor(a, b);
        let hashes = [
            aig.cone_hash(and),
            aig.cone_hash(!and),
            aig.cone_hash(or),
            aig.cone_hash(xor),
            aig.cone_hash(a),
            aig.cone_hash(b), // differs from `a` via input ordinal
            aig.cone_hash(Lit::TRUE),
            aig.cone_hash_many(&[and, xor]),
            aig.cone_hash_many(&[xor, and]), // root order matters
        ];
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "hash collision {i} vs {j}");
            }
        }
    }
}
