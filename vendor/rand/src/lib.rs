//! A minimal, dependency-free drop-in for the subset of the `rand` crate
//! API this workspace uses (`SmallRng`, `Rng::{gen, gen_bool, gen_range}`,
//! `SeedableRng::seed_from_u64`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched; this shim keeps the callers source-compatible.
//! The generator is SplitMix64 — deterministic in the seed, statistically
//! fine for the workloads here (randomised simulation patterns and random
//! circuit synthesis), and explicitly **not** cryptographic.

#![forbid(unsafe_code)]

/// Types sampleable uniformly by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw from a non-empty half-open `usize` range.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(!range.is_empty(), "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A small, fast, seedable generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn gen_typed_draws() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _: u64 = rng.gen();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(rng.gen::<bool>())] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
