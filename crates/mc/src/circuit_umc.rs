//! The paper's traversal routine: backward reachability with AIG state
//! sets and circuit-based quantification (Section 3), generalised to the
//! partitioned state-set representation of [`crate::stateset`].

use cbq_aig::{AigPerfCounters, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnfStats;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::{SatResult, SolverStats};

use crate::engine::{Budget, Engine, Meter};
use crate::ganai::all_solutions_exists;
use crate::stateset::{
    read_vars, state_cube, Partition, PartitionConfig, PartitionStats, StateSet,
};
use crate::sweep::{SweepConfig as StateSweepConfig, SweepStats};
use crate::verdict::{McRun, McStats, Resource, Verdict};

/// How to finish quantification when partial quantification aborts some
/// input variables (Section 4: "it accepts effective quantification and
/// aborts the expensive ones").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResidualPolicy {
    /// Fall back to the naive cofactor disjunction (always completes, may
    /// grow the circuit).
    Naive,
    /// Hand the residual variables to all-solutions SAT enumeration with
    /// circuit cofactoring (the paper's proposed combination with [2]),
    /// bounded by this many enumeration rounds (falls back to naive if
    /// exhausted).
    Enumerate {
        /// Maximum enumeration rounds per quantification.
        max_rounds: usize,
    },
}

/// Backward-reachability model checker over AIG state sets — the paper's
/// engine, on the partitioned [`StateSet`] representation.
///
/// "Given an invariant property P we start reachability from its
/// complement and we terminate as soon as no newly reached states are
/// found (fix-point) or we intersect the initial state set, delivering a
/// counter-example. In our implementation all state sets are represented
/// and manipulated using AIGs instead of BDDs. Operations on AIGs, e.g.,
/// equivalence, are performed using a SAT engine."
///
/// With the default [`PartitionConfig`] (one partition) the traversal is
/// the paper's monolithic routine. With `--partitions N|auto` the state
/// set is tiled into window-disjoint partitions, each owning its own AIG
/// manager and clause database, and every iteration's pre-image,
/// quantification, and sweep runs in parallel across partitions —
/// verdicts, fixpoint iteration counts, and minimal counterexample
/// depths are identical for any partition count.
#[derive(Clone, Debug)]
pub struct CircuitUmc {
    /// Quantification engine configuration (merge/optimise/budget).
    pub quant: QuantConfig,
    /// What to do with variables partial quantification aborts.
    pub residual: ResidualPolicy,
    /// Between-iterations state-set sweeping; `None` disables it.
    pub sweep: Option<StateSweepConfig>,
    /// Partitioned state-set configuration (default: monolithic).
    pub partition: PartitionConfig,
    /// Iteration bound (a safety net; reaching it yields `Unknown`).
    pub max_iterations: usize,
}

impl Default for CircuitUmc {
    fn default() -> CircuitUmc {
        CircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Naive,
            sweep: Some(StateSweepConfig::default()),
            partition: PartitionConfig::default(),
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`CircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct CircuitUmcStats {
    /// Backward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier after quantification and merge
    /// (summed over partitions).
    pub frontier_sizes: Vec<usize>,
    /// AND-gate count of the final reached-set representation (summed
    /// over partitions).
    pub reached_size: usize,
    /// Peak node count of the working AIG managers (summed over
    /// partitions; with sweeping, garbage collection makes this a true
    /// peak rather than a monotone total).
    pub peak_nodes: usize,
    /// Assumption-based SAT checks issued (all partitions, all purposes,
    /// including checks on clause databases retired by sweeping).
    pub sat_checks: u64,
    /// Input variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// AIG-manager hot-path counters accumulated over every
    /// quantification (all partitions): strash probes, scratchpad walk
    /// nodes, cofactor-cache hits.
    pub quant_perf: AigPerfCounters,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
    /// State-set sweeping counters (all partitions).
    pub sweep: SweepStats,
    /// Partition lifecycle counters (trajectory, max cone, prunes,
    /// splits).
    pub partitions: PartitionStats,
    /// SAT-bridge counters (all partitions): encodings, checks, cone
    /// retirements, learnt clauses retained across GCs.
    pub cnf: AigCnfStats,
    /// Solver-core counters (all partitions): conflicts, restarts, arena
    /// bytes, LBD histogram, reductions.
    pub solver: SolverStats,
}

/// Result of quantifying one partition's pre-image/image, with the
/// residual policy applied. `complete == false` means a cooperative
/// budget cancellation interrupted the quantification — the literal
/// still carries un-eliminated variables and must not be used as a
/// frontier (the worker reports [`Verdict::Bounded`] instead).
pub(crate) struct PartQuant {
    pub lit: Lit,
    pub aborts: usize,
    pub cofactors: usize,
    pub complete: bool,
    /// Hot-path counter deltas of this quantification's `exists_many`
    /// calls (residual passes included).
    pub perf: AigPerfCounters,
}

/// The manager hot-path counters an [`exists_many`] run charged to its
/// quantification.
fn quant_perf(s: &cbq_core::QuantStats) -> AigPerfCounters {
    AigPerfCounters {
        strash_probes: s.strash_probes,
        scratch_walk_nodes: s.scratch_walk_nodes,
        cofactor_cache_hits: s.cofactor_cache_hits,
    }
}

/// Quantifies `vars` out of `f` inside partition `p`, honouring the
/// partial-quantification growth budget, the partition's cooperative
/// deadline/node budget, and the residual policy. Shared by the backward
/// and forward engines.
pub(crate) fn quantify_in_partition(
    p: &mut Partition,
    f: Lit,
    vars: &[Var],
    quant: &QuantConfig,
    residual: ResidualPolicy,
) -> PartQuant {
    let deadline = match (quant.deadline, p.deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let mut cfg = quant.clone().with_deadline(deadline);
    if cfg.node_limit.is_none() {
        cfg.node_limit = p.node_limit;
    }
    let q = exists_many(&mut p.aig, f, vars, &mut p.cnf, &cfg);
    let mut out = PartQuant {
        lit: q.lit,
        aborts: 0,
        cofactors: 0,
        complete: true,
        perf: quant_perf(&q.stats),
    };
    if q.remaining.is_empty() {
        return out;
    }
    out.aborts = q.remaining.len();
    if cfg.out_of_budget(&p.aig) {
        // Cooperative cancellation, not a growth abort: leave the
        // residual variables unprocessed and let the worker go Bounded.
        out.complete = false;
        return out;
    }
    let naive = || QuantConfig::naive().with_deadline(deadline);
    match residual {
        ResidualPolicy::Naive => {
            let q2 = exists_many(&mut p.aig, q.lit, &q.remaining, &mut p.cnf, &naive());
            out.perf.add(quant_perf(&q2.stats));
            out.lit = q2.lit;
            out.complete = q2.remaining.is_empty();
        }
        ResidualPolicy::Enumerate { max_rounds } => {
            match all_solutions_exists(&mut p.aig, q.lit, &q.remaining, &mut p.cnf, max_rounds) {
                Some((lit, gstats)) => {
                    out.cofactors = gstats.cofactors;
                    out.lit = lit;
                }
                None => {
                    let q2 = exists_many(&mut p.aig, q.lit, &q.remaining, &mut p.cnf, &naive());
                    out.perf.add(quant_perf(&q2.stats));
                    out.lit = q2.lit;
                    out.complete = q2.remaining.is_empty();
                }
            }
        }
    }
    out
}

/// One partition worker's contribution to an iteration.
struct PartStep {
    image: Lit,
    bounded: Option<Verdict>,
    aborts: usize,
    cofactors: usize,
    perf: AigPerfCounters,
}

impl PartStep {
    fn empty() -> PartStep {
        PartStep {
            image: Lit::FALSE,
            bounded: None,
            aborts: 0,
            cofactors: 0,
            perf: AigPerfCounters::default(),
        }
    }
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: CircuitUmcStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "circuit",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks: stats.sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for CircuitUmc {
    fn name(&self) -> &'static str {
        "circuit"
    }

    /// Runs backward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = CircuitUmcStats::default();
        let verdict = self.traverse(net, &meter, &mut stats);
        finish(verdict, stats, &meter)
    }
}

impl CircuitUmc {
    fn traverse(&self, net: &Network, meter: &Meter, stats: &mut CircuitUmcStats) -> Verdict {
        let mut ss = StateSet::new_backward(
            net,
            self.partition.clone(),
            self.sweep.clone(),
            meter.deadline(),
            meter.node_limit(),
        );
        stats.peak_nodes = ss.total_nodes();
        if let Some(bounded) = meter.exceeded(0, ss.total_nodes(), 0) {
            return self.seal(bounded, stats, &ss);
        }

        // F₀ = ∃i. bad(s, i), computed on the seed partition before the
        // state space is tiled.
        {
            let p = &mut ss.parts[0];
            let bad = p.bad;
            let pis = p.pis.clone();
            let q = quantify_in_partition(p, bad, &pis, &self.quant, self.residual);
            stats.quant_aborts += q.aborts;
            stats.ganai_cofactors += q.cofactors;
            stats.quant_perf.add(q.perf);
            if !q.complete {
                let bounded = meter
                    .exceeded(0, ss.total_nodes(), ss.total_sat_checks())
                    .unwrap_or(Verdict::Bounded {
                        resource: Resource::WallClock,
                        limit: 0,
                    });
                return self.seal(bounded, stats, &ss);
            }
            let p = &mut ss.parts[0];
            p.frontier = q.lit;
            p.frontier_parts = vec![q.lit];
            p.frontiers.push(q.lit);
            p.reached = q.lit;
            // Is the initial state already bad?
            if p.cnf.solve_under(&p.aig, &[p.frontier, p.init]) == SatResult::Sat {
                let trace = self.extract_trace(&mut ss, net, 0);
                return self.seal(Verdict::Unsafe { trace }, stats, &ss);
            }
        }
        stats.frontier_sizes.push(ss.frontier_size());
        stats.peak_nodes = stats.peak_nodes.max(ss.total_nodes());
        if ss.parts[0].sweep_if_due(&mut []) {
            // Refresh the just-recorded F₀ entry; if a pathological exit
            // path ever reaches here without one, simply skip instead of
            // panicking on a stats detail.
            if let Some(last) = stats.frontier_sizes.last_mut() {
                *last = ss.frontier_size();
            }
        }
        ss.split_to_target();
        ss.record_iteration();

        for iter in 1..=self.max_iterations {
            let spent = ss.total_sat_checks();
            if let Some(bounded) = meter.exceeded(iter - 1, ss.total_nodes(), spent) {
                return self.seal(bounded, stats, &ss);
            }
            stats.iterations = iter;
            // Per-partition pre-image + input quantification + sweep,
            // in parallel across the partitions' private managers.
            let steps = ss.par_map(|_, p| self.partition_step(p, iter, meter));
            if steps.iter().any(Option::is_none) {
                let verdict = Verdict::Unknown {
                    reason: format!(
                        "partition worker panicked (partitions {:?})",
                        ss.stats.worker_panics
                    ),
                };
                return self.seal(verdict, stats, &ss);
            }
            let steps: Vec<PartStep> = steps.into_iter().flatten().collect();
            for step in &steps {
                stats.quant_aborts += step.aborts;
                stats.ganai_cofactors += step.cofactors;
                stats.quant_perf.add(step.perf);
            }
            if let Some(bounded) = steps.iter().find_map(|s| s.bounded.clone()) {
                return self.seal(bounded, stats, &ss);
            }
            // Deterministic merge: redistribute images onto windows,
            // subtract reached, detect fixpoint / counterexample.
            let images: Vec<Lit> = steps.iter().map(|s| s.image).collect();
            let outcome = ss.merge_images(&images, true);
            if !outcome.any_new {
                return self.seal(Verdict::Safe { iterations: iter }, stats, &ss);
            }
            stats.frontier_sizes.push(ss.frontier_size());
            if outcome.cex_partition.is_some() {
                let trace = self.extract_trace(&mut ss, net, iter);
                return self.seal(Verdict::Unsafe { trace }, stats, &ss);
            }
            ss.prune_and_resplit();
            stats.peak_nodes = stats.peak_nodes.max(ss.total_nodes());
        }
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        self.seal(verdict, stats, &ss)
    }

    /// One partition's share of a backward iteration: pre-image by
    /// in-lining, input quantification, and the partition-local sweep.
    fn partition_step(&self, p: &mut Partition, iter: usize, meter: &Meter) -> PartStep {
        if let Some(bounded) = meter.exceeded(iter - 1, p.aig.num_nodes(), 0) {
            return PartStep {
                bounded: Some(bounded),
                ..PartStep::empty()
            };
        }
        if p.frontier == Lit::FALSE {
            return PartStep::empty();
        }
        let pre_raw = p.preimage(p.frontier);
        let pis = p.pis.clone();
        let q = quantify_in_partition(p, pre_raw, &pis, &self.quant, self.residual);
        if !q.complete {
            let bounded =
                meter
                    .exceeded(iter - 1, p.aig.num_nodes(), 0)
                    .unwrap_or(Verdict::Bounded {
                        resource: Resource::WallClock,
                        limit: 0,
                    });
            return PartStep {
                bounded: Some(bounded),
                aborts: q.aborts,
                cofactors: q.cofactors,
                perf: q.perf,
                ..PartStep::empty()
            };
        }
        let mut extra = [q.lit];
        p.sweep_if_due(&mut extra);
        PartStep {
            image: extra[0],
            bounded: None,
            aborts: q.aborts,
            cofactors: q.cofactors,
            perf: q.perf,
        }
    }

    /// Final bookkeeping shared by every exit path.
    fn seal(&self, verdict: Verdict, stats: &mut CircuitUmcStats, ss: &StateSet) -> Verdict {
        stats.sat_checks = ss.total_sat_checks();
        stats.reached_size = ss.reached_size();
        stats.peak_nodes = stats.peak_nodes.max(ss.total_nodes());
        stats.sweep = ss.aggregate_sweep();
        stats.partitions = ss.stats.clone();
        stats.cnf = ss.aggregate_cnf();
        stats.solver = ss.aggregate_solver();
        verdict
    }

    /// Walks a counterexample forward: from the initial state, at each
    /// level find a partition (in index order) and an input leading into
    /// its share of the next (closer-to-bad) frontier, finishing with an
    /// input that fires `bad` itself.
    fn extract_trace(&self, ss: &mut StateSet, net: &Network, level: usize) -> Trace {
        let mut inputs_seq: Vec<Vec<bool>> = Vec::with_capacity(level + 1);
        let mut state = net.initial_state();
        for l in (0..level).rev() {
            let mut found = false;
            for idx in 0..ss.parts.len() {
                let p = &mut ss.parts[idx];
                if p.frontiers.len() <= l || p.frontiers[l] == Lit::FALSE {
                    continue;
                }
                let target = p.frontiers[l];
                let pre_raw = p.preimage(target);
                let cube = state_cube(&mut p.aig, &p.latches, &state);
                if p.cnf.solve_under(&p.aig, &[pre_raw, cube]) == SatResult::Sat {
                    let inputs = read_vars(&p.aig, &p.pis, &p.cnf);
                    let (next, _) = net.step(&state, &inputs);
                    inputs_seq.push(inputs);
                    state = next;
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "trace step must be satisfiable in some partition");
            if !found {
                break;
            }
        }
        // Final step: fire bad from the current state (bad is a global
        // function; any partition's view works).
        let p = &mut ss.parts[0];
        let cube = state_cube(&mut p.aig, &p.latches, &state);
        let r = p.cnf.solve_under(&p.aig, &[p.bad, cube]);
        debug_assert_eq!(r, SatResult::Sat, "bad must fire at trace end");
        inputs_seq.push(read_vars(&p.aig, &p.pis, &p.cnf));
        Trace::new(inputs_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateset::{PartitionCount, SplitPolicy};
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn safe_token_ring() {
        check_safe(&CircuitUmc::default(), &generators::token_ring(6));
    }

    #[test]
    fn safe_bounded_counter() {
        check_safe(&CircuitUmc::default(), &generators::bounded_counter(4, 9));
    }

    #[test]
    fn safe_gray_counter() {
        check_safe(&CircuitUmc::default(), &generators::gray_counter(4));
    }

    #[test]
    fn deep_backward_fixpoint_iteration_count() {
        // The gap circuit converges in exactly gap+1 backward iterations.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 12 - 6 + 1),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn safe_lfsr() {
        check_safe(&CircuitUmc::default(), &generators::lfsr(5, &[0, 2]));
    }

    #[test]
    fn safe_arbiter() {
        check_safe(&CircuitUmc::default(), &generators::arbiter(4));
    }

    #[test]
    fn safe_mutex() {
        check_safe(&CircuitUmc::default(), &generators::mutex());
    }

    #[test]
    fn unsafe_token_ring_bug() {
        check_unsafe(
            &CircuitUmc::default(),
            &generators::token_ring_bug(5),
            Some(3),
        );
    }

    #[test]
    fn unsafe_mutex_bug() {
        check_unsafe(&CircuitUmc::default(), &generators::mutex_bug(), Some(2));
    }

    #[test]
    fn unsafe_shift_ones() {
        check_unsafe(&CircuitUmc::default(), &generators::shift_ones(4), Some(4));
    }

    #[test]
    fn unsafe_counter_bug() {
        check_unsafe(
            &CircuitUmc::default(),
            &generators::counter_bug(4, 6),
            Some(6),
        );
    }

    #[test]
    fn residual_policies_agree() {
        let net = generators::shift_ones(5);
        let tight = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Enumerate { max_rounds: 128 },
            ..CircuitUmc::default()
        };
        let run = tight.check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => assert!(trace.validates(&net)),
            other => panic!("expected unsafe, got {other}"),
        }
        let naive = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Naive,
            ..CircuitUmc::default()
        };
        let run2 = naive.check(&net, &Budget::unlimited());
        assert!(run2.verdict.is_unsafe());
    }

    #[test]
    fn stats_are_populated() {
        let run = CircuitUmc::default().check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.stats.iterations >= 1);
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        let detail = run.detail::<CircuitUmcStats>().expect("typed stats");
        assert!(!detail.frontier_sizes.is_empty());
        assert_eq!(detail.iterations, run.stats.iterations);
        assert!(!detail.partitions.trajectory.is_empty());
        assert!(detail.partitions.trajectory.iter().all(|&n| n == 1));
    }

    #[test]
    fn step_budget_bounds_the_traversal() {
        // The gap circuit needs 7 backward iterations; 2 are not enough.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited().with_steps(2));
        match run.verdict {
            Verdict::Bounded { resource, limit } => {
                assert_eq!(resource, crate::Resource::Steps);
                assert_eq!(limit, 2);
            }
            other => panic!("expected bounded, got {other}"),
        }
        assert!(run.stats.iterations <= 2);
    }

    /// Structural verdict comparison: concrete counterexample inputs may
    /// legitimately differ between runs (different SAT models), but the
    /// classification and the minimal depth must not.
    fn verdict_key(v: &Verdict) -> String {
        match v {
            Verdict::Safe { iterations } => format!("safe@{iterations}"),
            Verdict::Unsafe { trace } => format!("cex@{}", trace.len()),
            other => format!("{other}"),
        }
    }

    #[test]
    fn sweeping_and_plain_traversals_agree() {
        // Same verdicts with sweeping forced on every iteration, forced
        // off, and gc-less; the eager sweep must not grow the state sets.
        for net in [
            generators::token_ring(5),
            generators::bounded_counter_gap(4, 6, 12),
            generators::token_ring_bug(5),
            generators::counter_bug(4, 6),
        ] {
            let plain = CircuitUmc {
                sweep: None,
                ..CircuitUmc::default()
            };
            let eager = CircuitUmc {
                sweep: Some(StateSweepConfig::eager()),
                ..CircuitUmc::default()
            };
            let merge_only = CircuitUmc {
                sweep: Some(StateSweepConfig {
                    gc: false,
                    ..StateSweepConfig::eager()
                }),
                ..CircuitUmc::default()
            };
            let rp = plain.check(&net, &Budget::unlimited());
            let re = eager.check(&net, &Budget::unlimited());
            let rm = merge_only.check(&net, &Budget::unlimited());
            let key = verdict_key(&rp.verdict);
            assert_eq!(
                key,
                verdict_key(&re.verdict),
                "{}: sweep changed verdict",
                net.name()
            );
            assert_eq!(
                key,
                verdict_key(&rm.verdict),
                "{}: gc-less sweep changed verdict",
                net.name()
            );
            let de = re.detail::<CircuitUmcStats>().expect("stats");
            assert!(de.sweep.runs > 0, "{}: eager sweep never ran", net.name());
            let dp = rp.detail::<CircuitUmcStats>().expect("stats");
            assert!(
                de.reached_size <= dp.reached_size,
                "{}: sweeping grew the reached set",
                net.name()
            );
            if let Verdict::Unsafe { trace } = &re.verdict {
                assert!(trace.validates(&net), "{}: swept trace bogus", net.name());
            }
        }
    }

    #[test]
    fn partitioned_traversals_agree_with_monolithic() {
        // Window-disjoint partitioning is exact: identical verdicts and
        // fixpoint iterations / cex depths for any partition count, under
        // both split policies.
        for net in [
            generators::token_ring(5),
            generators::bounded_counter_gap(4, 6, 12),
            generators::gray_counter(4),
            generators::token_ring_bug(5),
            generators::counter_bug(4, 6),
        ] {
            let mono = CircuitUmc::default().check(&net, &Budget::unlimited());
            let key = verdict_key(&mono.verdict);
            for policy in [SplitPolicy::LatchCofactor, SplitPolicy::FrontierOrigin] {
                let engine = CircuitUmc {
                    partition: PartitionConfig {
                        split: policy,
                        ..PartitionConfig::with_count(PartitionCount::Fixed(3))
                    },
                    ..CircuitUmc::default()
                };
                let run = engine.check(&net, &Budget::unlimited());
                assert_eq!(
                    key,
                    verdict_key(&run.verdict),
                    "{} ({policy:?}): partitioning changed the verdict",
                    net.name()
                );
                if let Verdict::Unsafe { trace } = &run.verdict {
                    assert!(
                        trace.validates(&net),
                        "{} ({policy:?}): partitioned trace bogus",
                        net.name()
                    );
                }
                let detail = run.detail::<CircuitUmcStats>().expect("stats");
                assert!(
                    detail.partitions.trajectory.iter().any(|&n| n > 1),
                    "{} ({policy:?}): never actually partitioned",
                    net.name()
                );
            }
        }
    }
}
