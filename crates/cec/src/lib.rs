//! # cbq-cec — combinational equivalence checking and sweeping
//!
//! Implements the **merge phase** of the DATE 2005 paper (Section 2.1):
//! "merge together as many internal nodes of F₁ and F₀ as possible … this
//! is essentially a combinational equivalence checking problem", using the
//! paper's three escalating tiers:
//!
//! 1. **Structural hashing / semi-canonicity** — free merges performed by
//!    the AIG manager itself ("we exploit AIG semi-canonicity and hashing
//!    scheme to early detect functionally equivalent map points").
//! 2. **BDD sweeping** — size-bounded BDDs built bottom-up confirm or
//!    refute candidate equivalences canonically (Kuehlmann & Krohm,
//!    DAC 1997).
//! 3. **SAT checks** — remaining compare points go to the shared-database
//!    incremental solver ([`cbq_cnf::AigCnf`]) as assumption queries on
//!    one persistent arena solver; counterexamples are fed back into
//!    parallel simulation to refine the candidate classes (fraiging), and
//!    proven equivalences are *learnt* as activation-guarded clauses
//!    ([`cbq_cnf::AigCnf::learn_equiv`]), "simplifying successive
//!    equivalence checks" — and surviving any number of sweeps until the
//!    bridge retires the cone generation.
//!
//! Both the **forward** (inputs-first, sweeping-like) and **backward**
//! (outputs-first, early-exit) processing orders of the paper are
//! implemented ([`MergeOrder`]); the backward order skips compare points
//! that fall out of the needed cone once outputs merge.
//!
//! ## Example
//!
//! ```
//! use cbq_aig::Aig;
//! use cbq_cec::{sweep, SweepConfig};
//! use cbq_cnf::AigCnf;
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input().lit();
//! let b = aig.add_input().lit();
//! // Two different constructions of a XOR b.
//! let x1 = aig.xor(a, b);
//! let or = aig.or(a, b);
//! let nand = !aig.and(a, b);
//! let x2 = aig.and(or, nand);
//!
//! let mut cnf = AigCnf::new();
//! let result = sweep(&mut aig, &[x1, x2], &mut cnf, &SweepConfig::default());
//! assert_eq!(result.roots[0], result.roots[1]); // merged into one node
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use cbq_aig::sim::BitSim;
use cbq_aig::{Aig, Lit, Node, Var};
use cbq_bdd::BddManager;
use cbq_cnf::{AigCnf, EquivResult};

/// Processing order for SAT-based merge-point checking (Section 2.1).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum MergeOrder {
    /// Inputs-first, "more similar to the BDD sweeping technique": merges
    /// are learnt bottom-up and simplify later checks.
    #[default]
    Forward,
    /// Outputs-first, "generally better in case of high merge probability
    /// (similar cofactors)": once outputs merge, inner compare points fall
    /// out of the needed cone and are skipped.
    Backward,
}

/// Configuration of the sweeping engine.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// 64-bit words of random simulation per node (tier-0 filtering).
    pub sim_words: usize,
    /// Seed for the random patterns.
    pub seed: u64,
    /// Enable the BDD sweeping tier.
    pub use_bdd_sweep: bool,
    /// Node cap for each per-class BDD construction.
    pub bdd_cap: usize,
    /// Enable the SAT tier.
    pub use_sat: bool,
    /// Conflict budget per SAT equivalence check (`None` = unlimited).
    pub sat_budget: Option<u64>,
    /// Processing order of SAT compare points.
    pub order: MergeOrder,
    /// Maximum simulate–check–refine rounds.
    pub max_rounds: usize,
    /// Cooperative cancellation: once this instant passes, the candidate
    /// loop stops issuing new checks and applies the merges proven so far
    /// (a sweep result is always sound, however early it stops).
    pub deadline: Option<Instant>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            sim_words: 4,
            seed: 0xC0FFEE,
            use_bdd_sweep: true,
            bdd_cap: 2_000,
            use_sat: true,
            sat_budget: None,
            order: MergeOrder::Forward,
            max_rounds: 16,
            deadline: None,
        }
    }
}

impl SweepConfig {
    /// Whether the cooperative deadline has passed.
    fn past_deadline(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }
}

/// Per-tier merge counters (the data behind experiment E4).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Candidate equivalence classes after initial simulation.
    pub classes_initial: usize,
    /// Merges proven by the BDD sweeping tier.
    pub merged_bdd: usize,
    /// Merges proven by the SAT tier.
    pub merged_sat: usize,
    /// Candidate pairs refuted canonically by BDDs.
    pub refuted_bdd: usize,
    /// SAT equivalence checks issued.
    pub sat_checks: u64,
    /// SAT checks that produced counterexamples (class refinements).
    pub sat_cex: u64,
    /// SAT checks aborted on budget.
    pub sat_unknown: u64,
    /// Compare points skipped because they left the needed cone
    /// (backward order only).
    pub skipped_out_of_cone: u64,
    /// Simulate–refine rounds executed.
    pub rounds: usize,
}

/// Result of [`sweep`]: translated roots plus statistics.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The input roots rebuilt over the merged graph, in the same order.
    pub roots: Vec<Lit>,
    /// What each tier accomplished.
    pub stats: SweepStats,
}

/// A proven merge: `member` is equivalent to `repr` (both phase-carrying
/// literals on the original graph).
type Merges = HashMap<Var, Lit>;

/// Builds the miter `a ⊕ b` (satisfiable iff the functions differ).
pub fn miter(aig: &mut Aig, a: Lit, b: Lit) -> Lit {
    aig.xor(a, b)
}

/// Full combinational equivalence check between two literals: sweeping
/// first (which shrinks and shares the cones), then a final SAT proof on
/// the swept roots.
pub fn check_equiv(
    aig: &mut Aig,
    a: Lit,
    b: Lit,
    cnf: &mut AigCnf,
    cfg: &SweepConfig,
) -> EquivResult {
    let swept = sweep(aig, &[a, b], cnf, cfg);
    if swept.roots[0] == swept.roots[1] {
        return EquivResult::Equiv;
    }
    cnf.prove_equiv(aig, swept.roots[0], swept.roots[1], cfg.sat_budget)
}

/// Functionally reduces the cones of `roots`: equivalent nodes (modulo
/// complementation) are merged to a single representative.
///
/// This is the paper's merge phase, exposed as a standalone operation
/// (also known as *fraiging*). Returns the rebuilt roots and statistics.
pub fn sweep(aig: &mut Aig, roots: &[Lit], cnf: &mut AigCnf, cfg: &SweepConfig) -> SweepResult {
    Sweeper::new(aig, roots, cnf, cfg).run()
}

struct Sweeper<'a> {
    aig: &'a mut Aig,
    roots: Vec<Lit>,
    cnf: &'a mut AigCnf,
    cfg: &'a SweepConfig,
    sim: BitSim,
    merges: Merges,
    refuted: HashSet<(Var, Var)>,
    stats: SweepStats,
    next_cex_slot: usize,
}

impl<'a> Sweeper<'a> {
    fn new(aig: &'a mut Aig, roots: &[Lit], cnf: &'a mut AigCnf, cfg: &'a SweepConfig) -> Self {
        let sim = BitSim::random(aig, cfg.sim_words.max(1), cfg.seed);
        Sweeper {
            aig,
            roots: roots.to_vec(),
            cnf,
            cfg,
            sim,
            merges: HashMap::new(),
            refuted: HashSet::new(),
            stats: SweepStats::default(),
            next_cex_slot: 0,
        }
    }

    /// Follows proven merges to the current representative literal of `l`.
    fn find(&self, l: Lit) -> Lit {
        let mut cur = l;
        while let Some(&next) = self.merges.get(&cur.var()) {
            cur = next.xor_sign(cur.is_complemented());
        }
        cur
    }

    /// The set of variables still needed by the roots, looking through
    /// proven merges (used by the backward order to skip dead points).
    fn needed_cone(&self) -> HashSet<Var> {
        let mut seen = HashSet::new();
        let mut stack: Vec<Var> = self.roots.iter().map(|r| self.find(*r).var()).collect();
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            if let Node::And { f0, f1 } = self.aig.node(v) {
                for f in [f0, f1] {
                    stack.push(self.find(f).var());
                }
            }
        }
        seen
    }

    /// Groups cone nodes into candidate classes by normalised simulation
    /// signature. Class members are phase-carrying literals whose
    /// signatures are identical; the first member (lowest index) is the
    /// representative. The constant class (all-zero signature) is seeded
    /// with [`Lit::FALSE`].
    fn candidate_classes(&self) -> Vec<Vec<Lit>> {
        let cone = self.aig.collect_cone(&self.roots);
        let mut groups = cbq_aig::SigClasses::with_capacity(cone.len());
        // Seed the constant class so constant nodes merge to the constant.
        groups.insert(&vec![0; self.sim.words()], Lit::FALSE);
        for v in cone {
            if v == Var::CONST {
                continue;
            }
            let (sig, flip) = self.sim.normalized_signature(v.lit());
            groups.insert(&sig, v.lit().xor_sign(flip));
        }
        let mut classes: Vec<Vec<Lit>> = groups
            .into_entries()
            .into_iter()
            .map(|(_, members)| members)
            .filter(|members| members.len() > 1)
            .collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort_unstable_by_key(|c| c[0]);
        classes
    }

    fn record_merge(&mut self, member: Lit, repr: Lit) {
        debug_assert!(repr.var() < member.var());
        // member == repr  <=>  member.var() == repr.xor_sign(member phase)
        self.merges
            .insert(member.var(), repr.xor_sign(member.is_complemented()));
        // Learn the equivalence in the solver so later checks get simpler;
        // the guarded form dies with the cone generation it refers to.
        if let (Some(ms), Some(rs)) = (self.cnf.sat_lit(member), self.cnf.sat_lit(repr)) {
            self.cnf.learn_equiv(ms, rs);
        }
    }

    /// Tier 2: BDD sweeping inside one candidate class. Returns the
    /// members that remain unresolved (BDD construction aborted).
    fn bdd_tier(&mut self, members: &[Lit]) -> Vec<Lit> {
        // The representative's BDD is required; per-class manager keeps
        // caps local (sweeping keeps BDDs small).
        let support = self.aig.support_many(members);
        let var_level: HashMap<Var, u32> = support
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, i as u32))
            .collect();
        let mut mgr = BddManager::new(support.len());
        let mut by_bdd: HashMap<cbq_bdd::BddRef, Lit> = HashMap::new();
        let mut unresolved = Vec::new();
        for &m in members {
            let resolved = self.find(m);
            match mgr.from_aig(self.aig, resolved, &var_level, self.cfg.bdd_cap) {
                None => unresolved.push(m),
                Some(b) => {
                    if let Some(&repr) = by_bdd.get(&b) {
                        let repr = self.find(repr);
                        if repr.var() != resolved.var() {
                            let (lo, hi) = if repr.var() < resolved.var() {
                                (repr, resolved)
                            } else {
                                (resolved, repr)
                            };
                            self.record_merge(hi, lo);
                            self.stats.merged_bdd += 1;
                        }
                    } else {
                        by_bdd.insert(b, resolved);
                        // Canonicity: distinct BDDs refute the candidate
                        // pair for good.
                        for (&ob, &ol) in by_bdd.iter() {
                            if ob != b {
                                let key = ordered(ol.var(), resolved.var());
                                if self.refuted.insert(key) {
                                    self.stats.refuted_bdd += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        unresolved
    }

    /// Tier 3: SAT check of `member ≡ repr`; on counterexample the pattern
    /// is injected into the simulator for the next refinement round.
    fn sat_tier_pair(&mut self, repr: Lit, member: Lit) -> bool {
        self.stats.sat_checks += 1;
        match self
            .cnf
            .prove_equiv(self.aig, repr, member, self.cfg.sat_budget)
        {
            EquivResult::Equiv => true,
            EquivResult::Unknown => {
                self.stats.sat_unknown += 1;
                false
            }
            EquivResult::NotEquiv(cex) => {
                self.stats.sat_cex += 1;
                self.refuted.insert(ordered(repr.var(), member.var()));
                let slot = self.next_cex_slot % self.sim.num_patterns();
                self.next_cex_slot += 1;
                self.sim.set_pattern(self.aig, slot, &cex);
                false
            }
        }
    }

    fn run(mut self) -> SweepResult {
        let mut first = true;
        for round in 0..self.cfg.max_rounds.max(1) {
            self.stats.rounds = round + 1;
            self.sim.run(self.aig);
            let mut classes = self.candidate_classes();
            if first {
                self.stats.classes_initial = classes.len();
            }
            match self.cfg.order {
                MergeOrder::Forward => {
                    classes.sort_unstable_by_key(|c| c[0].var());
                }
                MergeOrder::Backward => {
                    classes.sort_unstable_by_key(|c| {
                        std::cmp::Reverse(c.iter().map(|l| l.var()).max().unwrap())
                    });
                }
            }
            // BDD sweeping only in the first round: later rounds only see
            // classes the BDDs already failed on or that SAT refined.
            let use_bdd = self.cfg.use_bdd_sweep && first;
            first = false;
            let mut progress = false;
            let mut pending_pairs = 0usize;
            let mut cancelled = false;
            for class in classes {
                // Cooperative cancellation between candidate classes: stop
                // issuing checks, keep the merges already proven.
                if self.cfg.past_deadline() {
                    cancelled = true;
                    break;
                }
                let class = if use_bdd {
                    let unresolved = self.bdd_tier(&class);
                    if unresolved.len() < class.len() {
                        progress = true;
                    }
                    unresolved
                } else {
                    class
                };
                if !self.cfg.use_sat {
                    continue;
                }
                // Re-resolve members through merges accumulated so far.
                let needed = match self.cfg.order {
                    MergeOrder::Backward => Some(self.needed_cone()),
                    MergeOrder::Forward => None,
                };
                let mut resolved: Vec<Lit> = Vec::with_capacity(class.len());
                for m in class {
                    let r = self.find(m);
                    if let Some(n) = &needed {
                        if !n.contains(&r.var()) && !r.is_const() {
                            self.stats.skipped_out_of_cone += 1;
                            continue;
                        }
                    }
                    if !resolved.contains(&r) && !resolved.contains(&!r) {
                        resolved.push(r);
                    }
                }
                if resolved.len() < 2 {
                    continue;
                }
                resolved.sort_unstable();
                let repr = resolved[0];
                for &member in &resolved[1..] {
                    if self.refuted.contains(&ordered(repr.var(), member.var())) {
                        pending_pairs += 1;
                        continue;
                    }
                    if self.cfg.past_deadline() {
                        cancelled = true;
                        break;
                    }
                    if self.sat_tier_pair(repr, member) {
                        self.record_merge(member, repr);
                        self.stats.merged_sat += 1;
                        progress = true;
                    } else {
                        pending_pairs += 1;
                    }
                }
            }
            if cancelled || !progress || pending_pairs == 0 {
                break;
            }
        }
        let roots = apply_merges(self.aig, &self.roots, &self.merges);
        SweepResult {
            roots,
            stats: self.stats,
        }
    }
}

fn ordered(a: Var, b: Var) -> (Var, Var) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Rebuilds `roots` with every merged node replaced by (the rebuilt form
/// of) its representative, so equivalent sub-circuits become shared.
///
/// Unlike plain substitution, the replacement chases representatives
/// through the *rebuilt* graph, guaranteeing the merged cones share
/// structure.
pub fn apply_merges(aig: &mut Aig, roots: &[Lit], merges: &HashMap<Var, Lit>) -> Vec<Lit> {
    if merges.is_empty() {
        return roots.to_vec();
    }
    let cone = aig.collect_cone(roots);
    let top = cone.last().map_or(0, |v| v.index());
    let mut memo: Vec<Option<Lit>> = vec![None; top + 1];
    for v in cone {
        let rebuilt = match aig.node(v) {
            Node::Const => Lit::FALSE,
            Node::Input { .. } => v.lit(),
            Node::And { f0, f1 } => {
                let a = resolve(&memo, merges, f0);
                let b = resolve(&memo, merges, f1);
                aig.and(a, b)
            }
        };
        memo[v.index()] = Some(rebuilt);
    }
    roots.iter().map(|r| resolve(&memo, merges, *r)).collect()
}

/// Resolves an edge through merges (on original variables) and then the
/// rebuild memo, preserving phase.
fn resolve(memo: &[Option<Lit>], merges: &HashMap<Var, Lit>, l: Lit) -> Lit {
    let mut cur = l;
    while let Some(&next) = merges.get(&cur.var()) {
        cur = next.xor_sign(cur.is_complemented());
    }
    match memo.get(cur.var().index()).copied().flatten() {
        Some(m) => m.xor_sign(cur.is_complemented()),
        None => cur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_two_ways(aig: &mut Aig) -> (Lit, Lit, Lit, Lit) {
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let x1 = aig.xor(a, b);
        let or = aig.or(a, b);
        let nand = !aig.and(a, b);
        let x2 = aig.and(or, nand);
        (a, b, x1, x2)
    }

    #[test]
    fn merges_equivalent_xor_constructions() {
        let mut aig = Aig::new();
        let (_, _, x1, x2) = xor_two_ways(&mut aig);
        assert_ne!(x1, x2); // strashing alone does not see it
        let mut cnf = AigCnf::new();
        let res = sweep(&mut aig, &[x1, x2], &mut cnf, &SweepConfig::default());
        assert_eq!(res.roots[0], res.roots[1]);
        assert!(res.stats.merged_bdd + res.stats.merged_sat >= 1);
    }

    #[test]
    fn sat_only_sweep_works() {
        let mut aig = Aig::new();
        let (_, _, x1, x2) = xor_two_ways(&mut aig);
        let mut cnf = AigCnf::new();
        let cfg = SweepConfig {
            use_bdd_sweep: false,
            ..SweepConfig::default()
        };
        let res = sweep(&mut aig, &[x1, x2], &mut cnf, &cfg);
        assert_eq!(res.roots[0], res.roots[1]);
        assert!(res.stats.merged_sat >= 1);
        assert_eq!(res.stats.merged_bdd, 0);
    }

    #[test]
    fn bdd_only_sweep_works() {
        let mut aig = Aig::new();
        let (_, _, x1, x2) = xor_two_ways(&mut aig);
        let mut cnf = AigCnf::new();
        let cfg = SweepConfig {
            use_sat: false,
            ..SweepConfig::default()
        };
        let res = sweep(&mut aig, &[x1, x2], &mut cnf, &cfg);
        assert_eq!(res.roots[0], res.roots[1]);
        assert!(res.stats.merged_bdd >= 1);
        assert_eq!(res.stats.merged_sat, 0);
    }

    #[test]
    fn constant_nodes_merge_to_constant() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        // xor(a,b) & xnor(a,b) == false, invisible to local rewriting when
        // the xnor is built from a different structure.
        let x = aig.xor(a, b);
        let xn = {
            let both = aig.and(a, b);
            let neither = aig.and(!a, !b);
            aig.or(both, neither)
        };
        let dead = aig.and(x, xn);
        assert_ne!(dead, Lit::FALSE); // strash missed it
        let mut cnf = AigCnf::new();
        let res = sweep(&mut aig, &[dead], &mut cnf, &SweepConfig::default());
        assert_eq!(res.roots[0], Lit::FALSE);
    }

    #[test]
    fn complement_phase_merges() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        let f = aig.xor(a, b);
        let nb = !b;
        let g = aig.xor(a, nb); // g == !f
        let mut cnf = AigCnf::new();
        let res = sweep(&mut aig, &[f, g], &mut cnf, &SweepConfig::default());
        assert_eq!(res.roots[0], !res.roots[1]);
    }

    #[test]
    fn inequivalent_roots_stay_separate_and_semantics_hold() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
        let f = {
            let t = aig.and(ins[0], ins[1]);
            aig.or(t, ins[2])
        };
        let g = {
            let t = aig.and(ins[0], ins[1]);
            aig.or(t, ins[3])
        };
        let mut cnf = AigCnf::new();
        let res = sweep(&mut aig, &[f, g], &mut cnf, &SweepConfig::default());
        assert_ne!(res.roots[0].var(), res.roots[1].var());
        // Semantics preserved.
        for mask in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(aig.eval(f, &asg), aig.eval(res.roots[0], &asg));
            assert_eq!(aig.eval(g, &asg), aig.eval(res.roots[1], &asg));
        }
    }

    #[test]
    fn backward_skips_inner_points_when_roots_merge() {
        // Two structurally different but equivalent mid-size circuits:
        // backward order should prove the roots equal and skip (some of)
        // the inner compare points.
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| aig.add_input().lit()).collect();
        let mut f = Lit::FALSE;
        for &x in &ins {
            f = aig.xor(f, x);
        }
        let mut g = Lit::FALSE;
        for &x in ins.iter().rev() {
            g = aig.xor(g, x);
        }
        let mut cnf_b = AigCnf::new();
        let cfg_b = SweepConfig {
            use_bdd_sweep: false,
            order: MergeOrder::Backward,
            ..SweepConfig::default()
        };
        let res_b = sweep(&mut aig, &[f, g], &mut cnf_b, &cfg_b);
        assert_eq!(res_b.roots[0], res_b.roots[1]);

        let mut cnf_f = AigCnf::new();
        let cfg_f = SweepConfig {
            use_bdd_sweep: false,
            order: MergeOrder::Forward,
            ..SweepConfig::default()
        };
        let mut aig2 = Aig::new();
        let ins2: Vec<Lit> = (0..6).map(|_| aig2.add_input().lit()).collect();
        let mut f2 = Lit::FALSE;
        for &x in &ins2 {
            f2 = aig2.xor(f2, x);
        }
        let mut g2 = Lit::FALSE;
        for &x in ins2.iter().rev() {
            g2 = aig2.xor(g2, x);
        }
        let res_f = sweep(&mut aig2, &[f2, g2], &mut cnf_f, &cfg_f);
        assert_eq!(res_f.roots[0], res_f.roots[1]);
        // Backward either skipped points or issued no more checks than forward.
        assert!(
            res_b.stats.skipped_out_of_cone > 0 || res_b.stats.sat_checks <= res_f.stats.sat_checks
        );
    }

    #[test]
    fn check_equiv_end_to_end() {
        let mut aig = Aig::new();
        let (_, _, x1, x2) = xor_two_ways(&mut aig);
        let mut cnf = AigCnf::new();
        assert!(check_equiv(&mut aig, x1, x2, &mut cnf, &SweepConfig::default()).is_equiv());
        let c = aig.add_input().lit();
        assert!(!check_equiv(&mut aig, x1, c, &mut cnf, &SweepConfig::default()).is_equiv());
    }

    #[test]
    fn miter_is_satisfiable_iff_different() {
        let mut aig = Aig::new();
        let (a, b, x1, x2) = xor_two_ways(&mut aig);
        let mut cnf = AigCnf::new();
        let m_eq = miter(&mut aig, x1, x2);
        assert_eq!(cnf.solve_under(&aig, &[m_eq]), cbq_sat::SatResult::Unsat);
        let m_diff = miter(&mut aig, a, b);
        assert_eq!(cnf.solve_under(&aig, &[m_diff]), cbq_sat::SatResult::Sat);
    }

    #[test]
    fn apply_merges_preserves_semantics_on_chains() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|_| aig.add_input().lit()).collect();
        // A chain with redundant re-computation of the same subterm.
        let t1 = aig.and(ins[0], ins[1]);
        let t2 = {
            let o = aig.or(!ins[0], !ins[1]);
            !o // == t1 by De Morgan
        };
        let u1 = aig.or(t1, ins[2]);
        let u2 = aig.or(t2, ins[3]);
        let root = {
            let x = aig.xor(u1, u2);
            aig.or(x, ins[4])
        };
        let mut cnf = AigCnf::new();
        let res = sweep(&mut aig, &[root], &mut cnf, &SweepConfig::default());
        for mask in 0..32u32 {
            let asg: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(aig.eval(root, &asg), aig.eval(res.roots[0], &asg));
        }
    }
}
