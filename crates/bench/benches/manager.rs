//! E6q companion — AIG-manager primitive microbenches.
//!
//! Times the three hot-path primitives the e6q ablation table measures
//! end-to-end — `and` (strash lookups), `compose` (scratchpad cone
//! walks), and `cofactor` (support-limited rebuild + cache) — under the
//! full tuning and the `HashMap` reference rung.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_aig::{Aig, AigTuning, Lit, Var};
use cbq_bench::preimage_workload;
use cbq_ckt::generators;

/// Builds the arbiter pre-image workload under the given manager tuning
/// (the workload constructor uses the process default, exactly like the
/// engines the e6q table runs), restoring the full tuning afterwards.
fn workload(tuning: AigTuning) -> (Aig, Lit, Vec<Var>) {
    AigTuning::set_process_default(tuning);
    let net = generators::arbiter(6);
    let (aig, pre, pis) = preimage_workload(&net, 1);
    AigTuning::set_process_default(AigTuning::full());
    (aig, pre, pis)
}

fn bench_manager(c: &mut Criterion) {
    for (label, tuning) in [
        ("full", AigTuning::full()),
        ("reference", AigTuning::reference()),
    ] {
        let (aig0, pre, pis) = workload(tuning);
        let mut g = c.benchmark_group(format!("e6q-manager-{label}"));
        g.sample_size(20);
        g.bench_function("and", |b| {
            // Rebuild conjunctions over existing cone nodes: every call
            // is a strash probe, most of them hits.
            b.iter(|| {
                let mut aig = aig0.clone();
                let mut acc = pre;
                for v in &pis {
                    acc = aig.and(acc, v.lit());
                }
                acc
            })
        });
        g.bench_function("compose", |b| {
            // Permute the quantified inputs: a full cone walk with a
            // non-trivial substitution at every leaf.
            b.iter(|| {
                let mut aig = aig0.clone();
                let map: Vec<(Var, Lit)> = pis
                    .iter()
                    .zip(pis.iter().rev())
                    .map(|(a, b)| (*a, b.lit()))
                    .collect();
                aig.compose(pre, &map)
            })
        });
        g.bench_function("cofactor", |b| {
            // Chained positive cofactors: exercises support-limited
            // pruning and (second time around each root) the cache.
            b.iter(|| {
                let mut aig = aig0.clone();
                let mut acc = pre;
                for v in &pis {
                    acc = aig.cofactor(acc, *v, true);
                }
                acc
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_manager);
criterion_main!(benches);
