//! Budget-exhaustion tests: a zero or near-zero [`Budget`] must yield
//! `Verdict::Bounded` on every registered engine — promptly, never a
//! hang — and a budget generous enough must not change the verdict.

use std::time::{Duration, Instant};

use cbq::ckt::generators;
use cbq::mc::{registry, Resource};
use cbq::prelude::*;

#[test]
fn zero_step_budget_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        let start = Instant::now();
        let run = (spec.build)().check(&net, &Budget::unlimited().with_steps(0));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::Steps,
                limit: 0,
            } => {}
            other => panic!("{}: expected step-bounded, got {other}", spec.name),
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "{}: zero-step budget took {:?}",
            spec.name,
            start.elapsed()
        );
    }
}

#[test]
fn zero_timeout_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        let run = (spec.build)().check(&net, &Budget::unlimited().with_timeout(Duration::ZERO));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::WallClock,
                ..
            } => {}
            other => panic!("{}: expected time-bounded, got {other}", spec.name),
        }
    }
}

#[test]
fn tiny_node_budget_bounds_every_engine() {
    let net = generators::token_ring(5);
    for spec in registry() {
        // (The portfolio splits the budget across members, so only the
        // resource kind — not the limit value — is uniform.)
        let run = (spec.build)().check(&net, &Budget::unlimited().with_nodes(1));
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::Nodes,
                ..
            } => {}
            other => panic!("{}: expected node-bounded, got {other}", spec.name),
        }
    }
}

#[test]
fn tiny_sat_budget_never_hangs() {
    // BDD engines issue no SAT checks, so they may legitimately conclude;
    // everyone else must trip the SAT-check budget. Either way: no hang,
    // and never a wrong conclusive verdict (token_ring(5) is safe).
    let net = generators::token_ring(5);
    for spec in registry() {
        let run = (spec.build)().check(&net, &Budget::unlimited().with_sat_checks(1));
        assert!(
            !run.verdict.is_unsafe(),
            "{}: bogus cex under a SAT budget: {}",
            spec.name,
            run.verdict
        );
    }
}

#[test]
fn generous_budget_leaves_verdicts_intact() {
    let safe = generators::mutex();
    let buggy = generators::mutex_bug();
    let budget = Budget::unlimited()
        .with_steps(10_000)
        .with_timeout(Duration::from_secs(60));
    for spec in registry() {
        let run = (spec.build)().check(&safe, &budget);
        if spec.complete {
            assert!(run.verdict.is_safe(), "{}: {}", spec.name, run.verdict);
        } else {
            assert!(!run.verdict.is_unsafe(), "{}: {}", spec.name, run.verdict);
        }
        let run = (spec.build)().check(&buggy, &budget);
        assert!(run.verdict.is_unsafe(), "{}: {}", spec.name, run.verdict);
    }
}
