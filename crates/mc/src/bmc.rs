//! Bounded model checking (Biere, Cimatti, Clarke, Fujita, Zhu — DAC
//! 1999, reference [1] of the paper).
//!
//! The transition system is unrolled *functionally*: frame `t`'s state
//! bits are AIG functions of the initial constants and the input frames
//! `i₀ … i_{t-1}`, so no next-state variables ever exist — the circuit
//! analogue of in-lining. Each depth is one assumption-based SAT call on
//! the shared clause database.

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_sat::SatResult;

use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// Incremental functional unroller, shared by BMC and the base case of
/// k-induction.
#[derive(Debug)]
pub(crate) struct Unroller {
    pub aig: Aig,
    pub cnf: AigCnf,
    /// Current-frame state functions (over initial constants and input
    /// frames created so far).
    state: Vec<Lit>,
    /// Fresh input variables per frame.
    frame_inputs: Vec<Vec<Var>>,
    /// `bad` literal per unrolled frame.
    bads: Vec<Lit>,
}

impl Unroller {
    pub fn new(net: &Network) -> Unroller {
        let aig = net.aig().clone();
        let state = net
            .latches()
            .iter()
            .map(|l| if l.init { Lit::TRUE } else { Lit::FALSE })
            .collect();
        Unroller {
            aig,
            cnf: AigCnf::new(),
            state,
            frame_inputs: Vec::new(),
            bads: Vec::new(),
        }
    }

    /// Ensures frames `0..=depth` exist and returns `bad` at `depth`.
    pub fn bad_at(&mut self, net: &Network, depth: usize) -> Lit {
        while self.bads.len() <= depth {
            let t = self.bads.len();
            // Fresh inputs for frame t.
            let fresh: Vec<Var> = net
                .primary_inputs()
                .iter()
                .map(|_| self.aig.add_input())
                .collect();
            let mut subst: Vec<(Var, Lit)> = net
                .latches()
                .iter()
                .zip(&self.state)
                .map(|(l, s)| (l.var, *s))
                .collect();
            subst.extend(
                net.primary_inputs()
                    .iter()
                    .zip(&fresh)
                    .map(|(pi, f)| (*pi, f.lit())),
            );
            let bad_t = self.aig.compose(net.bad(), &subst);
            let next_state: Vec<Lit> = net
                .latches()
                .iter()
                .map(|l| self.aig.compose(l.next, &subst))
                .collect();
            self.bads.push(bad_t);
            self.frame_inputs.push(fresh);
            self.state = next_state;
            let _ = t;
        }
        self.bads[depth]
    }

    /// Solves `bad` at exactly `depth`.
    pub fn check_depth(&mut self, net: &Network, depth: usize) -> SatResult {
        let bad = self.bad_at(net, depth);
        self.cnf.solve_under(&self.aig, &[bad])
    }

    /// Extracts the trace for a satisfiable `depth` query (model must be
    /// current).
    pub fn extract_trace(&self, net: &Network, depth: usize) -> Trace {
        let model = self.cnf.model_inputs(&self.aig);
        let inputs = (0..=depth)
            .map(|t| {
                self.frame_inputs[t]
                    .iter()
                    .map(|v| model[self.aig.input_index(*v).expect("frame input")])
                    .collect()
            })
            .collect();
        let _ = net;
        Trace::new(inputs)
    }
}

/// Bounded model checker: searches for counterexamples of increasing
/// depth up to `max_depth`.
///
/// Returns `Unsafe` with a minimal-depth trace, or `Unknown` (BMC alone
/// can never prove safety).
#[derive(Clone, Debug)]
pub struct Bmc {
    /// Maximum unrolling depth (inclusive).
    pub max_depth: usize,
}

impl Default for Bmc {
    fn default() -> Bmc {
        Bmc { max_depth: 64 }
    }
}

/// Statistics of a [`Bmc`] run.
#[derive(Clone, Debug, Default)]
pub struct BmcStats {
    /// Deepest frame unrolled.
    pub depth_reached: usize,
    /// Total nodes in the unrolled AIG.
    pub unrolled_nodes: usize,
    /// SAT checks issued (one per depth).
    pub sat_checks: u64,
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: BmcStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "bmc",
        iterations: stats.depth_reached,
        peak_nodes: stats.unrolled_nodes,
        sat_checks: stats.sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for Bmc {
    fn name(&self) -> &'static str {
        "bmc"
    }

    /// Runs BMC on `net` within `budget` (`max_steps` caps the depth).
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut u = Unroller::new(net);
        let mut stats = BmcStats::default();
        for d in 0..=self.max_depth {
            if let Some(bounded) = meter.exceeded(d, u.aig.num_nodes(), u.cnf.stats().checks) {
                stats.unrolled_nodes = u.aig.num_nodes();
                stats.sat_checks = u.cnf.stats().checks;
                return finish(bounded, stats, &meter);
            }
            stats.depth_reached = d;
            match u.check_depth(net, d) {
                SatResult::Sat => {
                    let trace = u.extract_trace(net, d);
                    stats.unrolled_nodes = u.aig.num_nodes();
                    stats.sat_checks = u.cnf.stats().checks;
                    return finish(Verdict::Unsafe { trace }, stats, &meter);
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    stats.unrolled_nodes = u.aig.num_nodes();
                    stats.sat_checks = u.cnf.stats().checks;
                    let verdict = Verdict::Unknown {
                        reason: format!("solver budget at depth {d}"),
                    };
                    return finish(verdict, stats, &meter);
                }
            }
        }
        stats.unrolled_nodes = u.aig.num_nodes();
        stats.sat_checks = u.cnf.stats().checks;
        let verdict = Verdict::Unknown {
            reason: format!("no counterexample up to depth {}", self.max_depth),
        };
        finish(verdict, stats, &meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn finds_minimal_depth_counterexamples() {
        for (net, depth) in [
            (generators::counter_bug(5, 7), 7),
            (generators::token_ring_bug(5), 3),
            (generators::mutex_bug(), 2),
            (generators::shift_ones(4), 4),
        ] {
            let run = Bmc::default().check(&net, &Budget::unlimited());
            match run.verdict {
                Verdict::Unsafe { trace } => {
                    assert_eq!(trace.len(), depth + 1, "{}", net.name());
                    assert!(trace.validates(&net), "{}", net.name());
                }
                other => panic!("{} expected unsafe, got {other}", net.name()),
            }
        }
    }

    #[test]
    fn safe_circuit_is_unknown() {
        let run = Bmc { max_depth: 20 }.check(&generators::token_ring(4), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
        assert_eq!(run.detail::<BmcStats>().unwrap().depth_reached, 20);
        assert_eq!(run.stats.iterations, 20);
    }

    #[test]
    fn depth_budget_bounds_the_search() {
        // The bug sits at depth 7; a 3-step budget must trip first.
        let run = Bmc::default().check(
            &generators::counter_bug(5, 7),
            &Budget::unlimited().with_steps(3),
        );
        assert!(run.verdict.is_bounded(), "got {}", run.verdict);
        assert!(run.stats.iterations <= 3);
    }

    #[test]
    fn bound_below_bug_depth_misses_it() {
        let run = Bmc { max_depth: 5 }.check(&generators::counter_bug(5, 7), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn bad_at_initial_state() {
        // Latch initialised to 1 with bad = latch: depth-0 cex.
        let mut b = cbq_ckt::Network::builder("badinit");
        let s = b.add_latch(true);
        b.set_next(s, s.lit());
        let net = b.build(s.lit());
        let run = Bmc::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => assert_eq!(trace.len(), 1),
            other => panic!("expected unsafe, got {other}"),
        }
    }
}
