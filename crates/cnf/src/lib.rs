//! # cbq-cnf — incremental Tseitin bridge between AIGs and the SAT solver
//!
//! The paper's SAT-merge routine is built "on top of ZChaff: we load the
//! clause database once and for-all, and we factorize several checks
//! together within a single ZChaff run". [`AigCnf`] reproduces exactly that
//! workflow:
//!
//! * AIG nodes are encoded to CNF **lazily** ([`AigCnf::ensure`]): each AND
//!   gate contributes its three Tseitin clauses the first time a check
//!   needs its cone, and never again;
//! * checks are issued as **assumption-based solves** on the shared
//!   database ([`AigCnf::solve_under`]), so nothing needs to be retracted
//!   between checks and everything the solver learns is kept;
//! * equivalence and implication proofs ([`AigCnf::prove_equiv`],
//!   [`AigCnf::prove_implies`]) return concrete counterexample input
//!   assignments that the sweeping engines feed back into simulation;
//! * every cone generation is tagged with an **activation literal**
//!   (assumed on each solve), so when a sweep garbage-collects the AIG
//!   manager the bridge **retires** the dead cones by asserting the
//!   negated activator ([`AigCnf::retire_cones`]) instead of discarding
//!   the solver — learnt clauses, variable activities, and phases survive
//!   across GCs, reachability iterations, and partition re-splits. The
//!   pre-activation behaviour (throw the solver away) is kept as
//!   [`CnfLifetime::Rebuild`] for ablation.
//!
//! ## Example
//!
//! ```
//! use cbq_aig::Aig;
//! use cbq_cnf::{AigCnf, EquivResult};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input().lit();
//! let b = aig.add_input().lit();
//! let f = aig.xor(a, b);
//! let or = aig.or(a, b);
//! let nand = !aig.and(a, b);
//! let g = aig.and(or, nand); // xor, written differently
//!
//! let mut cnf = AigCnf::new();
//! assert_eq!(cnf.prove_equiv(&aig, f, g, None), EquivResult::Equiv);
//! match cnf.prove_equiv(&aig, f, or, None) {
//!     EquivResult::NotEquiv(cex) => {
//!         assert_ne!(aig.eval(f, &cex), aig.eval(or, &cex));
//!     }
//!     other => panic!("expected counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cbq_aig::{Aig, Lit, Node, Var};
use cbq_sat::{SatLit, SatResult, Solver, SolverStats};

pub use cbq_sat::ProofMode;

/// Outcome of an equivalence or implication proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// The two functions are equivalent (or the implication holds).
    Equiv,
    /// A distinguishing input assignment, indexed by input ordinal.
    NotEquiv(Vec<bool>),
    /// The conflict budget ran out before a verdict.
    Unknown,
}

impl EquivResult {
    /// Whether the proof succeeded.
    pub fn is_equiv(&self) -> bool {
        matches!(self, EquivResult::Equiv)
    }
}

/// Counters for the bridge, exposed by [`AigCnf::stats`].
///
/// All counters are monotone across [`AigCnf::retire_cones`], whichever
/// [`CnfLifetime`] is configured, so engine totals never go backwards.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AigCnfStats {
    /// AND gates encoded into CNF so far (all generations).
    pub encoded_ands: u64,
    /// Assumption-based solver calls issued.
    pub checks: u64,
    /// Cone generations retired ([`AigCnf::retire_cones`] calls,
    /// including migrations that hit the memory-pressure valve).
    pub retirements: u64,
    /// Cone clauses disabled by retirement, total.
    pub clauses_retired: u64,
    /// Map migrations across manager compactions ([`AigCnf::migrate`]
    /// calls that kept the encoding alive).
    pub migrations: u64,
    /// Learnt clauses alive in the solver at migration instants, summed —
    /// i.e. how much derived work *survived* garbage collections (always 0
    /// under [`CnfLifetime::Rebuild`], which destroys it instead).
    pub learnts_retained: u64,
}

impl AigCnfStats {
    /// Accumulates another counter record into this one (used to fold
    /// per-partition bridges into one engine total).
    pub fn absorb(&mut self, other: &AigCnfStats) {
        self.encoded_ands += other.encoded_ands;
        self.checks += other.checks;
        self.retirements += other.retirements;
        self.clauses_retired += other.clauses_retired;
        self.migrations += other.migrations;
        self.learnts_retained += other.learnts_retained;
    }
}

/// What [`AigCnf::retire_cones`] does with the solver state.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum CnfLifetime {
    /// Tag each cone generation with an activation literal and retire it
    /// by asserting the negated activator: learnt clauses survive.
    #[default]
    Activation,
    /// Replace the solver wholesale (the pre-activation behaviour, kept
    /// as the ablation baseline): all learnt clauses are lost.
    Rebuild,
}

/// An incremental AIG-to-CNF bridge over one persistent [`Solver`].
///
/// The bridge is tied to a single growing [`Aig`]: because the manager is
/// append-only and nodes are immutable, the mapping from AIG variables to
/// SAT variables never invalidates. When the manager *is* replaced (sweep
/// garbage collection), [`AigCnf::retire_cones`] ends the current cone
/// generation — under the default [`CnfLifetime::Activation`] the solver
/// and everything it has learnt persist.
#[derive(Debug, Default)]
pub struct AigCnf {
    solver: Solver,
    /// AIG variable index → the SAT literal computing that node's
    /// *positive* literal (phase-carrying, so map migration across a
    /// compaction can absorb complemented translations).
    map: Vec<Option<SatLit>>,
    stats: AigCnfStats,
    /// Solver counters rolled up from solvers discarded by
    /// [`CnfLifetime::Rebuild`] retirements, so
    /// [`AigCnf::solver_stats`] stays monotone in both modes.
    retired_solver: SolverStats,
    lifetime: CnfLifetime,
    /// The current generation's activation literal (lazily created with
    /// the generation's first guarded clause; `Activation` mode only).
    act: Option<SatLit>,
    /// Guarded clauses added in the current generation.
    gen_clauses: u64,
    /// Guards retired via [`AigCnf::retire_guard`] whose variables are
    /// awaiting reclamation by [`AigCnf::reclaim_guards`].
    retired_guards: Vec<SatLit>,
    /// Guards issued by [`AigCnf::new_guard`] and not yet retired. While
    /// any exist, retirement must keep map variables alive (the guarded
    /// groups may reference them).
    live_guards: usize,
}

impl AigCnf {
    /// Creates an empty bridge with the default
    /// [`CnfLifetime::Activation`].
    pub fn new() -> AigCnf {
        AigCnf::default()
    }

    /// Creates an empty bridge with the given lifetime policy.
    pub fn with_lifetime(lifetime: CnfLifetime) -> AigCnf {
        AigCnf {
            lifetime,
            ..AigCnf::default()
        }
    }

    /// The configured lifetime policy.
    pub fn lifetime(&self) -> CnfLifetime {
        self.lifetime
    }

    /// The current generation's activation literal, created on first use.
    /// In [`CnfLifetime::Rebuild`] mode clauses are unguarded and no
    /// activator exists.
    fn activator(&mut self) -> Option<SatLit> {
        if self.lifetime == CnfLifetime::Rebuild {
            return None;
        }
        if self.act.is_none() {
            self.act = Some(self.solver.new_var().pos());
        }
        self.act
    }

    /// Adds `clause` guarded by the current activation literal (or
    /// unguarded in `Rebuild` mode) and counts it against the generation.
    fn add_guarded(&mut self, clause: &[SatLit]) -> bool {
        self.gen_clauses += 1;
        match self.activator() {
            Some(act) => {
                let mut guarded = Vec::with_capacity(clause.len() + 1);
                guarded.push(!act);
                guarded.extend_from_slice(clause);
                self.solver.add_clause(&guarded)
            }
            None => self.solver.add_clause(clause),
        }
    }

    /// Ends the current cone generation: the node↔variable map is cleared
    /// (the caller's AIG manager was replaced wholesale) and the cone
    /// clauses are disabled. Under [`CnfLifetime::Activation`] this
    /// asserts the negated activation literal on the *persistent* solver —
    /// the retired variables are released from branching and the now-
    /// satisfied clauses purged from the arena, while every
    /// generation-independent learnt clause, activity, and phase survives.
    /// Under [`CnfLifetime::Rebuild`] the solver is replaced (stats carry
    /// over either way).
    ///
    /// For a *compaction* of the same manager (sweep GC), prefer
    /// [`AigCnf::migrate`], which keeps the encoding itself alive.
    pub fn retire_cones(&mut self) {
        self.stats.retirements += 1;
        self.stats.clauses_retired += self.gen_clauses;
        self.gen_clauses = 0;
        match self.lifetime {
            CnfLifetime::Activation => {
                if let Some(act) = self.act.take() {
                    self.solver.add_clause(&[!act]);
                    // Dead-generation variables must never be branched on
                    // again (their clauses are satisfied, so any value
                    // works — but walking them costs every later solve).
                    // With live caller-managed guard groups outstanding
                    // they are *not* recycled — those groups may
                    // reference them — merely released from branching.
                    // With none outstanding, every clause naming a map
                    // variable carries `!act` (Tseitin and learnt alike:
                    // `act` occurs positively in no clause, so resolution
                    // preserves the `!act` tag), so after the purge their
                    // slots can be recycled together with the activator.
                    if self.live_guards == 0 {
                        let mut dead: Vec<SatLit> = self.map.iter().flatten().copied().collect();
                        dead.sort_unstable_by_key(|sl| sl.var().index());
                        dead.dedup_by_key(|sl| sl.var().index());
                        self.retired_guards.extend(dead);
                    } else {
                        for sl in self.map.iter().flatten() {
                            self.solver.set_decision(sl.var(), false);
                        }
                    }
                    self.retired_guards.push(act);
                    self.reclaim_guards();
                }
            }
            CnfLifetime::Rebuild => {
                // Keep the discarded solver's effort on the books (its
                // arena is gone, so that gauge resets).
                let mut snap = self.solver.stats();
                snap.arena_words = 0;
                self.retired_solver.absorb(&snap);
                self.solver = Solver::new();
                self.act = None;
                // Guard bookkeeping named the discarded solver's vars.
                self.retired_guards.clear();
                self.live_guards = 0;
            }
        }
        self.map.clear();
    }

    /// Solver-core counters, monotone across retirements in both lifetime
    /// modes (a rebuild's discarded solver stays on the books).
    pub fn solver_stats(&self) -> SolverStats {
        let mut s = self.retired_solver;
        s.absorb(&self.solver.stats());
        s
    }

    /// Carries the encoding across a **compaction** of the same manager:
    /// `old_to_new[old_var.index()]` is the new manager's literal for each
    /// surviving node (as produced by `Aig::compact_with_map`), and
    /// `new_num_nodes` the new manager's node count. Surviving nodes keep
    /// their SAT variables, so *all* clauses — Tseitin cones, learnt
    /// equivalences, and everything CDCL derived — stay live and
    /// immediately apply to post-GC checks; nothing is re-encoded.
    ///
    /// Orphaned variables (dead cones) keep their clauses until the
    /// memory-pressure valve trips: once the solver carries more than
    /// ~4× the live variables, the whole generation is retired via
    /// [`AigCnf::retire_cones`] (re-encoding from scratch, bounded
    /// memory). Under [`CnfLifetime::Rebuild`] every migration degrades
    /// to a retirement — that is exactly the ablation baseline.
    pub fn migrate(&mut self, old_to_new: &[Option<Lit>], new_num_nodes: usize) {
        if self.lifetime == CnfLifetime::Rebuild {
            self.retire_cones();
            return;
        }
        let mut new_map: Vec<Option<SatLit>> = vec![None; new_num_nodes];
        let mut live = 0usize;
        // Variables whose old node has NO image in the new manager — a
        // genuinely dead cone. Only these may have their clauses deleted:
        // an old node that still maps somewhere (even as a strash-collision
        // loser or a constant) can appear in the Tseitin clauses of a
        // *surviving* representative, whose definition must stay intact.
        let mut dead = vec![false; self.solver.num_vars()];
        let mut any_dead = false;
        for (old_idx, entry) in self.map.iter().enumerate() {
            let Some(sl) = entry else { continue };
            let Some(new_lit) = old_to_new.get(old_idx).copied().flatten() else {
                self.solver.set_decision(sl.var(), false);
                dead[sl.var().index()] = true;
                any_dead = true;
                continue;
            };
            if new_lit.is_const() {
                // Semantically constant: clauses stay (they keep the var
                // consistently defined), branching on it is pointless.
                self.solver.set_decision(sl.var(), false);
                continue;
            }
            let slot = &mut new_map[new_lit.var().index()];
            // Strash collisions map two equivalent old nodes onto one new
            // node; either encoding is sound, keep the first. The loser
            // keeps its clauses (a surviving parent may reference it) but
            // is released from branching — propagation still completes it
            // bottom-up from the shared inputs.
            if slot.is_none() {
                *slot = Some(sl.xor_sign(new_lit.is_complemented()));
                live += 1;
            } else {
                self.solver.set_decision(sl.var(), false);
            }
        }
        if self.solver.num_vars() > 4 * live + 1024 {
            // Mostly orphans: reclaim via a full retirement instead.
            self.retire_cones();
            return;
        }
        // Dead-cone clauses are definitional extensions — satisfiable
        // under any assignment of the surviving variables — so deleting
        // them changes no verdict, and stops every later solve from
        // propagating through the garbage cones.
        if any_dead {
            self.solver.purge_referencing(&dead);
        }
        self.map = new_map;
        self.stats.migrations += 1;
        self.stats.learnts_retained += self.solver.stats().learnts;
    }

    /// Read access to the underlying solver (e.g. for statistics).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver, for advanced uses such as
    /// adding blocking clauses during all-solutions enumeration.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Selects the solver's proof mode. Must be called before any clause
    /// is encoded (the proof plane covers the whole database or nothing),
    /// which in practice means right after construction — the
    /// interpolation engine does this on its per-query `Rebuild` bridges.
    pub fn set_proof_mode(&mut self, mode: ProofMode) {
        self.solver.set_proof_mode(mode);
    }

    /// Sets the partition label stamped on every *subsequently* added
    /// root clause in the proof log. Interpolation labels the A-side cone
    /// (prefix), switches the label, then encodes the B-side cone — the
    /// McMillan labelling pass keys on these root labels.
    pub fn set_clause_label(&mut self, label: u32) {
        self.solver.set_proof_label(label);
    }

    /// Bridge statistics.
    pub fn stats(&self) -> AigCnfStats {
        self.stats
    }

    /// Sets the conflict budget for subsequent checks (`None` = unlimited).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.solver.set_conflict_budget(budget);
    }

    /// Allocates a fresh SAT variable for AIG variable `v` and records its
    /// positive literal in the map.
    fn fresh_lit(&mut self, v: Var) -> SatLit {
        if self.map.len() <= v.index() {
            self.map.resize(v.index() + 1, None);
        }
        debug_assert!(self.map[v.index()].is_none());
        let sl = self.solver.new_var().pos();
        self.map[v.index()] = Some(sl);
        sl
    }

    /// Returns the SAT literal already associated with `l`, if its node has
    /// been encoded.
    pub fn sat_lit(&self, l: Lit) -> Option<SatLit> {
        self.map
            .get(l.var().index())
            .copied()
            .flatten()
            .map(|sl| sl.xor_sign(l.is_complemented()))
    }

    /// Encodes the cone of `l` (lazily — already-encoded nodes are skipped)
    /// and returns the SAT literal for `l`.
    pub fn ensure(&mut self, aig: &Aig, l: Lit) -> SatLit {
        // A mapped root implies its whole cone is encoded (encoding is
        // all-or-nothing per cone and migration preserves closed cones),
        // so repeated checks skip the cone walk entirely.
        if let Some(sl) = self.sat_lit(l) {
            return sl;
        }
        for v in aig.collect_cone(&[l]) {
            if self.map.get(v.index()).copied().flatten().is_some() {
                continue;
            }
            match aig.node(v) {
                Node::Const => {
                    let sl = self.fresh_lit(v);
                    self.add_guarded(&[!sl]);
                }
                Node::Input { .. } => {
                    let _ = self.fresh_lit(v);
                }
                Node::And { f0, f1 } => {
                    let a = self
                        .sat_lit(f0)
                        .expect("fanin encoded before gate (topological order)");
                    let b = self
                        .sat_lit(f1)
                        .expect("fanin encoded before gate (topological order)");
                    let c = self.fresh_lit(v);
                    // c <-> a & b
                    self.add_guarded(&[!c, a]);
                    self.add_guarded(&[!c, b]);
                    self.add_guarded(&[c, !a, !b]);
                    self.stats.encoded_ands += 1;
                }
            }
        }
        self.sat_lit(l).expect("root encoded")
    }

    /// Solves the shared database under the conjunction of `lits`
    /// (each encoded on demand, then assumed). The current generation's
    /// activation literal is assumed implicitly.
    pub fn solve_under(&mut self, aig: &Aig, lits: &[Lit]) -> SatResult {
        self.solve_under_assuming(aig, lits, &[])
    }

    /// Allocates a fresh solver-level guard literal for a caller-managed
    /// clause group (IC3 frames, per-query strengthening clauses, …).
    ///
    /// The literal is released from branching immediately: it only ever
    /// appears negated inside guarded clauses and positively as an
    /// assumption, so the solver never needs to decide it — assuming it
    /// activates the group, leaving it unassumed (or retiring it via
    /// [`AigCnf::retire_guard`]) deactivates the group. This is the same
    /// activation-literal mechanism the bridge uses for its own cone
    /// generations, exposed so engines can run many independent guarded
    /// lifetimes on one solver.
    pub fn new_guard(&mut self) -> SatLit {
        let g = self.solver.new_var().pos();
        self.solver.set_decision(g.var(), false);
        self.live_guards += 1;
        g
    }

    /// Adds a raw solver clause guarded by `guard` (the clause is active
    /// only while `guard` is assumed). The literals must already be SAT
    /// literals (e.g. from [`AigCnf::ensure`]); the clause is *not* tied
    /// to the bridge's own cone generation and survives
    /// [`AigCnf::retire_cones`] until its guard is retired.
    pub fn add_guarded_by(&mut self, guard: SatLit, clause: &[SatLit]) -> bool {
        let mut guarded = Vec::with_capacity(clause.len() + 1);
        guarded.push(!guard);
        guarded.extend_from_slice(clause);
        self.solver.add_clause(&guarded)
    }

    /// Adds a guarded clause given as *AIG* literals: each literal is
    /// encoded on demand ([`AigCnf::ensure`]) and the disjunction is
    /// added under `guard` via [`AigCnf::add_guarded_by`]. Constants are
    /// folded first — a `true` literal makes the clause vacuous (nothing
    /// is added), `false` literals are dropped. A clause with no
    /// literals left is **not** added (that would be the unit `¬guard`,
    /// silencing the whole group); the `false` return lets the caller
    /// decide what an identically-false clause means.
    ///
    /// This is the entry point for externally supplied lemmas (the
    /// portfolio's lemma bus): consumers instantiate a validated latch
    /// clause over their own frame literals as one guarded group they
    /// assume on every solve.
    pub fn add_guarded_clause_lits(&mut self, aig: &Aig, guard: SatLit, lits: &[Lit]) -> bool {
        let mut clause = Vec::with_capacity(lits.len());
        for &l in lits {
            if l == Lit::TRUE {
                return true;
            }
            if l == Lit::FALSE {
                continue;
            }
            clause.push(self.ensure(aig, l));
        }
        if clause.is_empty() {
            return false;
        }
        self.add_guarded_by(guard, &clause)
    }

    /// Permanently retires a guard from [`AigCnf::new_guard`]: its
    /// clauses become satisfied at level 0 and are reclaimed — clauses
    /// *and* the guard variable itself — by the next
    /// [`AigCnf::reclaim_guards`].
    pub fn retire_guard(&mut self, guard: SatLit) {
        self.solver.add_clause(&[!guard]);
        self.retired_guards.push(guard);
        self.live_guards = self.live_guards.saturating_sub(1);
    }

    /// Reclaims every guard retired since the last call: purges their
    /// now-satisfied clauses from the arena and recycles the guard
    /// variables onto the solver's free list, so a workload that churns
    /// through guarded clause groups (IC3's per-query guards) keeps both
    /// its clause arena *and* its variable table bounded. Call at a
    /// natural quiescent point; each call compacts the arena, so batching
    /// retirements between calls is what makes reclamation cheap.
    pub fn reclaim_guards(&mut self) {
        if self.retired_guards.is_empty() || !self.solver.is_ok() {
            return;
        }
        self.solver.purge_satisfied();
        let dead: Vec<_> = self.retired_guards.drain(..).map(|g| g.var()).collect();
        self.solver.recycle_vars(&dead);
    }

    /// Like [`AigCnf::solve_under`], with raw SAT-literal assumptions
    /// (guards from [`AigCnf::new_guard`], literals from
    /// [`AigCnf::ensure`]) appended after the encoded `lits`. The current
    /// cone generation's activation literal is assumed implicitly, and the
    /// call counts as one check. On [`SatResult::Unsat`] the solver's
    /// [`cbq_sat::Solver::failed_assumptions`] names a sufficient subset
    /// of the assumptions — the hook IC3-style engines use for unsat-core
    /// cube generalization.
    pub fn solve_under_assuming(&mut self, aig: &Aig, lits: &[Lit], extra: &[SatLit]) -> SatResult {
        let mut assumptions = Vec::with_capacity(lits.len() + extra.len() + 1);
        for &l in lits {
            if l == Lit::FALSE {
                return SatResult::Unsat;
            }
            if l == Lit::TRUE {
                continue;
            }
            assumptions.push(self.ensure(aig, l));
        }
        if let Some(act) = self.act {
            assumptions.insert(0, act);
        }
        assumptions.extend_from_slice(extra);
        self.stats.checks += 1;
        self.solver.solve_with(&assumptions)
    }

    /// Asserts `l` for the lifetime of the current cone generation (a unit
    /// clause under the generation's activation guard; plain unit in
    /// `Rebuild` mode — either way it dies with [`AigCnf::retire_cones`],
    /// exactly like the cones it constrains).
    ///
    /// Used by engines that constrain the whole enumeration, e.g. blocking
    /// already-covered state cubes.
    pub fn assert_lit(&mut self, aig: &Aig, l: Lit) -> bool {
        if l == Lit::TRUE {
            return true;
        }
        if l == Lit::FALSE {
            // The *generation* is unsatisfiable: guard the empty clause so
            // a later retirement can recover the solver.
            self.gen_clauses += 1;
            return match self.activator() {
                Some(act) => {
                    self.solver.add_clause(&[!act]);
                    false
                }
                None => self.solver.add_clause(&[]),
            };
        }
        let sl = self.ensure(aig, l);
        self.add_guarded(&[sl])
    }

    /// Learns `a ≡ b` as clauses on the shared database, guarded by the
    /// current activation literal — the sweeping engines call this for
    /// every proven merge so later checks simplify, and retirement cleans
    /// the equivalences up together with the cones they refer to.
    pub fn learn_equiv(&mut self, a: SatLit, b: SatLit) {
        self.add_guarded(&[!a, b]);
        self.add_guarded(&[a, !b]);
    }

    /// Extracts the model's values for every AIG input (unconstrained
    /// inputs default to `false`).
    ///
    /// Only meaningful immediately after a [`SatResult::Sat`] answer.
    pub fn model_inputs(&self, aig: &Aig) -> Vec<bool> {
        aig.inputs()
            .iter()
            .map(|v| {
                self.map
                    .get(v.index())
                    .copied()
                    .flatten()
                    .and_then(|sl| self.solver.value_lit(sl))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Proves `a ≡ b` on the shared database, or produces a distinguishing
    /// input assignment.
    ///
    /// Issues (at most) two assumption-based solves — `a ∧ ¬b` and
    /// `¬a ∧ b` — so no clause is ever added or retracted for the check
    /// itself; the database stays clean for the next check.
    pub fn prove_equiv(&mut self, aig: &Aig, a: Lit, b: Lit, budget: Option<u64>) -> EquivResult {
        if a == b {
            return EquivResult::Equiv;
        }
        self.solver.set_conflict_budget(budget);
        let r = self.check_diff(aig, a, b);
        self.solver.set_conflict_budget(None);
        r
    }

    fn check_diff(&mut self, aig: &Aig, a: Lit, b: Lit) -> EquivResult {
        match self.solve_under(aig, &[a, !b]) {
            SatResult::Sat => return EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => return EquivResult::Unknown,
            SatResult::Unsat => {}
        }
        match self.solve_under(aig, &[!a, b]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        }
    }

    /// Proves `a → b`, or produces an input assignment with `a ∧ ¬b`.
    pub fn prove_implies(&mut self, aig: &Aig, a: Lit, b: Lit, budget: Option<u64>) -> EquivResult {
        self.solver.set_conflict_budget(budget);
        let r = match self.solve_under(aig, &[a, !b]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        };
        self.solver.set_conflict_budget(None);
        r
    }

    /// Checks whether `l` is constant `value` over all inputs.
    pub fn prove_constant(
        &mut self,
        aig: &Aig,
        l: Lit,
        value: bool,
        budget: Option<u64>,
    ) -> EquivResult {
        let target = if value { Lit::TRUE } else { Lit::FALSE };
        if l == target {
            return EquivResult::Equiv;
        }
        self.solver.set_conflict_budget(budget);
        let probe = if value { !l } else { l };
        let r = match self.solve_under(aig, &[probe]) {
            SatResult::Sat => EquivResult::NotEquiv(self.model_inputs(aig)),
            SatResult::Unknown => EquivResult::Unknown,
            SatResult::Unsat => EquivResult::Equiv,
        };
        self.solver.set_conflict_budget(None);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Aig, Vec<Lit>) {
        let mut aig = Aig::new();
        let ins = (0..4).map(|_| aig.add_input().lit()).collect();
        (aig, ins)
    }

    #[test]
    fn tautology_and_contradiction() {
        let (mut aig, ins) = setup();
        let t = aig.or(ins[0], !ins[0]);
        assert_eq!(t, Lit::TRUE);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.solve_under(&aig, &[Lit::TRUE]), SatResult::Sat);
        assert_eq!(cnf.solve_under(&aig, &[Lit::FALSE]), SatResult::Unsat);
    }

    #[test]
    fn simple_sat_with_model() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], !ins[1]);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.solve_under(&aig, &[f]), SatResult::Sat);
        let m = cnf.model_inputs(&aig);
        assert!(aig.eval(f, &m));
    }

    #[test]
    fn equivalence_of_demorgan() {
        let (mut aig, ins) = setup();
        let lhs = !aig.and(ins[0], ins[1]);
        let na = !ins[0];
        let nb = !ins[1];
        let rhs = aig.or(na, nb);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_equiv(&aig, lhs, rhs, None), EquivResult::Equiv);
    }

    #[test]
    fn counterexample_is_concrete() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let g = aig.or(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        match cnf.prove_equiv(&aig, f, g, None) {
            EquivResult::NotEquiv(cex) => {
                assert_ne!(aig.eval(f, &cex), aig.eval(g, &cex));
            }
            other => panic!("expected NotEquiv, got {other:?}"),
        }
    }

    #[test]
    fn implication_and_constant() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_implies(&aig, f, ins[0], None), EquivResult::Equiv);
        assert!(!cnf.prove_implies(&aig, ins[0], f, None).is_equiv());
        let t = aig.or(ins[2], !ins[2]);
        assert_eq!(cnf.prove_constant(&aig, t, true, None), EquivResult::Equiv);
        assert!(!cnf.prove_constant(&aig, ins[3], true, None).is_equiv());
    }

    #[test]
    fn database_is_shared_across_checks() {
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        let _ = cnf.prove_equiv(&aig, f, ins[0], None);
        let encoded_before = cnf.stats().encoded_ands;
        assert!(encoded_before > 0);
        // Same cone again: nothing new must be encoded.
        let _ = cnf.prove_implies(&aig, f, ins[1], None);
        let _ = cnf.prove_equiv(&aig, f, ins[1], None);
        assert_eq!(cnf.stats().encoded_ands, encoded_before);
        assert!(cnf.stats().checks >= 3);
    }

    #[test]
    fn assert_lit_constrains_future_checks() {
        let (aig, ins) = setup();
        let mut cnf = AigCnf::new();
        assert!(cnf.assert_lit(&aig, ins[0]));
        assert_eq!(cnf.solve_under(&aig, &[!ins[0]]), SatResult::Unsat);
        assert_eq!(cnf.solve_under(&aig, &[ins[1]]), SatResult::Sat);
    }

    /// A pair of structurally different parity cones — SAT proofs on them
    /// generate real conflicts, hence learnt clauses.
    fn parity_pair(n: usize) -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..n).map(|_| aig.add_input().lit()).collect();
        let mut fwd = Lit::FALSE;
        for &x in &xs {
            fwd = aig.xor(fwd, x);
        }
        let mut rev = Lit::FALSE;
        for &x in xs.iter().rev() {
            rev = aig.xor(rev, x);
        }
        (aig, fwd, rev)
    }

    #[test]
    fn migration_keeps_learnts_and_stays_correct() {
        // A sweep GC compacts the manager; the bridge migrates its map, so
        // every SAT variable — and every learnt clause — stays live.
        let (aig, fwd, rev) = parity_pair(10);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.lifetime(), CnfLifetime::Activation);
        assert_eq!(cnf.prove_equiv(&aig, fwd, rev, None), EquivResult::Equiv);
        let learnts_before = cnf.solver().stats().learnts;
        assert!(learnts_before > 0, "equivalence proof learnt nothing");
        let encoded_before = cnf.stats().encoded_ands;

        let (aig2, roots2, var_map) = aig.compact_with_map(&[fwd, rev]);
        cnf.migrate(&var_map, aig2.num_nodes());
        assert_eq!(cnf.stats().migrations, 1);
        assert_eq!(cnf.stats().retirements, 0);
        assert_eq!(cnf.stats().learnts_retained, learnts_before);
        assert_eq!(
            cnf.solver().stats().learnts,
            learnts_before,
            "solver lost learnt clauses across the migration"
        );

        // Post-GC checks hit the migrated encoding: nothing re-encodes.
        assert_eq!(
            cnf.prove_equiv(&aig2, roots2[0], roots2[1], None),
            EquivResult::Equiv
        );
        assert_eq!(
            cnf.stats().encoded_ands,
            encoded_before,
            "migrated cones were re-encoded"
        );
        // And satisfiable queries still produce sound models.
        assert_eq!(cnf.solve_under(&aig2, &[roots2[0]]), SatResult::Sat);
        let m = cnf.model_inputs(&aig2);
        assert!(aig2.eval(roots2[0], &m));
    }

    #[test]
    fn retirement_releases_and_purges_the_dead_generation() {
        // A wholesale manager replacement: retirement disables the cones,
        // releases their variables from branching, and purges the
        // now-satisfied clauses from the arena.
        let (aig, fwd, rev) = parity_pair(10);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_equiv(&aig, fwd, rev, None), EquivResult::Equiv);
        let conflicts_before = cnf.solver().stats().conflicts;
        cnf.retire_cones();
        assert_eq!(cnf.stats().retirements, 1);
        assert!(cnf.stats().clauses_retired > 0);
        let s = cnf.solver().stats();
        assert!(s.purged > 0, "no satisfied clause was purged: {s:?}");
        // With no caller-managed guards outstanding the dead generation's
        // variables are recycled outright (not merely released).
        assert!(s.recycled_vars > 0, "dead variables were not reclaimed");
        assert_eq!(s.conflicts, conflicts_before, "retirement must not search");

        // The same checks on a fresh manager re-encode and still prove.
        let (aig2, fwd2, rev2) = parity_pair(10);
        assert_eq!(cnf.prove_equiv(&aig2, fwd2, rev2, None), EquivResult::Equiv);
        assert_eq!(cnf.solve_under(&aig2, &[fwd2]), SatResult::Sat);
        let m = cnf.model_inputs(&aig2);
        assert!(aig2.eval(fwd2, &m));
    }

    #[test]
    fn rebuild_lifetime_discards_learnts() {
        let (aig, fwd, rev) = parity_pair(8);
        let mut cnf = AigCnf::with_lifetime(CnfLifetime::Rebuild);
        assert_eq!(cnf.prove_equiv(&aig, fwd, rev, None), EquivResult::Equiv);
        let checks_before = cnf.stats().checks;
        cnf.retire_cones();
        assert_eq!(cnf.stats().retirements, 1);
        assert_eq!(cnf.stats().learnts_retained, 0);
        assert_eq!(cnf.solver().stats().learnts, 0, "rebuild keeps no learnts");
        assert_eq!(cnf.stats().checks, checks_before, "stats stay monotone");
        let (aig2, fwd2, rev2) = parity_pair(8);
        assert_eq!(cnf.prove_equiv(&aig2, fwd2, rev2, None), EquivResult::Equiv);
    }

    #[test]
    fn retired_generation_constraints_do_not_leak() {
        let (mut aig, ins) = setup();
        let mut cnf = AigCnf::new();
        // Constrain generation 0 so that ins[0] must hold…
        assert!(cnf.assert_lit(&aig, ins[0]));
        assert_eq!(cnf.solve_under(&aig, &[!ins[0]]), SatResult::Unsat);
        // …and even make the generation unsatisfiable outright.
        assert!(!cnf.assert_lit(&aig, Lit::FALSE));
        assert_eq!(cnf.solve_under(&aig, &[ins[1]]), SatResult::Unsat);
        // Retirement lifts both: the next generation is unconstrained.
        cnf.retire_cones();
        assert_eq!(cnf.solve_under(&aig, &[!ins[0]]), SatResult::Sat);
        let f = aig.and(ins[0], ins[1]);
        assert_eq!(cnf.prove_implies(&aig, f, ins[0], None), EquivResult::Equiv);
    }

    #[test]
    fn learn_equiv_simplifies_and_retires_cleanly() {
        let (mut aig, ins) = setup();
        let f = aig.xor(ins[0], ins[1]);
        let or = aig.or(ins[0], ins[1]);
        let nand = !aig.and(ins[0], ins[1]);
        let g = aig.and(or, nand);
        let mut cnf = AigCnf::new();
        assert_eq!(cnf.prove_equiv(&aig, f, g, None), EquivResult::Equiv);
        let (sf, sg) = (cnf.sat_lit(f).unwrap(), cnf.sat_lit(g).unwrap());
        cnf.learn_equiv(sf, sg);
        // The learnt equivalence must not contradict anything…
        assert_eq!(cnf.solve_under(&aig, &[f]), SatResult::Sat);
        // …and must die with its generation.
        cnf.retire_cones();
        assert_eq!(cnf.solve_under(&aig, &[f, !g]), SatResult::Unsat);
        assert_eq!(cnf.solve_under(&aig, &[f]), SatResult::Sat);
    }

    #[test]
    fn guards_gate_clauses_and_cores_name_assumptions() {
        // Two independent guarded groups on one solver: each is active
        // only while its guard is assumed, retirement kills it for good,
        // and an UNSAT answer names the guilty assumptions.
        let (aig, ins) = setup();
        let mut cnf = AigCnf::new();
        let a = cnf.ensure(&aig, ins[0]);
        let b = cnf.ensure(&aig, ins[1]);
        let g1 = cnf.new_guard();
        let g2 = cnf.new_guard();
        assert!(cnf.add_guarded_by(g1, &[a])); // g1 → ins[0]
        assert!(cnf.add_guarded_by(g2, &[!a])); // g2 → ¬ins[0]
                                                // Unguarded: both phases satisfiable.
        assert_eq!(cnf.solve_under_assuming(&aig, &[], &[]), SatResult::Sat);
        // Each guard alone constrains; both together are inconsistent.
        assert_eq!(
            cnf.solve_under_assuming(&aig, &[!ins[0]], &[g1]),
            SatResult::Unsat
        );
        assert_eq!(
            cnf.solve_under_assuming(&aig, &[ins[0]], &[g2]),
            SatResult::Unsat
        );
        assert_eq!(
            cnf.solve_under_assuming(&aig, &[], &[g1, g2, b]),
            SatResult::Unsat
        );
        // The failed-assumption core blames the guards, not b.
        let failed = cnf.solver().failed_assumptions();
        assert!(failed.contains(&g1) || failed.contains(&g2));
        assert!(!failed.contains(&b));
        // Retiring g2 lifts its constraint even when "assumed"… nothing
        // forces a retired guard true, so solve under g1 alone.
        cnf.retire_guard(g2);
        assert_eq!(cnf.solve_under_assuming(&aig, &[], &[g1]), SatResult::Sat);
        assert_eq!(
            cnf.solve_under_assuming(&aig, &[!ins[0]], &[g1]),
            SatResult::Unsat
        );
        // …and cone retirement re-encodes nodes onto fresh variables
        // without disturbing the surviving guard's clauses.
        cnf.retire_cones();
        let a2 = cnf.ensure(&aig, ins[0]);
        assert_ne!(a2.var(), a.var(), "retirement must clear the node map");
        assert_eq!(
            cnf.solve_under_assuming(&aig, &[], &[g1, !a]),
            SatResult::Unsat
        );
    }

    #[test]
    fn budget_propagates_to_unknown() {
        // Build a moderately hard miter and give it one conflict.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
        let mut parity = Lit::FALSE;
        for &x in &xs {
            parity = aig.xor(parity, x);
        }
        let mut parity_rev = Lit::FALSE;
        for &x in xs.iter().rev() {
            parity_rev = aig.xor(parity_rev, x);
        }
        let mut cnf = AigCnf::new();
        let r = cnf.prove_equiv(&aig, parity, !parity_rev, Some(1));
        // Either it finds a cex within one conflict or gives up; never Equiv.
        assert!(matches!(r, EquivResult::Unknown | EquivResult::NotEquiv(_)));
    }

    #[test]
    fn guard_churn_keeps_var_count_bounded() {
        // The IC3 workload shape: allocate a guard, add guarded clauses,
        // query, retire, repeat. With reclamation the solver's variable
        // table must stay flat instead of growing one var per cycle.
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let mut cnf = AigCnf::new();
        let fs = cnf.ensure(&aig, f);
        let baseline = {
            // One warm-up cycle so lazily created vars are on the books.
            let g = cnf.new_guard();
            cnf.add_guarded_by(g, &[!fs]);
            cnf.retire_guard(g);
            cnf.reclaim_guards();
            cnf.solver().num_vars()
        };
        for round in 0..1000 {
            let g = cnf.new_guard();
            cnf.add_guarded_by(g, &[!fs]);
            assert_eq!(
                cnf.solve_under_assuming(&aig, &[f], &[g]),
                SatResult::Unsat,
                "round {round}"
            );
            assert_eq!(cnf.solve_under_assuming(&aig, &[f], &[]), SatResult::Sat);
            cnf.retire_guard(g);
            if round % 64 == 63 {
                cnf.reclaim_guards();
            }
        }
        cnf.reclaim_guards();
        // The table may carry up to one reclamation batch of slack (slots
        // are reused, never shrunk) but must not scale with cycle count.
        assert!(
            cnf.solver().num_vars() <= baseline + 64,
            "guard churn grew the variable table: {} vs baseline {}",
            cnf.solver().num_vars(),
            baseline
        );
        assert!(cnf.solver_stats().recycled_vars >= 1000);
        // Queries still behave after heavy recycling.
        assert_eq!(cnf.solve_under(&aig, &[f]), SatResult::Sat);
        assert_eq!(cnf.solve_under(&aig, &[f, !ins[0]]), SatResult::Unsat);
    }

    #[test]
    fn cone_retire_readd_cycles_keep_var_count_bounded() {
        // Full cone retire/re-encode cycles with no live caller guards:
        // map variables and the activator are all reclaimed, so repeated
        // generations reuse the same slots.
        let (mut aig, ins) = setup();
        let f = aig.and(ins[0], ins[1]);
        let g = aig.xor(ins[2], ins[3]);
        let mut cnf = AigCnf::new();
        let mut high_water = 0;
        for round in 0..100 {
            assert_eq!(cnf.solve_under(&aig, &[f, g]), SatResult::Sat, "{round}");
            assert_eq!(cnf.solve_under(&aig, &[f, !ins[1]]), SatResult::Unsat);
            let n = cnf.solver().num_vars();
            if round == 0 {
                high_water = n;
            } else {
                assert_eq!(n, high_water, "round {round}: var table grew");
            }
            cnf.retire_cones();
        }
        assert!(cnf.solver_stats().recycled_vars > 0);
    }
}
