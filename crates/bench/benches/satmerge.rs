//! E2 / Table 2 — fresh solver per check vs one shared clause database.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_aig::{Aig, Lit};
use cbq_bench::{candidate_pairs, satmerge_run};
use cbq_ckt::random::{mutate_function, random_function};

fn bench_satmerge(c: &mut Criterion) {
    let mut aig = Aig::new();
    let ins: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
    let f = random_function(&mut aig, &ins, 300, 7);
    let g = mutate_function(&mut aig, f, 0.08, 8);
    let pairs = candidate_pairs(&aig, f, g, 4, 9);
    let mut grp = c.benchmark_group("e2-satmerge");
    grp.sample_size(10);
    grp.bench_function("fresh-per-check", |b| {
        b.iter(|| satmerge_run(&aig, &pairs, false))
    });
    grp.bench_function("shared-database", |b| {
        b.iter(|| satmerge_run(&aig, &pairs, true))
    });
    grp.finish();
}

criterion_group!(benches, bench_satmerge);
criterion_main!(benches);
