//! Shared pre-image construction (Section 3 of the paper).
//!
//! "Pre-image adopts quantification by substitution (also called
//! in-lining): ∃y.(y ≡ δ) ∧ P(y) = P(δ). … in backward reachability, the
//! transition relation is a conjunction of next state variables defined in
//! terms of current state variables" — so every next-state variable is
//! eliminated for free, and only the primary inputs remain to be
//! quantified by circuit-based quantification.

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::Network;

/// The *raw* pre-image formula of a state set `target(s)`:
/// `target[s ← δ(s, i)]`, a function of current state `s` and primary
/// inputs `i`. No input quantification is performed.
pub fn preimage_formula(aig: &mut Aig, net: &Network, target: Lit) -> Lit {
    let defs: Vec<(Var, Lit)> = net.next_state_defs();
    aig.compose(target, &defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn preimage_of_counter_value() {
        // For the free counter with enable: pre(count==k) contains
        // (count==k-1, en) and (count==k, !en).
        let net = generators::counter_bug(4, 3);
        let mut aig = net.aig().clone();
        // target: count == 3
        let latches = net.latch_vars();
        let target = {
            let bits: Vec<Lit> = latches
                .iter()
                .enumerate()
                .map(|(i, v)| v.lit().xor_sign(3u64 >> i & 1 != 1))
                .collect();
            aig.and_many(&bits)
        };
        let pre = preimage_formula(&mut aig, &net, target);
        // state=2 (0b010), en=1 -> in pre-image
        let mk_asg = |count: u64, en: bool| -> Vec<bool> {
            let mut asg = vec![false; aig.num_inputs()];
            for (i, v) in latches.iter().enumerate() {
                asg[aig.input_index(*v).unwrap()] = (count >> i) & 1 == 1;
            }
            let pi = net.primary_inputs()[0];
            asg[aig.input_index(pi).unwrap()] = en;
            asg
        };
        assert!(aig.eval(pre, &mk_asg(2, true)));
        assert!(aig.eval(pre, &mk_asg(3, false)));
        assert!(!aig.eval(pre, &mk_asg(2, false)));
        assert!(!aig.eval(pre, &mk_asg(1, true)));
    }
}
