//! The sequential network model.

use std::collections::HashMap;
use std::fmt;

use cbq_aig::{Aig, Cube, Lit, Var};

/// One state-holding element: an AIG input `var` holding the current
/// state bit, a next-state function `next`, and a reset value `init`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Latch {
    /// The AIG input variable carrying the current-state value.
    pub var: Var,
    /// Next-state function over latch vars and primary inputs.
    pub next: Lit,
    /// Initial (reset) value.
    pub init: bool,
}

/// A sequential circuit: primary inputs, latches, and a bad-state output.
///
/// Following the AIGER convention, the safety property is "`bad` is never
/// asserted"; a state (or trace) reaching `bad = 1` is a counterexample.
#[derive(Clone)]
pub struct Network {
    name: String,
    aig: Aig,
    inputs: Vec<Var>,
    latches: Vec<Latch>,
    bad: Lit,
}

impl Network {
    /// Starts building a network with the given name.
    pub fn builder(name: impl Into<String>) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            aig: Aig::new(),
            inputs: Vec::new(),
            latches: Vec::new(),
            next: HashMap::new(),
        }
    }

    /// The network's name (used in benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying AIG.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Mutable access to the underlying AIG (model-checking engines build
    /// pre-image and constraint logic into the same manager).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Primary (free) input variables.
    pub fn primary_inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The latches in declaration order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Latch variables in declaration order.
    pub fn latch_vars(&self) -> Vec<Var> {
        self.latches.iter().map(|l| l.var).collect()
    }

    /// The bad-state literal (property fails iff reachable).
    pub fn bad(&self) -> Lit {
        self.bad
    }

    /// Replaces the bad-state literal — the way to derive property
    /// variants of a network (strengthenings, monitor conjunctions)
    /// whose transition structure is untouched: build the new literal
    /// into [`Network::aig_mut`], then point the property at it.
    pub fn set_bad(&mut self, bad: Lit) {
        self.bad = bad;
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The initial state as a cube over latch variables.
    pub fn initial_cube(&self) -> Cube {
        Cube::new(
            self.latches
                .iter()
                .map(|l| l.var.lit().xor_sign(!l.init))
                .collect(),
        )
    }

    /// The initial state as a bit vector (latch order).
    pub fn initial_state(&self) -> Vec<bool> {
        self.latches.iter().map(|l| l.init).collect()
    }

    /// Builds the full AIG-input assignment from a latch-state vector and
    /// a primary-input vector.
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the latch/input counts.
    pub fn assignment(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        assert_eq!(state.len(), self.latches.len(), "state width mismatch");
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        let mut asg = vec![false; self.aig.num_inputs()];
        for (l, v) in self.latches.iter().zip(state) {
            asg[self.aig.input_index(l.var).expect("latch is an input")] = *v;
        }
        for (i, v) in self.inputs.iter().zip(inputs) {
            asg[self.aig.input_index(*i).expect("PI is an input")] = *v;
        }
        asg
    }

    /// One synchronous step: returns the next state and whether `bad`
    /// fired in the *current* state/input.
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, bool) {
        let asg = self.assignment(state, inputs);
        let next = self
            .latches
            .iter()
            .map(|l| self.aig.eval(l.next, &asg))
            .collect();
        let bad = self.aig.eval(self.bad, &asg);
        (next, bad)
    }

    /// The next-state definition pairs `(latch var, δ)` used by pre-image
    /// in-lining.
    pub fn next_state_defs(&self) -> Vec<(Var, Lit)> {
        self.latches.iter().map(|l| (l.var, l.next)).collect()
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network {{ name: {:?}, latches: {}, inputs: {}, ands: {} }}",
            self.name,
            self.latches.len(),
            self.inputs.len(),
            self.aig.num_ands()
        )
    }
}

/// Incremental builder for [`Network`] (see [`Network::builder`]).
///
/// ```
/// use cbq_ckt::Network;
///
/// let mut b = Network::builder("toggler");
/// let s = b.add_latch(false);
/// let next = !s.lit();
/// b.set_next(s, next);
/// let net = b.build(s.lit()); // bad once the bit is 1 — fails at step 1
/// assert_eq!(net.num_latches(), 1);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    aig: Aig,
    inputs: Vec<Var>,
    latches: Vec<(Var, bool)>,
    next: HashMap<Var, Lit>,
}

impl NetworkBuilder {
    /// Adds a state-holding element with the given reset value.
    pub fn add_latch(&mut self, init: bool) -> Var {
        let v = self.aig.add_input();
        self.latches.push((v, init));
        v
    }

    /// Adds a free primary input.
    pub fn add_input(&mut self) -> Var {
        let v = self.aig.add_input();
        self.inputs.push(v);
        v
    }

    /// Adds `n` latches with reset values from `init` (little-endian bit
    /// `i` of `init`).
    pub fn add_latch_word(&mut self, n: usize, init: u64) -> Vec<Var> {
        (0..n)
            .map(|i| self.add_latch((init >> i) & 1 != 0))
            .collect()
    }

    /// Adds `n` primary inputs.
    pub fn add_input_word(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// The AIG being built (construct gates through this).
    pub fn aig_mut(&mut self) -> &mut Aig {
        &mut self.aig
    }

    /// Sets the next-state function of `latch`.
    ///
    /// # Panics
    ///
    /// Panics if `latch` was not created by [`NetworkBuilder::add_latch`].
    pub fn set_next(&mut self, latch: Var, next: Lit) {
        assert!(
            self.latches.iter().any(|(v, _)| *v == latch),
            "set_next on unknown latch {latch:?}"
        );
        self.next.insert(latch, next);
    }

    /// Finishes the network with the given bad-state literal.
    ///
    /// # Panics
    ///
    /// Panics if any latch lacks a next-state function.
    pub fn build(self, bad: Lit) -> Network {
        let latches = self
            .latches
            .iter()
            .map(|(v, init)| Latch {
                var: *v,
                next: *self
                    .next
                    .get(v)
                    .unwrap_or_else(|| panic!("latch {v:?} has no next-state function")),
                init: *init,
            })
            .collect();
        Network {
            name: self.name,
            aig: self.aig,
            inputs: self.inputs,
            latches,
            bad,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggler() -> Network {
        let mut b = Network::builder("toggler");
        let s = b.add_latch(false);
        let n = !s.lit();
        b.set_next(s, n);
        b.build(s.lit())
    }

    #[test]
    fn step_semantics() {
        let net = toggler();
        let s0 = net.initial_state();
        let (s1, bad0) = net.step(&s0, &[]);
        assert!(!bad0);
        assert_eq!(s1, vec![true]);
        let (s2, bad1) = net.step(&s1, &[]);
        assert!(bad1);
        assert_eq!(s2, vec![false]);
    }

    #[test]
    fn initial_cube_matches_state() {
        let mut b = Network::builder("two");
        let a = b.add_latch(true);
        let c = b.add_latch(false);
        b.set_next(a, a.lit());
        b.set_next(c, c.lit());
        let net = b.build(Lit::FALSE);
        let cube = net.initial_cube();
        assert_eq!(cube.phase(a), Some(true));
        assert_eq!(cube.phase(c), Some(false));
        assert_eq!(net.initial_state(), vec![true, false]);
    }

    #[test]
    fn assignment_respects_ordinals() {
        let mut b = Network::builder("mix");
        let s = b.add_latch(false);
        let i = b.add_input();
        let and = b.aig_mut().and(s.lit(), i.lit());
        b.set_next(s, and);
        let net = b.build(Lit::FALSE);
        let (n1, _) = net.step(&[true], &[true]);
        assert_eq!(n1, vec![true]);
        let (n2, _) = net.step(&[true], &[false]);
        assert_eq!(n2, vec![false]);
    }

    #[test]
    #[should_panic(expected = "no next-state function")]
    fn missing_next_panics() {
        let mut b = Network::builder("broken");
        let _ = b.add_latch(false);
        let _ = b.build(Lit::FALSE);
    }

    #[test]
    #[should_panic(expected = "unknown latch")]
    fn set_next_on_input_panics() {
        let mut b = Network::builder("broken");
        let i = b.add_input();
        b.set_next(i, Lit::TRUE);
    }
}
