//! AIG node representation.

use crate::lit::Lit;

/// A node in an [`Aig`](crate::Aig).
///
/// The manager stores exactly one [`Node::Const`] (at variable 0), one
/// [`Node::Input`] per primary input, and structurally hashed
/// [`Node::And`] gates whose fanins satisfy `f0 >= f1` (by literal code) —
/// the "semi-canonicity" the paper's merge phase exploits.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant-false node (variable 0).
    Const,
    /// A primary input; `index` is its ordinal among inputs.
    Input {
        /// Ordinal of this input in creation order.
        index: u32,
    },
    /// A two-input AND gate over possibly complemented edges.
    And {
        /// First fanin; `f0.code() >= f1.code()` is an invariant.
        f0: Lit,
        /// Second fanin.
        f1: Lit,
    },
}

impl Node {
    /// Whether this node is an AND gate.
    pub fn is_and(&self) -> bool {
        matches!(self, Node::And { .. })
    }

    /// Whether this node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// The fanins of an AND node, if any.
    pub fn fanins(&self) -> Option<(Lit, Lit)> {
        match *self {
            Node::And { f0, f1 } => Some((f0, f1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn kind_predicates() {
        let a = Var::from_index(1).lit();
        let b = Var::from_index(2).lit();
        assert!(Node::And { f0: b, f1: a }.is_and());
        assert!(!Node::Const.is_and());
        assert!(Node::Input { index: 0 }.is_input());
        assert_eq!(Node::And { f0: b, f1: a }.fanins(), Some((b, a)));
        assert_eq!(Node::Const.fanins(), None);
    }
}
