//! k-induction with simple-path strengthening (Sheeran, Singh,
//! Stålmarck — FMCAD 2000, reference [5] of the paper).
//!
//! For increasing `k`, two queries are posed on incremental SAT
//! databases:
//!
//! * **base**: a counterexample of depth `< k` exists (functional BMC
//!   unrolling from the initial state);
//! * **step**: a loop-free path of `k+1` states with the first `k` all
//!   safe but the last one bad (unrolled from a *free* symbolic state).
//!
//! If the base is UNSAT up to `k-1` and the step is UNSAT, the property
//! holds. Simple-path constraints (pairwise state disequality) make the
//! method complete: `k` need never exceed the recurrence diameter.

use std::sync::Arc;

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::Network;
use cbq_cnf::AigCnf;
use cbq_sat::{SatLit, SatResult};

use crate::bmc::Unroller;
use crate::bus::{assume_cube_at, BusClientStats, BusCursor, LatchCube, LemmaBus, LemmaValidator};
use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// The k-induction engine.
#[derive(Clone, Debug)]
pub struct KInduction {
    /// Maximum induction depth to attempt.
    pub max_k: usize,
    /// Add pairwise state-disequality (simple path) constraints — needed
    /// for completeness, occasionally disabled for benchmarking.
    pub simple_path: bool,
    /// The parallel portfolio's [`LemmaBus`]. Admitted IC3 cubes (each
    /// re-validated by a private [`LemmaValidator`]) strengthen both
    /// unrollings: redundant-but-pruning clauses in the base case, and
    /// genuine invariant strengthening at every frame of the step case —
    /// the classical way k-induction benefits from reachability lemmas.
    pub bus: Option<Arc<LemmaBus>>,
}

impl Default for KInduction {
    fn default() -> KInduction {
        KInduction {
            max_k: 64,
            simple_path: true,
            bus: None,
        }
    }
}

/// Statistics of a [`KInduction`] run.
#[derive(Clone, Debug, Default)]
pub struct KInductionStats {
    /// The `k` at which the run concluded.
    pub k: usize,
    /// SAT checks in the base databases.
    pub base_checks: u64,
    /// SAT checks in the step database (plus bus-lemma validation).
    pub step_checks: u64,
    /// Total AIG nodes across both unrollings.
    pub unrolled_nodes: usize,
    /// Lemma-bus traffic (cubes admitted/rejected after re-validation).
    pub bus: BusClientStats,
}

/// The step-case unrolling: frames from a free symbolic initial state.
struct StepUnroller {
    aig: Aig,
    cnf: AigCnf,
    /// Free variables of state 0, then computed state functions.
    states: Vec<Vec<Lit>>,
    bads: Vec<Lit>,
}

impl StepUnroller {
    fn new(net: &Network) -> StepUnroller {
        let mut aig = net.aig().clone();
        let s0: Vec<Lit> = net
            .latches()
            .iter()
            .map(|_| aig.add_input().lit())
            .collect();
        StepUnroller {
            aig,
            cnf: AigCnf::new(),
            states: vec![s0],
            bads: Vec::new(),
        }
    }

    /// Ensures frames `0..=t` exist; returns `bad` at frame `t`.
    fn bad_at(&mut self, net: &Network, t: usize) -> Lit {
        while self.bads.len() <= t {
            let frame = self.bads.len();
            let cur = self.states[frame].clone();
            let fresh: Vec<Var> = net
                .primary_inputs()
                .iter()
                .map(|_| self.aig.add_input())
                .collect();
            let mut subst: Vec<(Var, Lit)> = net
                .latches()
                .iter()
                .zip(&cur)
                .map(|(l, s)| (l.var, *s))
                .collect();
            subst.extend(
                net.primary_inputs()
                    .iter()
                    .zip(&fresh)
                    .map(|(pi, f)| (*pi, f.lit())),
            );
            let bad_t = self.aig.compose(net.bad(), &subst);
            let next: Vec<Lit> = net
                .latches()
                .iter()
                .map(|l| self.aig.compose(l.next, &subst))
                .collect();
            self.bads.push(bad_t);
            self.states.push(next);
        }
        self.bads[t]
    }

    /// Asserts that states `a` and `b` differ (simple-path constraint).
    fn assert_distinct(&mut self, a: usize, b: usize) {
        let diffs: Vec<Lit> = self.states[a]
            .iter()
            .zip(&self.states[b])
            .map(|(x, y)| self.aig.xor(*x, *y))
            .collect();
        let any = self.aig.or_many(&diffs);
        self.cnf.assert_lit(&self.aig, any);
    }
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: KInductionStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "kind",
        iterations: stats.k,
        peak_nodes: stats.unrolled_nodes,
        sat_checks: stats.base_checks + stats.step_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for KInduction {
    fn name(&self) -> &'static str {
        "kind"
    }

    /// Runs k-induction on `net` within `budget` (`max_steps` caps `k`).
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = KInductionStats::default();
        let mut base = Unroller::new(net);
        let mut step = StepUnroller::new(net);
        let mut step_pairs_done = 0usize;
        // Bus consumer state: one validator feeds both unrollings, each
        // holding its instantiated lemma clauses under its own guard.
        let mut validator = self.bus.as_ref().map(|_| LemmaValidator::new(net));
        let base_guard = validator.as_ref().map(|_| base.cnf.new_guard());
        let step_guard = validator.as_ref().map(|_| step.cnf.new_guard());
        let base_extra: Vec<SatLit> = base_guard.iter().copied().collect();
        let step_extra: Vec<SatLit> = step_guard.iter().copied().collect();
        let mut cursor = BusCursor::default();
        let mut admitted: Vec<LatchCube> = Vec::new();
        let mut pending: Vec<LatchCube> = Vec::new();
        let mut tagged_rejected: u64 = 0;
        for k in 1..=self.max_k {
            let nodes = base.aig.num_nodes() + step.aig.num_nodes();
            let checks = base.cnf.stats().checks + step.cnf.stats().checks;
            if let Some(bounded) = meter.exceeded(k - 1, nodes, checks) {
                return self.conclude(bounded, stats, &base, &step, &validator, &meter);
            }
            stats.k = k;
            if let (Some(bus), Some(v), Some(bg), Some(sg)) = (
                self.bus.as_deref(),
                validator.as_mut(),
                base_guard,
                step_guard,
            ) {
                base.bad_at(net, k - 1);
                step.bad_at(net, k);
                // Previously admitted lemmas reach this iteration's new
                // frames (base frame k-1, step frame k); the base's
                // frame 0 is constants, the step's frame 0 is the free
                // state covered at admission time.
                for cube in &admitted {
                    if k >= 2 {
                        assume_cube_at(&mut base.cnf, &base.aig, bg, &base.states[k - 1], cube);
                    }
                    assume_cube_at(&mut step.cnf, &step.aig, sg, &step.states[k], cube);
                }
                // Fresh publications cover every existing frame. Batch
                // admission finds the maximal inductive subset — IC3's
                // frame clauses usually hold only by mutual induction —
                // and earlier rejects are retried alongside each fresh
                // batch, since a set that failed mid-convergence can
                // become inductive once its missing siblings arrive.
                let fresh = bus.cubes_since(&mut cursor);
                if !fresh.is_empty() {
                    // Tagged (already inductive) publications take the
                    // sequential fast path; a fast-path rejection is
                    // final, while pool cubes stay pending for retries.
                    let mut tagged: Vec<LatchCube> = Vec::new();
                    for (cube, inductive) in fresh {
                        if inductive {
                            tagged.push(cube);
                        } else {
                            pending.push(cube);
                        }
                    }
                    let mut batch = v.admit_inductive(&tagged);
                    tagged_rejected += (tagged.len() - batch.len()) as u64;
                    if !pending.is_empty() {
                        let from_pool = v.admit_batch(&pending);
                        pending.retain(|c| !from_pool.contains(c));
                        batch.extend(from_pool);
                    }
                    stats.bus.lemmas_admitted += batch.len() as u64;
                    stats.bus.lemmas_rejected = tagged_rejected + pending.len() as u64;
                    for norm in batch {
                        for t in 1..k {
                            assume_cube_at(&mut base.cnf, &base.aig, bg, &base.states[t], &norm);
                        }
                        for t in 0..=k {
                            assume_cube_at(&mut step.cnf, &step.aig, sg, &step.states[t], &norm);
                        }
                        admitted.push(norm);
                    }
                }
            }
            // Base: any counterexample at depth k-1?
            match base.check_depth_assuming(net, k - 1, &base_extra) {
                SatResult::Sat => {
                    let trace = base.extract_trace(net, k - 1);
                    return self.conclude(
                        Verdict::Unsafe { trace },
                        stats,
                        &base,
                        &step,
                        &validator,
                        &meter,
                    );
                }
                SatResult::Unknown => {
                    let verdict = Verdict::Unknown {
                        reason: format!("base budget at k={k}"),
                    };
                    return self.conclude(verdict, stats, &base, &step, &validator, &meter);
                }
                SatResult::Unsat => {}
            }
            // Step: ¬bad₀ … ¬bad_{k-1} ∧ bad_k over a loop-free path.
            let bad_k = step.bad_at(net, k);
            if self.simple_path {
                // Add the new disequality constraints for state k.
                for a in 0..k {
                    step.assert_distinct(a, k);
                    step_pairs_done += 1;
                }
            }
            let mut assumptions: Vec<Lit> = (0..k).map(|t| !step.bads[t]).collect();
            assumptions.push(bad_k);
            match step
                .cnf
                .solve_under_assuming(&step.aig, &assumptions, &step_extra)
            {
                SatResult::Unsat => {
                    let verdict = Verdict::Safe { iterations: k };
                    return self.conclude(verdict, stats, &base, &step, &validator, &meter);
                }
                SatResult::Unknown => {
                    let verdict = Verdict::Unknown {
                        reason: format!("step budget at k={k}"),
                    };
                    return self.conclude(verdict, stats, &base, &step, &validator, &meter);
                }
                SatResult::Sat => {}
            }
            let _ = step_pairs_done;
        }
        let verdict = Verdict::Unknown {
            reason: format!("no proof or counterexample up to k={}", self.max_k),
        };
        self.conclude(verdict, stats, &base, &step, &validator, &meter)
    }
}

impl KInduction {
    /// Fills the solver/unrolling counters and closes the run record.
    fn conclude(
        &self,
        verdict: Verdict,
        mut stats: KInductionStats,
        base: &Unroller,
        step: &StepUnroller,
        validator: &Option<LemmaValidator>,
        meter: &Meter,
    ) -> McRun {
        stats.base_checks = base.cnf.stats().checks;
        stats.step_checks = step.cnf.stats().checks + validator.as_ref().map_or(0, |v| v.checks());
        stats.unrolled_nodes = base.aig.num_nodes() + step.aig.num_nodes();
        finish(verdict, stats, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn proves_inductive_properties_quickly() {
        // The Gray-counter parity invariant is 1-inductive.
        let run = KInduction::default().check(&generators::gray_counter(5), &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert!(iterations <= 2, "k = {iterations}"),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn proves_token_ring_with_simple_paths() {
        let run = KInduction::default().check(&generators::token_ring(5), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
    }

    #[test]
    fn proves_bounded_counter() {
        let run = KInduction {
            max_k: 24,
            simple_path: true,
            ..KInduction::default()
        }
        .check(&generators::bounded_counter(4, 9), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
    }

    #[test]
    fn finds_counterexamples_via_base_case() {
        let net = generators::mutex_bug();
        let run = KInduction::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => {
                assert!(trace.validates(&net));
                assert_eq!(trace.len(), 3); // depth 2 + the firing step
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    /// A 4-bit counter wrapping at 8 with `bad = (count == 13)`: the bad
    /// state has an unreachable backward chain 8 → 9 → … → 13, so plain
    /// induction needs k ≈ 6 to close.
    fn deep_unreachable() -> cbq_ckt::Network {
        let mut b = cbq_ckt::Network::builder("deep-unreachable");
        let s = (0..4).map(|_| b.add_latch(false)).collect::<Vec<_>>();
        let aig = b.aig_mut();
        let cur: Vec<cbq_aig::Lit> = s.iter().map(|v| v.lit()).collect();
        // increment
        let mut carry = cbq_aig::Lit::TRUE;
        let mut inc = Vec::new();
        for &w in &cur {
            inc.push(aig.xor(w, carry));
            carry = aig.and(w, carry);
        }
        // wrap at 7: next = (count == 7) ? 0 : count + 1
        let at7 = {
            let t0 = aig.and(cur[0], cur[1]);
            let t1 = aig.and(t0, cur[2]);
            aig.and(t1, !cur[3])
        };
        let next: Vec<cbq_aig::Lit> = inc.iter().map(|l| aig.and(*l, !at7)).collect();
        // bad: count == 13 (0b1101)
        let bad = {
            let t0 = aig.and(cur[0], !cur[1]);
            let t1 = aig.and(t0, cur[2]);
            aig.and(t1, cur[3])
        };
        for (v, nx) in s.iter().zip(next) {
            b.set_next(*v, nx);
        }
        b.build(bad)
    }

    #[test]
    fn without_simple_path_deep_chain_needs_large_k() {
        let run = KInduction {
            max_k: 3,
            simple_path: false,
            ..KInduction::default()
        }
        .check(&deep_unreachable(), &Budget::unlimited());
        assert!(
            matches!(run.verdict, Verdict::Unknown { .. }),
            "got {}",
            run.verdict
        );
        // With enough depth it closes even without simple paths (the
        // chain is acyclic), and the circuit really is safe.
        let run2 = KInduction {
            max_k: 10,
            simple_path: false,
            ..KInduction::default()
        }
        .check(&deep_unreachable(), &Budget::unlimited());
        assert!(run2.verdict.is_safe(), "got {}", run2.verdict);
        assert_eq!(
            crate::explicit::shortest_cex_depth(&deep_unreachable(), 8, 1 << 12),
            None
        );
    }

    #[test]
    fn counterexample_length_matches_bmc() {
        let net = generators::shift_ones(3);
        let ind = KInduction::default().check(&net, &Budget::unlimited());
        let bmc = crate::bmc::Bmc::default().check(&net, &Budget::unlimited());
        assert_eq!(
            ind.verdict.trace().map(cbq_ckt::Trace::len),
            bmc.verdict.trace().map(cbq_ckt::Trace::len)
        );
    }

    #[test]
    fn consumes_prepublished_bus_lemmas() {
        // A genuine invariant on the ring (the all-zero token-loss state
        // is unreachable and individually inductive) published before
        // the run: k-induction must admit it and still prove safety; a
        // junk cube on the same bus must be rejected without touching
        // the verdict.
        let bus = Arc::new(LemmaBus::new());
        bus.publish_cube(vec![
            (0, false),
            (1, false),
            (2, false),
            (3, false),
            (4, false),
        ]);
        bus.publish_cube(vec![(0, true), (1, true)]); // unreachable but not inductive
        let run = KInduction {
            bus: Some(bus),
            ..KInduction::default()
        }
        .check(&generators::token_ring(5), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let d = run.detail::<KInductionStats>().expect("stats");
        assert_eq!(d.bus.lemmas_admitted, 1, "stats: {d:?}");
        assert_eq!(d.bus.lemmas_rejected, 1, "stats: {d:?}");
    }
}
