//! The CDCL solver.

use crate::types::{Lbool, SatLit, SatResult, SatVar};

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<SatLit>,
    activity: f64,
    learnt: bool,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: usize,
    blocker: SatLit,
}

/// Aggregate counters exposed by [`Solver::stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted: u64,
    /// Number of `solve`/`solve_with` calls.
    pub solves: u64,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESTART_BASE: u64 = 100;

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate-level documentation](crate) for an overview and example.
/// The solver is fully incremental: clauses may be added between calls to
/// [`Solver::solve`]/[`Solver::solve_with`], and everything learnt in one
/// call benefits later calls — the property the paper's factorised
/// SAT-merge depends on.
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Lbool>,
    phase: Vec<bool>,
    reason: Vec<Option<usize>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    heap: Vec<u32>,
    heap_pos: Vec<i32>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<SatLit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    ok: bool,
    num_learnts: usize,
    max_learnts: f64,
    conflict_budget: Option<u64>,
    failed: Vec<SatLit>,
    model: Vec<Lbool>,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            activity: Vec::new(),
            heap: Vec::new(),
            heap_pos: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            ok: true,
            num_learnts: 0,
            max_learnts: 4000.0,
            conflict_budget: None,
            failed: Vec::new(),
            model: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar::from_index(self.assigns.len());
        self.assigns.push(Lbool::Undef);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.heap_pos.push(-1);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_insert(v.0);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt) clauses added so far, minus any that
    /// were satisfied at level 0 on addition.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt).count()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Sets (or clears) the per-call conflict budget. A call that exceeds
    /// it returns [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Whether the clause database has been proven unsatisfiable outright.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    fn lit_value(&self, l: SatLit) -> Lbool {
        let a = self.assigns[l.var().index()];
        if l.is_negative() {
            a.negate()
        } else {
            a
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Returns `false` if the database became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (internal use only) or if a literal
    /// names an unknown variable.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut c: Vec<SatLit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l:?}");
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                Lbool::True => return true, // already satisfied
                Lbool::False => {}          // drop falsified literal
                Lbool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<SatLit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        let w0 = lits[0];
        let w1 = lits[1];
        self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
        self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.num_learnts += 1;
            self.stats.learnts = self.num_learnts as u64;
        }
        self.clauses.push(Clause {
            lits,
            activity: 0.0,
            learnt,
        });
        cref
    }

    fn unchecked_enqueue(&mut self, l: SatLit, reason: Option<usize>) {
        debug_assert_eq!(self.lit_value(l), Lbool::Undef);
        let v = l.var().index();
        self.assigns[v] = Lbool::from_bool(!l.is_negative());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause reference, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = !p;
            let mut ws = std::mem::take(&mut self.watches[falsified.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == Lbool::True {
                    i += 1;
                    continue;
                }
                // Normalise: falsified literal at position 1.
                // Normalise: falsified literal at position 1.
                let first = {
                    let clause = &mut self.clauses[w.cref];
                    if clause.lits[0] == falsified {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], falsified, "stale watcher");
                    clause.lits[0]
                };
                // If the other watched literal is already true the clause is
                // satisfied; this must be decided *before* moving watches.
                if self.lit_value(first) == Lbool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                let found_new = {
                    let clause = &mut self.clauses[w.cref];
                    let mut found = None;
                    for k in 2..clause.lits.len() {
                        let l = clause.lits[k];
                        let val = {
                            let a = self.assigns[l.var().index()];
                            if l.is_negative() {
                                a.negate()
                            } else {
                                a
                            }
                        };
                        if val != Lbool::False {
                            clause.lits.swap(1, k);
                            found = Some(l);
                            break;
                        }
                    }
                    found
                };
                if let Some(l) = found_new {
                    // Move watch to l.
                    self.watches[l.code()].push(Watcher {
                        cref: w.cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue;
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == Lbool::False {
                    // Conflict: restore the remaining watchers and bail.
                    self.watches[falsified.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(w.cref);
                }
                self.unchecked_enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[falsified.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v] >= 0 {
            self.heap_up(self.heap_pos[v] as usize);
        }
    }

    fn bump_clause(&mut self, cref: usize) {
        let c = &mut self.clauses[cref];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: usize) -> (Vec<SatLit>, usize) {
        let mut learnt: Vec<SatLit> = vec![SatLit::from_code(0)]; // placeholder
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(confl);
            let lits: Vec<SatLit> = self.clauses[confl].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in &lits[skip..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] as usize >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.unwrap();

        // Cheap clause minimisation: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        for &q in &learnt[1..] {
            let keep = match self.reason[q.var().index()] {
                None => true,
                Some(r) => {
                    let lits = &self.clauses[r].lits;
                    !lits[1..]
                        .iter()
                        .all(|&l| self.seen[l.var().index()] || self.level[l.var().index()] == 0)
                }
            };
            if keep {
                minimized.push(q);
            }
        }
        // Clear the seen flags of the kept tail.
        for &q in &learnt[1..] {
            self.seen[q.var().index()] = false;
        }
        let learnt = minimized;

        // Backtrack level: highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            self.level[learnt[max_i].var().index()] as usize
        };
        let mut learnt = learnt;
        if learnt.len() > 1 {
            // Put a literal of the backtrack level at position 1 (second watch).
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
        }
        (learnt, bt)
    }

    /// Computes the subset of assumptions responsible for falsifying the
    /// assumption `p`; stores the failed assumptions (including `p`) in
    /// `self.failed`.
    fn analyze_final(&mut self, p: SatLit) {
        self.failed.clear();
        self.failed.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason[v] {
                None => {
                    if self.level[v] > 0 {
                        // `q` is an assumption pseudo-decision on the trail.
                        self.failed.push(q);
                    }
                }
                Some(r) => {
                    let lits = self.clauses[r].lits.clone();
                    for l in &lits[1..] {
                        if self.level[l.var().index()] > 0 {
                            self.seen[l.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn backtrack(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.phase[v] = !l.is_negative();
            self.assigns[v] = Lbool::Undef;
            self.reason[v] = None;
            if self.heap_pos[v] < 0 {
                self.heap_insert(v as u32);
            }
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target);
        self.qhead = bound;
    }

    fn pick_branch_var(&mut self) -> Option<SatVar> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v as usize] == Lbool::Undef {
                return Some(SatVar(v));
            }
        }
        None
    }

    /// Reduces the learnt-clause database, keeping the most active half.
    /// Reasons of current assignments and binary clauses are protected.
    fn reduce_db(&mut self) {
        let locked: Vec<bool> = {
            let mut locked = vec![false; self.clauses.len()];
            for v in 0..self.num_vars() {
                if self.assigns[v] != Lbool::Undef {
                    if let Some(r) = self.reason[v] {
                        locked[r] = true;
                    }
                }
            }
            locked
        };
        let mut learnt_refs: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && !locked[i] && self.clauses[i].lits.len() > 2)
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let to_delete: std::collections::HashSet<usize> = learnt_refs[..learnt_refs.len() / 2]
            .iter()
            .copied()
            .collect();
        if to_delete.is_empty() {
            return;
        }
        // Compact the arena, remapping crefs in reasons and watches.
        let mut remap: Vec<Option<usize>> = vec![None; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len() - to_delete.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if to_delete.contains(&i) {
                self.num_learnts -= 1;
                self.stats.deleted += 1;
                continue;
            }
            remap[i] = Some(new_clauses.len());
            new_clauses.push(c);
        }
        self.clauses = new_clauses;
        for r in &mut self.reason {
            if let Some(old) = *r {
                *r = remap[old];
                debug_assert!(r.is_some(), "deleted a locked clause");
            }
        }
        for wl in &mut self.watches {
            wl.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            let w0 = c.lits[0];
            let w1 = c.lits[1];
            self.watches[w0.code()].push(Watcher {
                cref: i,
                blocker: w1,
            });
            self.watches[w1.code()].push(Watcher {
                cref: i,
                blocker: w0,
            });
        }
        self.stats.learnts = self.num_learnts as u64;
    }

    /// Solves the current database with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions`. On [`SatResult::Unsat`],
    /// [`Solver::failed_assumptions`] holds a subset of the assumptions
    /// sufficient for unsatisfiability.
    pub fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.stats.solves += 1;
        self.failed.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        debug_assert_eq!(self.decision_level(), 0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let budget_start = self.stats.conflicts;
        let mut restarts = 0u64;
        loop {
            let limit = RESTART_BASE * luby(2, restarts);
            match self.search(limit, assumptions, budget_start) {
                Some(r) => {
                    self.backtrack(0);
                    return r;
                }
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[SatLit],
        budget_start: u64,
    ) -> Option<SatResult> {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SatResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                #[cfg(test)]
                self.check_watches_dbg("after-analyze-backtrack");
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_clause(learnt.clone(), true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                #[cfg(test)]
                self.check_watches_dbg("after-attach-learnt");
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.backtrack(0);
                        return Some(SatResult::Unknown);
                    }
                }
            } else {
                if local_conflicts >= conflict_limit {
                    self.backtrack(0);
                    return None; // restart
                }
                if self.num_learnts as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                    #[cfg(test)]
                    self.check_watches_dbg("after-reduce-db");
                }
                // Place assumptions as pseudo-decisions, then branch.
                let mut decided = false;
                while self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        Lbool::True => {
                            self.trail_lim.push(self.trail.len());
                        }
                        Lbool::False => {
                            self.analyze_final(p);
                            return Some(SatResult::Unsat);
                        }
                        Lbool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                            decided = true;
                            break;
                        }
                    }
                }
                if decided {
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        self.model = self.assigns.clone();
                        return Some(SatResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let l = v.lit(self.phase[v.index()]);
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }

    /// The model value of `v` after a [`SatResult::Sat`] answer.
    ///
    /// Returns `None` for variables the model leaves unconstrained or if no
    /// model is available.
    pub fn value(&self, v: SatVar) -> Option<bool> {
        self.model.get(v.index()).and_then(|l| l.to_bool())
    }

    /// The model value of a literal after a [`SatResult::Sat`] answer.
    pub fn value_lit(&self, l: SatLit) -> Option<bool> {
        self.value(l.var()).map(|b| b ^ l.is_negative())
    }

    /// After an [`SatResult::Unsat`] answer from [`Solver::solve_with`]:
    /// a subset of the assumptions sufficient for unsatisfiability
    /// (empty if the database alone is unsatisfiable).
    pub fn failed_assumptions(&self) -> &[SatLit] {
        &self.failed
    }

    // ------------------------------------------------------------------
    // Indexed max-heap ordered by VSIDS activity.
    // ------------------------------------------------------------------

    fn heap_less(&self, a: u32, b: u32) -> bool {
        self.activity[a as usize] > self.activity[b as usize]
    }

    fn heap_insert(&mut self, v: u32) {
        debug_assert!(self.heap_pos[v as usize] < 0);
        self.heap_pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().unwrap();
        self.heap_pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_up(&mut self, mut i: usize) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(v, self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                self.heap_pos[self.heap[i] as usize] = i as i32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as i32;
    }

    fn heap_down(&mut self, mut i: usize) {
        let v = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[l]) {
                r
            } else {
                l
            };
            if self.heap_less(self.heap[child], v) {
                self.heap[i] = self.heap[child];
                self.heap_pos[self.heap[i] as usize] = i as i32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.heap_pos[v as usize] = i as i32;
    }
}

/// The reluctant-doubling (Luby) sequence scaled by powers of `y`:
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
fn luby(y: u64, mut x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    // The pigeonhole constructions read clearest with explicit indices.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<SatVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[v[0].neg()]));
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        let _ = vars(&mut s, 3);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn tautology_is_skipped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos(), v[0].neg()]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        s.add_clause(&[v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for x in v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn pigeonhole_two_in_one_is_unsat() {
        // 2 pigeons, 1 hole.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[1].pos()]);
        s.add_clause(&[v[0].neg(), v[1].neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_php43_is_unsat() {
        // 4 pigeons in 3 holes: forces real conflict analysis.
        let mut s = Solver::new();
        let p = 4;
        let h = 3;
        let v: Vec<Vec<SatVar>> = (0..p).map(|_| vars(&mut s, h)).collect();
        for i in 0..p {
            let clause: Vec<SatLit> = (0..h).map(|j| v[i][j].pos()).collect();
            s.add_clause(&clause);
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in (i1 + 1)..p {
                    s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_non_destructive() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve_with(&[v[0].neg(), v[1].neg()]), SatResult::Unsat);
        assert!(!s.failed_assumptions().is_empty());
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with(&[v[0].neg()]), SatResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn failed_assumptions_are_a_core() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].neg(), v[1].neg()]);
        // v2 is irrelevant to the conflict.
        assert_eq!(
            s.solve_with(&[v[2].pos(), v[0].pos(), v[1].pos()]),
            SatResult::Unsat
        );
        let core = s.failed_assumptions();
        assert!(core.iter().all(|l| l.var() != v[2]));
        assert!(!core.is_empty());
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard instance with a budget of 1 conflict.
        let mut s = Solver::new();
        let p = 6;
        let h = 5;
        let v: Vec<Vec<SatVar>> = (0..p).map(|_| vars(&mut s, h)).collect();
        for i in 0..p {
            let clause: Vec<SatLit> = (0..h).map(|j| v[i][j].pos()).collect();
            s.add_clause(&clause);
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in (i1 + 1)..p {
                    s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].pos(), v[1].pos(), v[2].pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        s.add_clause(&[v[2].neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(2, i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn model_respects_all_clauses() {
        // Random-ish 3-SAT instance, verified against the model.
        let mut s = Solver::new();
        let v = vars(&mut s, 8);
        let clauses: Vec<Vec<SatLit>> = vec![
            vec![v[0].pos(), v[1].neg(), v[2].pos()],
            vec![v[3].neg(), v[4].pos(), v[5].neg()],
            vec![v[6].pos(), v[7].pos(), v[0].neg()],
            vec![v[1].pos(), v[3].pos(), v[5].pos()],
            vec![v[2].neg(), v[4].neg(), v[6].neg()],
            vec![v[7].neg(), v[1].pos(), v[4].pos()],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.value_lit(l) == Some(true)),
                "clause {c:?} not satisfied"
            );
        }
    }
}

#[cfg(test)]
impl Solver {
    fn check_watches_dbg(&self, tag: &str) {
        self.check_watches(tag);
    }
}

#[cfg(test)]
mod invariant_tests {
    // The pigeonhole construction reads clearest with explicit indices.
    #![allow(clippy::needless_range_loop)]

    use super::*;

    impl Solver {
        pub(super) fn check_watches(&self, tag: &str) {
            for (code, wl) in self.watches.iter().enumerate() {
                let l = SatLit::from_code(code);
                for w in wl {
                    let c = &self.clauses[w.cref];
                    assert!(
                        c.lits[0] == l || c.lits[1] == l,
                        "{tag}: stale watcher for {:?} on clause {:?}",
                        l,
                        c.lits
                    );
                }
            }
            for (i, c) in self.clauses.iter().enumerate() {
                for &wlit in &c.lits[..2] {
                    let n = self.watches[wlit.code()]
                        .iter()
                        .filter(|w| w.cref == i)
                        .count();
                    assert_eq!(
                        n, 1,
                        "{tag}: clause {i} {:?} watch count {n} on {:?}",
                        c.lits, wlit
                    );
                }
            }
        }
    }

    #[test]
    fn watch_invariant_php65() {
        let mut s = Solver::new();
        let p = 6;
        let h = 5;
        let v: Vec<Vec<SatVar>> = (0..p)
            .map(|_| (0..h).map(|_| s.new_var()).collect())
            .collect();
        for i in 0..p {
            let clause: Vec<SatLit> = (0..h).map(|j| v[i][j].pos()).collect();
            s.add_clause(&clause);
        }
        for j in 0..h {
            for i1 in 0..p {
                for i2 in (i1 + 1)..p {
                    s.add_clause(&[v[i1][j].neg(), v[i2][j].neg()]);
                }
            }
        }
        s.check_watches("after-load");
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SatResult::Unknown);
        s.check_watches("after-unknown");
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
