//! A small built-in DRAT proof checker (RUP replay plus deletions).
//!
//! Quality bar: test-grade, not competition-grade — naive unit
//! propagation to a fixpoint per proof step, no watched literals, no RAT
//! checks (the solver only emits RUP-derivable clauses). It exists so the
//! proofs emitted by [`crate::proof::ProofLog::to_drat`] can be verified
//! end to end without any external binary.

use std::collections::HashMap;

use crate::dimacs::Cnf;
use crate::types::{Lbool, SatLit, SatVar};

/// Outcome counters of a successful check.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DratStats {
    /// Addition steps verified as RUP (including the final empty clause).
    pub added: usize,
    /// Deletion steps applied.
    pub deleted: usize,
}

/// Checks a DRAT proof against the CNF it was produced for.
///
/// Every addition must be RUP with respect to the current database
/// (original clauses plus verified additions minus deletions); deletions
/// must name a clause currently in the database (set-equal after
/// canonicalisation). The check succeeds when a verified addition is the
/// empty clause.
///
/// # Errors
///
/// Reports the first failing step: a non-RUP addition, a deletion of an
/// absent clause, a malformed token, or a proof that ends without
/// deriving the empty clause.
pub fn check_drat(cnf: &Cnf, proof: &str) -> Result<DratStats, String> {
    let mut db: HashMap<Vec<SatLit>, usize> = HashMap::new();
    for c in &cnf.clauses {
        *db.entry(canonical(c)).or_insert(0) += 1;
    }
    let mut num_vars = cnf.num_vars;
    let mut stats = DratStats::default();
    let mut current: Vec<SatLit> = Vec::new();
    let mut deleting = false;
    let mut step = 0usize;
    for tok in proof.split_whitespace() {
        if tok == "d" {
            if !current.is_empty() {
                return Err(format!("step {step}: `d` inside a clause"));
            }
            deleting = true;
            continue;
        }
        let n: i64 = tok
            .parse()
            .map_err(|_| format!("step {step}: bad token `{tok}`"))?;
        if n != 0 {
            let v = n.unsigned_abs() as usize;
            num_vars = num_vars.max(v);
            current.push(SatVar::from_index(v - 1).lit(n > 0));
            continue;
        }
        step += 1;
        let clause = canonical(&std::mem::take(&mut current));
        if deleting {
            deleting = false;
            match db.get_mut(&clause) {
                Some(n) if *n > 0 => *n -= 1,
                _ => return Err(format!("step {step}: deletion of absent clause {clause:?}")),
            }
            stats.deleted += 1;
        } else {
            if !rup_conflict(&db, num_vars, &clause) {
                return Err(format!("step {step}: clause {clause:?} is not RUP"));
            }
            stats.added += 1;
            if clause.is_empty() {
                return Ok(stats);
            }
            *db.entry(clause).or_insert(0) += 1;
        }
    }
    Err("proof ends without deriving the empty clause".into())
}

fn canonical(lits: &[SatLit]) -> Vec<SatLit> {
    let mut c = lits.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

/// Whether asserting the negation of `clause` and propagating the live
/// database to a fixpoint yields a conflict (i.e. the clause is RUP).
fn rup_conflict(db: &HashMap<Vec<SatLit>, usize>, num_vars: usize, clause: &[SatLit]) -> bool {
    let mut val = vec![Lbool::Undef; num_vars];
    let assign = |val: &mut Vec<Lbool>, l: SatLit| -> bool {
        let want = Lbool::from_bool(!l.is_negative());
        match val[l.var().index()] {
            Lbool::Undef => {
                val[l.var().index()] = want;
                false
            }
            v => v != want,
        }
    };
    for &l in clause {
        if assign(&mut val, !l) {
            return true; // the clause is a tautology: trivially implied
        }
    }
    loop {
        let mut changed = false;
        for (c, &count) in db.iter() {
            if count == 0 {
                continue;
            }
            let mut unassigned: Option<SatLit> = None;
            let mut open = 0usize;
            let mut satisfied = false;
            for &l in c {
                let want = Lbool::from_bool(!l.is_negative());
                match val[l.var().index()] {
                    Lbool::Undef => {
                        open += 1;
                        unassigned = Some(l);
                    }
                    v if v == want => {
                        satisfied = true;
                        break;
                    }
                    _ => {}
                }
            }
            if satisfied {
                continue;
            }
            match open {
                0 => return true, // conflict
                1 => {
                    if assign(&mut val, unassigned.unwrap()) {
                        return true;
                    }
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs::parse_dimacs;
    use crate::proof::ProofMode;
    use crate::types::SatResult;

    #[test]
    fn accepts_a_hand_written_proof() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b)
        let cnf = parse_dimacs("p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n").unwrap();
        let stats = check_drat(&cnf, "1 0\n2 0\n0\n").unwrap();
        assert_eq!(stats.added, 3);
    }

    #[test]
    fn rejects_a_non_rup_step() {
        let cnf = parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        assert!(check_drat(&cnf, "1 0\n0\n").is_err());
    }

    #[test]
    fn rejects_deleting_an_absent_clause() {
        let cnf = parse_dimacs("p cnf 1 1\n1 0\n").unwrap();
        assert!(check_drat(&cnf, "d -1 0\n0\n").is_err());
    }

    #[test]
    fn rejects_a_proof_without_empty_clause() {
        let cnf = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(check_drat(&cnf, "").is_err());
    }

    #[test]
    fn solver_emitted_proof_checks() {
        let cnf = parse_dimacs(concat!(
            "p cnf 6 9\n",
            "1 2 0\n3 4 0\n5 6 0\n",
            "-1 -3 0\n-1 -5 0\n-3 -5 0\n",
            "-2 -4 0\n-2 -6 0\n-4 -6 0\n",
        ))
        .unwrap();
        let mut s = cnf.to_solver_with_proof(ProofMode::Drat);
        assert_eq!(s.solve(), SatResult::Unsat);
        let proof = s.drat_proof().expect("UNSAT without assumptions certifies");
        check_drat(&cnf, &proof).expect("emitted proof must check");
    }
}
