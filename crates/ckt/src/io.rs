//! Sequential ASCII AIGER (`aag`) reading and writing for [`Network`]s.

use std::collections::HashMap;

use cbq_aig::io::{parse_aag, ParseAagError};
use cbq_aig::{Lit, Node, Var};

use crate::network::Network;

/// Serialises a network as a sequential ASCII AIGER file (one output: the
/// bad-state literal).
pub fn write_network(net: &Network) -> String {
    let aig = net.aig();
    // Number: inputs first, then latches, then the needed AND gates.
    // Renumbering lives in a dense scratch indexed by `Var::index` — one
    // vector load per fanin instead of a hash probe; `UNNUMBERED` marks
    // vars outside the emitted cone (indexing one is a loud panic, where
    // the old `HashMap` lookup would also have panicked).
    const UNNUMBERED: u32 = u32::MAX;
    let mut code = vec![UNNUMBERED; aig.num_nodes()];
    code[Var::CONST.index()] = 0;
    let mut next_var = 1u32;
    for v in net.primary_inputs() {
        code[v.index()] = 2 * next_var;
        next_var += 1;
    }
    for l in net.latches() {
        code[l.var.index()] = 2 * next_var;
        next_var += 1;
    }
    let mut roots: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
    roots.push(net.bad());
    let mut and_lines = Vec::new();
    for v in aig.collect_cone(&roots) {
        if let Node::And { f0, f1 } = aig.node(v) {
            let lhs = 2 * next_var;
            next_var += 1;
            code[v.index()] = lhs;
            let c0 = code[f0.var().index()] | f0.is_complemented() as u32;
            let c1 = code[f1.var().index()] | f1.is_complemented() as u32;
            debug_assert!(c0 != UNNUMBERED && c1 != UNNUMBERED, "fanin outside cone");
            and_lines.push(format!("{lhs} {c0} {c1}"));
        }
    }
    let lit_code = |l: Lit| code[l.var().index()] | l.is_complemented() as u32;
    let mut out = format!(
        "aag {} {} {} 1 {}\n",
        next_var - 1,
        net.num_inputs(),
        net.num_latches(),
        and_lines.len()
    );
    for v in net.primary_inputs() {
        out.push_str(&format!("{}\n", code[v.index()]));
    }
    for l in net.latches() {
        out.push_str(&format!(
            "{} {} {}\n",
            code[l.var.index()],
            lit_code(l.next),
            u32::from(l.init)
        ));
    }
    out.push_str(&format!("{}\n", lit_code(net.bad())));
    for line in and_lines {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!("c\nnetwork {}\n", net.name()));
    out
}

/// Parses a sequential ASCII AIGER file into a [`Network`].
///
/// The first output becomes the bad-state literal ([`Lit::FALSE`] if the
/// file declares no outputs).
///
/// # Errors
///
/// Returns [`ParseAagError`] on malformed input or non-topological AND
/// definitions.
pub fn read_network(text: &str, name: impl Into<String>) -> Result<Network, ParseAagError> {
    let file = parse_aag(text)?;
    let mut b = Network::builder(name);
    let mut map: HashMap<u32, Lit> = HashMap::new();
    map.insert(0, Lit::FALSE);
    let mut latch_vars = Vec::new();
    for code in &file.inputs {
        let v = b.add_input();
        map.insert(code / 2, v.lit());
    }
    for (code, _, init) in &file.latches {
        let v = b.add_latch(*init);
        latch_vars.push(v);
        map.insert(code / 2, v.lit());
    }
    for (lhs, r0, r1) in &file.ands {
        let f0 = resolve(&map, *r0)?;
        let f1 = resolve(&map, *r1)?;
        let l = b.aig_mut().and(f0, f1);
        map.insert(lhs / 2, l);
    }
    for ((_, next_code, _), v) in file.latches.iter().zip(&latch_vars) {
        let next = resolve(&map, *next_code)?;
        b.set_next(*v, next);
    }
    let bad = match file.outputs.first() {
        Some(code) => resolve(&map, *code)?,
        None => Lit::FALSE,
    };
    Ok(b.build(bad))
}

fn resolve(map: &HashMap<u32, Lit>, code: u32) -> Result<Lit, ParseAagError> {
    map.get(&(code / 2))
        .map(|l| l.xor_sign(code % 2 == 1))
        .ok_or_else(|| {
            parse_aag(&format!("bad {code}")).unwrap_err() // reuse error type
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_behaviour() {
        for net in [
            generators::bounded_counter(4, 9),
            generators::token_ring_bug(4),
            generators::mutex(),
        ] {
            let text = write_network(&net);
            let back = read_network(&text, net.name()).unwrap();
            assert_eq!(back.num_latches(), net.num_latches());
            assert_eq!(back.num_inputs(), net.num_inputs());
            // Lockstep simulation for a few random-ish input sequences.
            let mut s1 = net.initial_state();
            let mut s2 = back.initial_state();
            for t in 0..20usize {
                let inputs: Vec<bool> = (0..net.num_inputs()).map(|i| (t + i) % 3 == 0).collect();
                let (n1, b1) = net.step(&s1, &inputs);
                let (n2, b2) = back.step(&s2, &inputs);
                assert_eq!(b1, b2, "bad mismatch at step {t}");
                assert_eq!(n1, n2, "state mismatch at step {t}");
                s1 = n1;
                s2 = n2;
            }
        }
    }

    #[test]
    fn roundtrip_covers_e6_generators() {
        // The dense-scratch renumbering must stay behaviour-preserving on
        // the whole E6 family, and the header must keep claiming a
        // contiguous variable range (maxvar = inputs + latches + ands):
        // AIGER readers reject gaps, so a renumbering bug that skips a
        // slot shows up here rather than in a downstream tool.
        let mut family = generators::standard_suite();
        family.extend([
            generators::bounded_counter_gap(4, 6, 12),
            generators::lfsr(5, &[0, 2]),
            generators::fifo_ctrl(2),
            generators::gray_counter(4),
        ]);
        for net in family {
            let text = write_network(&net);
            let header: Vec<usize> = text
                .lines()
                .next()
                .unwrap()
                .split_whitespace()
                .skip(1)
                .map(|t| t.parse().unwrap())
                .collect();
            let [maxvar, inputs, latches, outputs, ands] = header[..] else {
                panic!("{}: malformed header", net.name());
            };
            assert_eq!(outputs, 1, "{}", net.name());
            assert_eq!(
                maxvar,
                inputs + latches + ands,
                "{}: non-contiguous numbering",
                net.name()
            );
            let back = read_network(&text, net.name()).unwrap();
            assert_eq!(back.num_latches(), net.num_latches());
            assert_eq!(back.num_inputs(), net.num_inputs());
            let mut s1 = net.initial_state();
            let mut s2 = back.initial_state();
            for t in 0..24usize {
                let inputs: Vec<bool> = (0..net.num_inputs())
                    .map(|i| (t * 7 + i * 3) % 5 < 2)
                    .collect();
                let (n1, b1) = net.step(&s1, &inputs);
                let (n2, b2) = back.step(&s2, &inputs);
                assert_eq!(b1, b2, "{}: bad mismatch at step {t}", net.name());
                assert_eq!(n1, n2, "{}: state mismatch at step {t}", net.name());
                s1 = n1;
                s2 = n2;
            }
        }
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(read_network("not an aag", "x").is_err());
    }
}
