//! E8 / Table 5 — circuit quantification as SAT pre-image preprocessing.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::{hybrid_run, preimage_workload};
use cbq_ckt::generators;

fn bench_hybrid(c: &mut Criterion) {
    let net = generators::arbiter(8);
    let (aig0, pre, pis) = preimage_workload(&net, 1);
    let mut g = c.benchmark_group("e8-hybrid");
    g.sample_size(10);
    for frac in [0.0f64, 0.25, 0.5, 1.0] {
        g.bench_function(format!("prequant-{:.0}pct", frac * 100.0), |b| {
            b.iter(|| hybrid_run(&aig0, pre, &pis, frac))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hybrid);
criterion_main!(benches);
