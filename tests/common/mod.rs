//! Helpers shared by the integration-test crates (each crate pulls this
//! file in via `mod common;` — files in `tests/` subdirectories are not
//! compiled as test crates of their own).

use cbq::aig::sim::BitSim;
use cbq::ckt::Network;
use cbq::prelude::*;

/// Replays `trace` on the bit-parallel simulator: drive each step's full
/// input assignment through one [`BitSim`] pattern, read the next state
/// off the latch `next` literals, and report whether `bad` ever fired
/// (checking the final state under all-zero inputs, mirroring
/// `Trace::replay`). An evaluation path independent from
/// `Trace::validates`'s `Network::step`.
pub fn replays_on_sim(net: &Network, trace: &Trace) -> bool {
    let aig = net.aig();
    let mut sim = BitSim::new(aig, 1);
    let bit = |sim: &BitSim, l: Lit| sim.lit_word(l, 0) & 1 != 0;
    let mut state = net.initial_state();
    let mut fired = false;
    for step_inputs in trace.inputs() {
        let asg = net.assignment(&state, step_inputs);
        sim.set_pattern(aig, 0, &asg);
        sim.run(aig);
        fired |= bit(&sim, net.bad());
        state = net.latches().iter().map(|l| bit(&sim, l.next)).collect();
    }
    let zeros = vec![false; net.num_inputs()];
    let asg = net.assignment(&state, &zeros);
    sim.set_pattern(aig, 0, &asg);
    sim.run(aig);
    fired || bit(&sim, net.bad())
}
