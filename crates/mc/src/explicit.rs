//! Explicit-state breadth-first search — the ground-truth oracle used by
//! integration tests and property-based cross-checks on small circuits.

use std::collections::{HashMap, HashSet, VecDeque};

use cbq_ckt::{Network, Trace};

/// Exhaustive BFS over the reachable state space (all inputs per step).
///
/// Returns the shortest counterexample trace, or `None` if the bad states
/// are unreachable.
///
/// # Panics
///
/// Panics if the network has more than `max_inputs` primary inputs
/// (default sanity bound 12) or if more than `max_states` states are
/// visited.
pub fn shortest_counterexample(
    net: &Network,
    max_inputs: usize,
    max_states: usize,
) -> Option<Trace> {
    let ni = net.num_inputs();
    assert!(ni <= max_inputs, "too many inputs for explicit search");
    let mut parent: HashMap<Vec<bool>, (Vec<bool>, Vec<bool>)> = HashMap::new();
    let mut seen: HashSet<Vec<bool>> = HashSet::new();
    let mut queue = VecDeque::new();
    let init = net.initial_state();
    seen.insert(init.clone());
    queue.push_back(init);
    while let Some(state) = queue.pop_front() {
        assert!(seen.len() <= max_states, "state bound exceeded");
        for mask in 0..(1u64 << ni) {
            let inputs: Vec<bool> = (0..ni).map(|i| (mask >> i) & 1 != 0).collect();
            let (next, bad) = net.step(&state, &inputs);
            if bad {
                // Reconstruct the input sequence leading to `state`, then
                // append the firing inputs.
                let mut seq = vec![inputs];
                let mut cur = state.clone();
                while let Some((prev, step_inputs)) = parent.get(&cur) {
                    seq.push(step_inputs.clone());
                    cur = prev.clone();
                }
                seq.reverse();
                return Some(Trace::new(seq));
            }
            if seen.insert(next.clone()) {
                parent.insert(next.clone(), (state.clone(), inputs));
                queue.push_back(next);
            }
        }
    }
    None
}

/// Convenience wrapper: `Some(depth)` of the shortest counterexample.
pub fn shortest_cex_depth(net: &Network, max_inputs: usize, max_states: usize) -> Option<usize> {
    shortest_counterexample(net, max_inputs, max_states).map(|t| t.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn agrees_with_known_depths() {
        assert_eq!(
            shortest_cex_depth(&generators::counter_bug(4, 5), 8, 1 << 12),
            Some(5)
        );
        assert_eq!(
            shortest_cex_depth(&generators::token_ring(4), 8, 1 << 12),
            None
        );
    }

    #[test]
    fn returned_trace_replays() {
        let net = generators::token_ring_bug(5);
        let t = shortest_counterexample(&net, 8, 1 << 12).unwrap();
        assert!(t.validates(&net));
        assert_eq!(t.len(), 4); // depth 3 + firing step
    }
}
