//! # cbq-aig — And-Inverter Graphs for state-set manipulation
//!
//! This crate implements the *underlying structure* of the DATE 2005 paper
//! "Circuit Based Quantification: Back to State Set Manipulation within
//! Unbounded Model Checking" (Cabodi, Crivellari, Nocco, Quer): a
//! semi-canonical, structurally hashed **And-Inverter Graph** (AIG) in the
//! style of Kuehlmann, Ganai and Paruthi, *Circuit-based Boolean Reasoning*
//! (DAC 2001).
//!
//! An AIG is a DAG of two-input AND nodes whose edges may be complemented.
//! The manager ([`Aig`]) is append-only: nodes are created through
//! [`Aig::and`] (and the derived gates [`Aig::or`], [`Aig::xor`],
//! [`Aig::ite`], …), are *structurally hashed* so that no two AND nodes with
//! identical fanins exist, and are never mutated. Node indices are therefore
//! a topological order, which the simulator and all traversals exploit.
//!
//! The crate provides everything the upper layers of the reproduction need:
//!
//! * literals and variables ([`Lit`], [`Var`]) with complement bits,
//! * one- and two-level rewriting rules inside [`Aig::and`] (the AIG
//!   "semi-canonicity" the paper relies on for free merges),
//! * **cofactoring** ([`Aig::cofactor`]) and simultaneous **composition /
//!   substitution** ([`Aig::compose`]) — the engines of circuit-based
//!   quantification and of pre-image in-lining,
//! * cone extraction, support computation and garbage-collecting
//!   [`Aig::compact`],
//! * 64-way parallel random simulation ([`sim::BitSim`]) used to seed
//!   equivalence classes for sweeping,
//! * ASCII AIGER (`aag`) reading/writing ([`io`]).
//!
//! ## Example
//!
//! ```
//! use cbq_aig::{Aig, Lit};
//!
//! let mut aig = Aig::new();
//! let a = aig.add_input().lit();
//! let b = aig.add_input().lit();
//! let f = aig.xor(a, b);
//! // Quantify `b` away by hand: f|b=0 OR f|b=1 == constant true.
//! let f0 = aig.cofactor(f, b.var(), false);
//! let f1 = aig.cofactor(f, b.var(), true);
//! let q = aig.or(f0, f1);
//! assert_eq!(q, Lit::TRUE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod cube;
mod dfs;
mod lit;
mod node;
mod table;

pub mod io;
pub mod sim;

pub use crate::aig::{Aig, AigPerfCounters, AigTuning};
pub use crate::cube::{Assignment, Cube};
pub use crate::dfs::ConeStats;
pub use crate::lit::{Lit, Var};
pub use crate::node::Node;
pub use crate::table::SigClasses;
