//! Partitioned state-set integration tests: for every E6 smoke model,
//! `CircuitUmc`/`ForwardCircuitUmc` with `--partitions 1` and
//! `--partitions 4` must return identical verdicts (same fixpoint
//! iteration / same minimal counterexample depth), counterexample traces
//! must replay on the bit-parallel simulator, and repeated runs must be
//! bit-identical (index-sorted merge order, no timing dependence).

use cbq::ckt::generators;
use cbq::ckt::Network;
use cbq::mc::{
    CircuitUmcStats, ForwardCircuitUmc, ForwardCircuitUmcStats, PartitionConfig, PartitionCount,
    SplitPolicy,
};
use cbq::prelude::*;

mod common;
use common::replays_on_sim;

/// The E6-family smoke suite (small enough for exhaustive cross checks).
fn suite() -> Vec<Network> {
    vec![
        generators::bounded_counter(4, 9),
        generators::bounded_counter_gap(4, 5, 11),
        generators::gray_counter(4),
        generators::token_ring(5),
        generators::token_ring_bug(5),
        generators::arbiter(4),
        generators::mutex(),
        generators::mutex_bug(),
        generators::shift_ones(4),
        generators::counter_bug(4, 6),
    ]
}

/// Verdict comparison key: classification plus the count that must be
/// stable (fixpoint iteration or cex depth), never the concrete inputs.
fn verdict_key(v: &Verdict) -> String {
    match v {
        Verdict::Safe { iterations } => format!("safe@{iterations}"),
        Verdict::Unsafe { trace } => format!("cex@{}", trace.len()),
        other => format!("{other}"),
    }
}

fn partitioned(count: usize, split: SplitPolicy) -> PartitionConfig {
    PartitionConfig {
        split,
        ..PartitionConfig::with_count(PartitionCount::Fixed(count))
    }
}

#[test]
fn backward_partitions_1_and_4_agree_on_the_suite() {
    for net in suite() {
        let mono = CircuitUmc {
            partition: partitioned(1, SplitPolicy::LatchCofactor),
            ..CircuitUmc::default()
        }
        .check(&net, &Budget::unlimited());
        let key = verdict_key(&mono.verdict);
        for split in [SplitPolicy::LatchCofactor, SplitPolicy::FrontierOrigin] {
            let part = CircuitUmc {
                partition: partitioned(4, split),
                ..CircuitUmc::default()
            }
            .check(&net, &Budget::unlimited());
            assert_eq!(
                key,
                verdict_key(&part.verdict),
                "circuit on {} ({split:?}): partitions changed the verdict",
                net.name()
            );
            if let Verdict::Unsafe { trace } = &part.verdict {
                assert!(
                    trace.validates(&net),
                    "circuit on {}: partitioned trace does not replay",
                    net.name()
                );
                assert!(
                    replays_on_sim(&net, trace),
                    "circuit on {}: partitioned trace rejected by BitSim",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn forward_partitions_1_and_4_agree_on_the_suite() {
    for net in suite() {
        let mono = ForwardCircuitUmc {
            partition: partitioned(1, SplitPolicy::LatchCofactor),
            ..ForwardCircuitUmc::default()
        }
        .check(&net, &Budget::unlimited());
        let key = verdict_key(&mono.verdict);
        let part = ForwardCircuitUmc {
            partition: partitioned(4, SplitPolicy::LatchCofactor),
            ..ForwardCircuitUmc::default()
        }
        .check(&net, &Budget::unlimited());
        assert_eq!(
            key,
            verdict_key(&part.verdict),
            "forward on {}: partitions changed the verdict",
            net.name()
        );
        if let Verdict::Unsafe { trace } = &part.verdict {
            assert!(
                trace.validates(&net),
                "forward on {}: partitioned trace does not replay",
                net.name()
            );
            assert!(
                replays_on_sim(&net, trace),
                "forward on {}: partitioned trace rejected by BitSim",
                net.name()
            );
        }
    }
}

/// Determinism guard: the merge order is index-sorted, never
/// thread-completion-ordered, so two runs of the same model produce
/// identical frontier-size and partition trajectories (and verdicts).
#[test]
fn partitioned_runs_are_deterministic() {
    for net in [
        generators::bounded_counter_gap(4, 5, 11),
        generators::gray_counter(4),
        generators::token_ring_bug(5),
    ] {
        let engine = CircuitUmc {
            partition: partitioned(4, SplitPolicy::LatchCofactor),
            ..CircuitUmc::default()
        };
        let a = engine.check(&net, &Budget::unlimited());
        let b = engine.check(&net, &Budget::unlimited());
        assert_eq!(
            verdict_key(&a.verdict),
            verdict_key(&b.verdict),
            "{}: verdict differs between identical runs",
            net.name()
        );
        let da = a.detail::<CircuitUmcStats>().expect("stats");
        let db = b.detail::<CircuitUmcStats>().expect("stats");
        assert_eq!(
            da.frontier_sizes,
            db.frontier_sizes,
            "{}: frontier trajectory differs between identical runs",
            net.name()
        );
        assert_eq!(
            da.partitions,
            db.partitions,
            "{}: partition trajectory differs between identical runs",
            net.name()
        );

        let fwd = ForwardCircuitUmc {
            partition: partitioned(4, SplitPolicy::LatchCofactor),
            ..ForwardCircuitUmc::default()
        };
        let fa = fwd.check(&net, &Budget::unlimited());
        let fb = fwd.check(&net, &Budget::unlimited());
        let dfa = fa.detail::<ForwardCircuitUmcStats>().expect("stats");
        let dfb = fb.detail::<ForwardCircuitUmcStats>().expect("stats");
        assert_eq!(dfa.frontier_sizes, dfb.frontier_sizes);
        assert_eq!(dfa.partitions, dfb.partitions);
    }
}

/// The partitioned representation actually bounds per-partition size:
/// on redundancy-heavy models the largest per-partition state cone stays
/// strictly below the monolithic reached-set representation.
#[test]
fn partition_cones_stay_below_the_monolithic_reached_set() {
    let mut wins = 0;
    for net in [
        generators::bounded_counter_gap(4, 5, 11),
        generators::gray_counter(4),
        generators::token_ring(5),
        generators::bounded_counter(4, 9),
    ] {
        let mono = CircuitUmc {
            sweep: None,
            ..CircuitUmc::default()
        }
        .check(&net, &Budget::unlimited());
        let part = CircuitUmc {
            sweep: None,
            partition: partitioned(4, SplitPolicy::LatchCofactor),
            ..CircuitUmc::default()
        }
        .check(&net, &Budget::unlimited());
        let dm = mono.detail::<CircuitUmcStats>().expect("stats");
        let dp = part.detail::<CircuitUmcStats>().expect("stats");
        if dp.partitions.max_cone < dm.reached_size {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "expected the max partition cone to beat the monolithic reached \
         set on at least 2 models, got {wins}"
    );
}
