//! # cbq-core — circuit-based quantifier elimination
//!
//! The primary contribution of the DATE 2005 paper, reproduced in full.
//! Given a function *F* represented as an AIG and a variable *v*,
//! existential quantification is computed by cofactoring:
//!
//! ```text
//! ∃v. F  =  F|v=1  ∨  F|v=0
//! ```
//!
//! which in the worst case doubles the circuit — so each quantification is
//! followed by the two phases of the paper:
//!
//! 1. a **merge phase** ([`cbq_cec::sweep`]) that maximises sub-circuit
//!    sharing between the two cofactors via structural hashing, BDD
//!    sweeping, and factorised incremental SAT checks;
//! 2. an **optimisation phase** ([`cbq_synth::optimize_disjunction`]) that
//!    simplifies each cofactor under the input/observability don't-cares
//!    provided by the other.
//!
//! Multi-variable quantification ([`exists_many`]) schedules variables
//! cheapest-first and supports the paper's **partial quantification**
//! (Section 4): a variable whose elimination would exceed a growth budget
//! is *aborted* and returned as residual, so that downstream SAT-based
//! engines (all-solutions pre-image, BMC, induction) see fewer decision
//! variables while the representation stays small.
//!
//! [`substitute`] exposes *quantification by substitution (in-lining)*
//! (Section 3): `∃y. (y ≡ δ) ∧ P(y) = P(δ)`, the transformation backward
//! reachability uses to eliminate every next-state variable for free.
//!
//! ## Example
//!
//! ```
//! use cbq_aig::Aig;
//! use cbq_cnf::AigCnf;
//! use cbq_core::{exists_many, QuantConfig};
//!
//! let mut aig = Aig::new();
//! let x = aig.add_input();
//! let y = aig.add_input();
//! let z = aig.add_input();
//! // F = (x & y) | (!x & z): ∃x.F = y | z.
//! let t = aig.and(x.lit(), y.lit());
//! let e = aig.and(!x.lit(), z.lit());
//! let f = aig.or(t, e);
//! let mut cnf = AigCnf::new();
//! let res = exists_many(&mut aig, f, &[x], &mut cnf, &QuantConfig::default());
//! assert!(res.remaining.is_empty());
//! let expect = aig.or(y.lit(), z.lit());
//! assert_eq!(res.lit, expect);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cbq_aig::{Aig, Lit, Var};
use cbq_bdd::BddManager;
use cbq_cec::{sweep, SweepConfig, SweepStats};
use cbq_cnf::AigCnf;
use cbq_synth::{optimize_disjunction, restrash, OptConfig, OptStats};

/// Order in which [`exists_many`] eliminates variables.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum VarOrder {
    /// Re-estimate costs after each elimination and pick the variable with
    /// the fewest dependent AND gates first.
    #[default]
    CheapestFirst,
    /// Eliminate in the order given by the caller.
    AsGiven,
    /// Estimate every variable's fanin-support cost
    /// ([`Aig::occurrence_count`]) once per pass, sort ascending, and keep
    /// that order for the whole pass — `O(vars)` cost probes per pass
    /// instead of [`VarOrder::CheapestFirst`]'s `O(vars²)`, at the price
    /// of scheduling on slightly stale estimates.
    StaticCost,
}

impl VarOrder {
    /// Parses a CLI-facing name (`cheapest`, `static`, `given`).
    pub fn from_name(name: &str) -> Option<VarOrder> {
        match name {
            "cheapest" => Some(VarOrder::CheapestFirst),
            "static" => Some(VarOrder::StaticCost),
            "given" => Some(VarOrder::AsGiven),
            _ => None,
        }
    }

    /// The CLI-facing name of this order.
    pub fn name(&self) -> &'static str {
        match self {
            VarOrder::CheapestFirst => "cheapest",
            VarOrder::StaticCost => "static",
            VarOrder::AsGiven => "given",
        }
    }
}

/// Configuration of the quantification engine.
///
/// The default configuration is the paper's full flow: merge and
/// optimisation phases enabled, cheapest-first scheduling, no abort
/// budget.
#[derive(Clone, Debug)]
pub struct QuantConfig {
    /// Merge-phase configuration (tiers, order, budgets).
    pub sweep: SweepConfig,
    /// Optimisation-phase configuration (don't-care passes).
    pub opt: OptConfig,
    /// Run the merge phase (disable only for ablation experiments).
    pub use_merge: bool,
    /// Run the optimisation phase.
    pub use_opt: bool,
    /// Partial quantification: abort a variable if the result cone would
    /// exceed `factor ×` the size before quantifying it. `None` never
    /// aborts.
    pub growth_budget: Option<f64>,
    /// Variable scheduling policy.
    pub order: VarOrder,
    /// Interleaved re-sweeping: after an elimination, if the working cone
    /// has grown past `factor ×` its size at the last sweep point, run the
    /// merge phase on the whole cone before scheduling the next variable.
    /// `None` disables it.
    pub resweep_growth: Option<f64>,
    /// Cooperative cancellation: once this wall-clock instant passes, the
    /// inner elimination loop stops scheduling further variables and
    /// returns whatever is left as residual. Engines derive it from their
    /// budget deadline so one huge quantification can no longer overshoot
    /// the traversal's time budget unnoticed.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation on manager size: once the working AIG
    /// holds more than this many nodes, remaining variables are aborted
    /// (per-partition node budgets of the partitioned traversals).
    pub node_limit: Option<usize>,
    /// Cooperative cancellation by a shared flag: once another thread
    /// raises it, the elimination loop stops exactly as if the deadline
    /// had passed. Parallel portfolio members share one flag per member
    /// so a first conclusive answer cancels the losers' hot loops.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for QuantConfig {
    fn default() -> QuantConfig {
        QuantConfig::full()
    }
}

impl QuantConfig {
    /// The configuration used by the paper's main flow: merge and
    /// optimisation enabled, no abort budget.
    pub fn full() -> QuantConfig {
        QuantConfig {
            sweep: SweepConfig::default(),
            opt: OptConfig::default(),
            use_merge: true,
            use_opt: true,
            growth_budget: None,
            order: VarOrder::CheapestFirst,
            resweep_growth: None,
            deadline: None,
            node_limit: None,
            cancel: None,
        }
    }

    /// Naive cofactor disjunction: no merge, no optimisation (the
    /// ablation baseline of experiment E1).
    pub fn naive() -> QuantConfig {
        QuantConfig {
            use_merge: false,
            use_opt: false,
            ..QuantConfig::full()
        }
    }

    /// Merge phase only.
    pub fn merge_only() -> QuantConfig {
        QuantConfig {
            use_merge: true,
            use_opt: false,
            ..QuantConfig::full()
        }
    }

    /// Partial quantification with the given growth factor.
    pub fn with_budget(mut self, factor: f64) -> QuantConfig {
        self.growth_budget = Some(factor);
        self
    }

    /// Interleaved re-sweeping at the given growth factor.
    pub fn with_resweep(mut self, factor: f64) -> QuantConfig {
        self.resweep_growth = Some(factor);
        self
    }

    /// The given variable scheduling policy.
    pub fn with_order(mut self, order: VarOrder) -> QuantConfig {
        self.order = order;
        self
    }

    /// Cooperative wall-clock cancellation at the given instant; also
    /// propagated to the merge-phase candidate loop.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> QuantConfig {
        self.deadline = deadline;
        self.sweep.deadline = deadline;
        self
    }

    /// Cooperative node-count cancellation at the given manager size.
    pub fn with_node_limit(mut self, limit: Option<usize>) -> QuantConfig {
        self.node_limit = limit;
        self
    }

    /// Cooperative cancellation by a shared flag (raised by another
    /// thread, e.g. a parallel portfolio sibling that already concluded).
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> QuantConfig {
        self.cancel = cancel;
        self
    }

    /// Whether a cooperative cancellation limit has been crossed — the
    /// *exact* check: the node limit and the cancel flag are compared
    /// and, when a deadline is set, the clock is read on every call.
    /// Engines use it at coarse boundaries (once per image, once per
    /// traversal iteration); hot loops poll through a [`DeadlineGate`]
    /// instead, which amortises the clock reads.
    pub fn out_of_budget(&self, aig: &Aig) -> bool {
        if let Some(limit) = self.node_limit {
            if aig.num_nodes() > limit {
                return true;
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// A fresh amortised budget poll for one quantification run (see
    /// [`DeadlineGate`]).
    pub fn deadline_gate(&self) -> DeadlineGate {
        DeadlineGate::new(self)
    }
}

/// Maximum polls a [`DeadlineGate`] answers between two clock reads: a
/// passed deadline is noticed within this many cheap polls (the
/// regression tolerance pinned by the tests).
pub const DEADLINE_STRIDE: u32 = 16;

/// Node-growth grain of the [`DeadlineGate`] amortisation: every
/// `NODE_GRAIN` nodes of manager growth (or shrinkage) since the last
/// poll buys one extra stride credit, so expensive eliminations force a
/// clock read almost immediately while cheap no-op eliminations share
/// one read per [`DEADLINE_STRIDE`] polls.
const NODE_GRAIN: usize = 512;

/// An amortised version of [`QuantConfig::out_of_budget`] for hot
/// elimination loops.
///
/// The naive check reads `Instant::now()` on every poll; inside
/// [`exists_many`] — which polls between every variable elimination, and
/// is itself called once per partition per traversal iteration — those
/// clock reads are pure overhead whenever the elimination was a cheap
/// no-op (variable not in support, constant collapse). The gate strides
/// the clock: node limits are still compared on every poll (one integer
/// compare), but the wall clock is read only once enough *work credit*
/// has accumulated — one credit per poll plus one per [`NODE_GRAIN`]
/// nodes of manager-size change since the previous poll. A passed
/// deadline is therefore noticed within at most [`DEADLINE_STRIDE`]
/// cheap polls, and essentially immediately after any elimination that
/// actually built nodes.
#[derive(Clone, Debug)]
pub struct DeadlineGate {
    deadline: Option<Instant>,
    node_limit: Option<usize>,
    cancel: Option<Arc<AtomicBool>>,
    credit: u32,
    last_nodes: usize,
    expired: bool,
}

impl DeadlineGate {
    /// A gate over `cfg`'s deadline, node limit, and cancel flag. The
    /// first poll always reads the clock (an already-expired deadline
    /// trips immediately).
    pub fn new(cfg: &QuantConfig) -> DeadlineGate {
        DeadlineGate {
            deadline: cfg.deadline,
            node_limit: cfg.node_limit,
            cancel: cfg.cancel.clone(),
            credit: DEADLINE_STRIDE,
            last_nodes: 0,
            expired: false,
        }
    }

    /// Whether a cooperative cancellation limit has been crossed, with
    /// the clock read amortised as described on [`DeadlineGate`]. The
    /// node limit and the cancel flag — both a single cheap load — are
    /// still checked on every poll, so a raised flag is noticed within
    /// one poll regardless of the clock stride.
    pub fn out_of_budget(&mut self, aig: &Aig) -> bool {
        let nodes = aig.num_nodes();
        if let Some(limit) = self.node_limit {
            if nodes > limit {
                return true;
            }
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
        }
        if self.expired {
            return true;
        }
        let Some(deadline) = self.deadline else {
            return false;
        };
        self.credit = self
            .credit
            .saturating_add(1 + (nodes.abs_diff(self.last_nodes) / NODE_GRAIN) as u32);
        self.last_nodes = nodes;
        if self.credit < DEADLINE_STRIDE {
            return false;
        }
        self.credit = 0;
        self.expired = Instant::now() >= deadline;
        self.expired
    }
}

/// Per-variable record of one elimination attempt.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VarQuantRecord {
    /// The eliminated (or aborted) variable.
    pub var: Var,
    /// Cone size of the function before this elimination.
    pub size_before: usize,
    /// Cone size of the naive disjunction `F₁ ∨ F₀` (after structural
    /// hashing only).
    pub size_naive: usize,
    /// Cone size after the merge phase.
    pub size_merged: usize,
    /// Cone size after the optimisation phase (== final size if kept).
    pub size_opt: usize,
    /// Whether the elimination was aborted by the growth budget.
    pub aborted: bool,
}

/// Aggregate statistics of an [`exists_many`] run.
#[derive(Clone, Debug, Default)]
pub struct QuantStats {
    /// Variables successfully eliminated.
    pub quantified: usize,
    /// Variables aborted (residual).
    pub aborted: usize,
    /// Cone size of the input function.
    pub nodes_before: usize,
    /// Cone size of the result.
    pub nodes_after: usize,
    /// Merge-phase counters accumulated over all variables.
    pub sweep: SweepStats,
    /// Optimisation-phase counters accumulated over all variables.
    pub opt: OptStats,
    /// Whole-cone sweeps triggered by [`QuantConfig::resweep_growth`].
    pub interleaved_sweeps: usize,
    /// AIG-manager cofactor-cache hits during this run.
    pub cofactor_cache_hits: u64,
    /// Nodes visited by dense scratchpad cone walks during this run.
    pub scratch_walk_nodes: u64,
    /// Structural-hash slot probes during this run.
    pub strash_probes: u64,
    /// One record per attempted variable, in elimination order.
    pub per_var: Vec<VarQuantRecord>,
}

/// Result of [`exists_many`].
#[derive(Clone, Debug)]
pub struct QuantResult {
    /// The (possibly partially) quantified function.
    pub lit: Lit,
    /// Variables the growth budget refused to eliminate. The meaning of
    /// the result is `∃ remaining. lit`.
    pub remaining: Vec<Var>,
    /// What happened.
    pub stats: QuantStats,
}

/// Existentially quantifies a single variable; `None` if aborted by the
/// growth budget.
///
/// See [`exists_many`] for the multi-variable driver.
pub fn exists_one(
    aig: &mut Aig,
    f: Lit,
    v: Var,
    cnf: &mut AigCnf,
    cfg: &QuantConfig,
) -> (Option<Lit>, VarQuantRecord) {
    let (res, record, _sweep, _opt) = exists_one_full(aig, f, v, cnf, cfg);
    (res, record)
}

/// Like [`exists_one`], additionally returning the merge- and
/// optimisation-phase statistics of this variable's elimination.
pub fn exists_one_full(
    aig: &mut Aig,
    f: Lit,
    v: Var,
    cnf: &mut AigCnf,
    cfg: &QuantConfig,
) -> (Option<Lit>, VarQuantRecord, SweepStats, OptStats) {
    let size_before = aig.cone_size_cached(f);
    let mut sweep_stats = SweepStats::default();
    let mut opt_stats = OptStats::default();
    let mut record = VarQuantRecord {
        var: v,
        size_before,
        size_naive: size_before,
        size_merged: size_before,
        size_opt: size_before,
        aborted: false,
    };
    if !aig.support_contains(f, v) {
        return (Some(f), record, sweep_stats, opt_stats);
    }
    let (f1, f0) = aig.cofactors(f, v);
    let naive = aig.or(f1, f0);
    record.size_naive = aig.cone_size_cached(naive);
    if naive.is_const() || f1 == f0 {
        record.size_merged = record.size_naive;
        record.size_opt = record.size_naive;
        return (Some(naive), record, sweep_stats, opt_stats);
    }

    let (m1, m0) = if cfg.use_merge {
        let swept = sweep(aig, &[f1, f0], cnf, &cfg.sweep);
        sweep_stats = swept.stats;
        (swept.roots[0], swept.roots[1])
    } else {
        (f1, f0)
    };
    let merged = aig.or(m1, m0);
    record.size_merged = aig.cone_size_cached(merged);

    let result = if cfg.use_opt {
        let (o1, o0, stats) = optimize_disjunction(aig, m1, m0, cnf, &cfg.opt);
        opt_stats = stats;
        aig.or(o1, o0)
    } else {
        merged
    };
    let result = restrash(aig, &[result])[0];
    record.size_opt = aig.cone_size_cached(result);

    if let Some(factor) = cfg.growth_budget {
        let cap = (size_before as f64 * factor).ceil() as usize;
        if record.size_opt > cap {
            record.aborted = true;
            return (None, record, sweep_stats, opt_stats);
        }
    }
    (Some(result), record, sweep_stats, opt_stats)
}

fn accumulate_sweep(total: &mut SweepStats, s: SweepStats) {
    total.classes_initial += s.classes_initial;
    total.merged_bdd += s.merged_bdd;
    total.merged_sat += s.merged_sat;
    total.refuted_bdd += s.refuted_bdd;
    total.sat_checks += s.sat_checks;
    total.sat_cex += s.sat_cex;
    total.sat_unknown += s.sat_unknown;
    total.skipped_out_of_cone += s.skipped_out_of_cone;
    total.rounds += s.rounds;
}

fn accumulate_opt(total: &mut OptStats, s: OptStats) {
    total.const_applied += s.const_applied;
    total.merge_applied += s.merge_applied;
    total.odc_applied += s.odc_applied;
    total.checks += s.checks;
    total.rejected += s.rejected;
}

/// Existentially quantifies `vars` from `f`, scheduling cheap variables
/// first and aborting expensive ones when a growth budget is set
/// (partial quantification, Section 4 of the paper).
///
/// Scheduling follows [`QuantConfig::order`]: per-elimination cost
/// re-estimation, a per-pass static fanin-support-cost order, or the
/// caller's order. When [`QuantConfig::resweep_growth`] is set, the whole
/// working cone is re-swept as soon as it outgrows the factor —
/// interleaving compaction with elimination instead of letting
/// intermediate blow-up compound.
///
/// Aborted variables are retried once after all others (their cost may
/// have collapsed); whatever still exceeds the budget is returned in
/// [`QuantResult::remaining`].
pub fn exists_many(
    aig: &mut Aig,
    f: Lit,
    vars: &[Var],
    cnf: &mut AigCnf,
    cfg: &QuantConfig,
) -> QuantResult {
    let perf_start = aig.perf_counters();
    let mut stats = QuantStats {
        nodes_before: aig.cone_size_cached(f),
        ..QuantStats::default()
    };
    let mut current = f;
    // Base size the interleaved-resweep growth factor is measured against.
    let mut sweep_base = stats.nodes_before.max(1);
    let mut pending: Vec<Var> = vars.to_vec();
    let mut remaining: Vec<Var> = Vec::new();
    let mut gate = cfg.deadline_gate();
    let mut passes = 0;
    while !pending.is_empty() && passes < 2 {
        passes += 1;
        if cfg.order == VarOrder::StaticCost {
            // One cost probe per variable per pass; stale-but-cheap. A
            // single batched cone walk prices every variable at once.
            let costs = aig.occurrence_counts(&[current], &pending);
            let mut costed: Vec<(usize, Var)> =
                costs.into_iter().zip(pending.iter().copied()).collect();
            costed.sort_unstable_by_key(|(cost, _)| *cost);
            pending = costed.into_iter().map(|(_, v)| v).collect();
        }
        let mut next_round: Vec<Var> = Vec::new();
        while !pending.is_empty() {
            // Cooperative cancellation between eliminations: a deadline or
            // node-limit crossing aborts every variable still scheduled
            // (they come back as residuals, exactly like growth aborts).
            // The gate amortises the clock reads against node growth.
            if gate.out_of_budget(aig) {
                next_round.append(&mut pending);
                remaining = next_round;
                stats.aborted = remaining.len();
                stats.nodes_after = aig.cone_size_cached(current);
                record_perf_delta(&mut stats, aig.perf_counters().since(perf_start));
                return QuantResult {
                    lit: current,
                    remaining,
                    stats,
                };
            }
            let idx = match cfg.order {
                VarOrder::AsGiven | VarOrder::StaticCost => 0,
                VarOrder::CheapestFirst => {
                    // One cone walk prices every pending variable; the
                    // old per-variable probe made re-estimation quadratic
                    // in the cone for every single elimination.
                    let costs = aig.occurrence_counts(&[current], &pending);
                    let mut best = 0;
                    let mut best_cost = usize::MAX;
                    for (i, &cost) in costs.iter().enumerate() {
                        if cost < best_cost {
                            best_cost = cost;
                            best = i;
                        }
                    }
                    best
                }
            };
            let v = pending.remove(idx);
            let (res, record, sw, op) = exists_one_full(aig, current, v, cnf, cfg);
            accumulate_sweep(&mut stats.sweep, sw);
            accumulate_opt(&mut stats.opt, op);
            stats.per_var.push(record);
            match res {
                Some(nf) => {
                    current = nf;
                    stats.quantified += 1;
                }
                None => next_round.push(v),
            }
            if let Some(factor) = cfg.resweep_growth {
                let size = aig.cone_size_cached(current);
                if size as f64 > sweep_base as f64 * factor {
                    let swept = sweep(aig, &[current], cnf, &cfg.sweep);
                    accumulate_sweep(&mut stats.sweep, swept.stats);
                    current = swept.roots[0];
                    stats.interleaved_sweeps += 1;
                    sweep_base = aig.cone_size_cached(current).max(1);
                }
            }
        }
        if passes == 2 || next_round.is_empty() {
            remaining = next_round;
            break;
        }
        pending = next_round;
    }
    stats.aborted = remaining.len();
    stats.nodes_after = aig.cone_size_cached(current);
    record_perf_delta(&mut stats, aig.perf_counters().since(perf_start));
    QuantResult {
        lit: current,
        remaining,
        stats,
    }
}

/// Folds the manager's hot-path counter delta for this run into `stats`.
fn record_perf_delta(stats: &mut QuantStats, d: cbq_aig::AigPerfCounters) {
    stats.cofactor_cache_hits += d.cofactor_cache_hits;
    stats.scratch_walk_nodes += d.scratch_walk_nodes;
    stats.strash_probes += d.strash_probes;
}

/// Quantification by substitution (in-lining, Section 3):
/// `∃y.(y ≡ δ) ∧ P(y)` becomes `P(δ)`.
///
/// `defs` maps each quantified variable to its definition; the
/// substitution is simultaneous.
pub fn substitute(aig: &mut Aig, f: Lit, defs: &[(Var, Lit)]) -> Lit {
    aig.compose(f, defs)
}

/// BDD-based quantifier elimination (the canonical baseline of
/// experiment E1): builds the BDD of `f`, quantifies, converts back.
///
/// Returns `None` if the BDD exceeds `cap` nodes; on success also reports
/// the peak BDD node count of the quantified result.
pub fn exists_bdd(aig: &mut Aig, f: Lit, vars: &[Var], cap: usize) -> Option<(Lit, usize)> {
    let support = aig.support(f);
    let var_level: HashMap<Var, u32> = support
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u32))
        .collect();
    let mut mgr = BddManager::new(support.len());
    let b = mgr.from_aig(aig, f, &var_level, cap)?;
    let levels: Vec<u32> = vars
        .iter()
        .filter_map(|v| var_level.get(v).copied())
        .collect();
    let q = mgr.exists_limited(b, &levels, cap)?;
    let size = mgr.size(q);
    let mut level_lit = vec![Lit::FALSE; support.len()];
    for (v, lvl) in &var_level {
        level_lit[*lvl as usize] = v.lit();
    }
    let lit = mgr.to_aig(aig, q, &level_lit);
    Some((lit, size))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_exists_check(
        aig: &mut Aig,
        f: Lit,
        vars: &[Var],
        result: Lit,
        n_inputs: usize,
    ) -> bool {
        // ∃vars.f == result, checked by enumeration over all inputs.
        let var_idx: Vec<usize> = vars.iter().map(|v| aig.input_index(*v).unwrap()).collect();
        for mask in 0..1u32 << n_inputs {
            let mut asg: Vec<bool> = (0..n_inputs).map(|i| (mask >> i) & 1 != 0).collect();
            let mut any = false;
            for sub in 0..1u32 << var_idx.len() {
                for (j, &vi) in var_idx.iter().enumerate() {
                    asg[vi] = (sub >> j) & 1 != 0;
                }
                if aig.eval(f, &asg) {
                    any = true;
                    break;
                }
            }
            // Result must not depend on the quantified vars; evaluate with
            // the last assignment (they are irrelevant if correct).
            if aig.eval(result, &asg) != any {
                return false;
            }
        }
        true
    }

    #[test]
    fn single_variable_mux() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let z = aig.add_input();
        let f = {
            let t = aig.and(x.lit(), y.lit());
            let e = aig.and(!x.lit(), z.lit());
            aig.or(t, e)
        };
        let mut cnf = AigCnf::new();
        let (res, record) = exists_one(&mut aig, f, x, &mut cnf, &QuantConfig::full());
        let res = res.unwrap();
        assert!(!record.aborted);
        assert!(exhaustive_exists_check(&mut aig, f, &[x], res, 3));
        assert!(!aig.support_contains(res, x));
    }

    #[test]
    fn variable_not_in_support_is_free() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let z = aig.add_input();
        let f = aig.and(y.lit(), z.lit());
        let mut cnf = AigCnf::new();
        let (res, _) = exists_one(&mut aig, f, x, &mut cnf, &QuantConfig::full());
        assert_eq!(res.unwrap(), f);
    }

    #[test]
    fn tautology_collapse() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let f = aig.xor(x.lit(), y.lit());
        let mut cnf = AigCnf::new();
        let res = exists_many(&mut aig, f, &[x], &mut cnf, &QuantConfig::full());
        assert_eq!(res.lit, Lit::TRUE);
    }

    #[test]
    fn multi_variable_agrees_with_semantics() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..5).map(|_| aig.add_input()).collect();
        let f = {
            let t1 = aig.and(vars[0].lit(), vars[1].lit());
            let t2 = aig.xor(vars[2].lit(), vars[3].lit());
            let t3 = aig.and(t2, vars[4].lit());
            let o = aig.or(t1, t3);
            let guard = aig.implies(vars[0].lit(), vars[4].lit());
            aig.and(o, guard)
        };
        let mut cnf = AigCnf::new();
        let res = exists_many(
            &mut aig,
            f,
            &[vars[1], vars[3]],
            &mut cnf,
            &QuantConfig::full(),
        );
        assert!(res.remaining.is_empty());
        assert!(exhaustive_exists_check(
            &mut aig,
            f,
            &[vars[1], vars[3]],
            res.lit,
            5
        ));
        assert!(!aig.support_contains(res.lit, vars[1]));
        assert!(!aig.support_contains(res.lit, vars[3]));
    }

    #[test]
    fn naive_config_still_correct() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..4).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.xor(vars[0].lit(), vars[1].lit());
            let u = aig.and(t, vars[2].lit());
            aig.or(u, vars[3].lit())
        };
        let mut cnf = AigCnf::new();
        let res = exists_many(
            &mut aig,
            f,
            &[vars[0], vars[2]],
            &mut cnf,
            &QuantConfig::naive(),
        );
        assert!(exhaustive_exists_check(
            &mut aig,
            f,
            &[vars[0], vars[2]],
            res.lit,
            4
        ));
    }

    #[test]
    fn growth_budget_aborts_and_reports_residuals() {
        // A function where quantifying any variable roughly doubles the
        // cone: an xor chain.
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..8).map(|_| aig.add_input()).collect();
        // Use a function whose cofactors share little: random-ish mix.
        let mut f = Lit::FALSE;
        for w in vars.chunks(2) {
            let t = aig.xor(w[0].lit(), w[1].lit());
            let u = aig.and(t, f.xor_sign(false));
            f = aig.or(u, t);
        }
        let mut cnf = AigCnf::new();
        let tight = QuantConfig::naive().with_budget(0.01);
        let res = exists_many(&mut aig, f, &[vars[0], vars[2]], &mut cnf, &tight);
        // With an absurdly tight budget, something must abort — and the
        // result must still be sound: ∃remaining. lit == ∃vars. f.
        if !res.remaining.is_empty() {
            assert_eq!(res.stats.aborted, res.remaining.len());
            // Finish the job without a budget and compare against direct
            // quantification.
            let finished = exists_many(
                &mut aig,
                res.lit,
                &res.remaining,
                &mut cnf,
                &QuantConfig::full(),
            );
            assert!(exhaustive_exists_check(
                &mut aig,
                f,
                &[vars[0], vars[2]],
                finished.lit,
                8
            ));
        }
    }

    #[test]
    fn static_cost_order_is_exact() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..6).map(|_| aig.add_input()).collect();
        let f = {
            let t1 = aig.and(vars[0].lit(), vars[1].lit());
            let t2 = aig.xor(vars[2].lit(), vars[3].lit());
            let t3 = aig.ite(vars[4].lit(), t1, t2);
            aig.or(t3, vars[5].lit())
        };
        let mut cnf = AigCnf::new();
        let cfg = QuantConfig::full().with_order(VarOrder::StaticCost);
        let targets = [vars[0], vars[2], vars[4]];
        let res = exists_many(&mut aig, f, &targets, &mut cnf, &cfg);
        assert!(res.remaining.is_empty());
        assert!(exhaustive_exists_check(&mut aig, f, &targets, res.lit, 6));
    }

    #[test]
    fn var_order_names_round_trip() {
        for order in [
            VarOrder::CheapestFirst,
            VarOrder::StaticCost,
            VarOrder::AsGiven,
        ] {
            assert_eq!(VarOrder::from_name(order.name()), Some(order));
        }
        assert_eq!(VarOrder::from_name("nope"), None);
    }

    #[test]
    fn interleaved_resweep_fires_and_stays_exact() {
        // A function whose cofactors share little, so elimination grows
        // the cone and a tight resweep factor must trigger.
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..8).map(|_| aig.add_input()).collect();
        let mut f = Lit::FALSE;
        for w in vars.chunks(2) {
            let t = aig.xor(w[0].lit(), w[1].lit());
            let u = aig.and(t, f);
            f = aig.or(u, t);
        }
        let mut cnf = AigCnf::new();
        // Naive elimination (no per-variable merging) + aggressive resweep.
        let mut cfg = QuantConfig::naive().with_resweep(1.0);
        cfg.order = VarOrder::StaticCost;
        let targets = [vars[0], vars[2], vars[5]];
        let res = exists_many(&mut aig, f, &targets, &mut cnf, &cfg);
        assert!(res.remaining.is_empty());
        assert!(res.stats.interleaved_sweeps > 0, "resweep never fired");
        assert!(exhaustive_exists_check(&mut aig, f, &targets, res.lit, 8));
    }

    #[test]
    fn deadline_gate_fires_within_the_stride_tolerance() {
        use std::time::Duration;
        // Regression for the hot-path clock poll: an expired deadline
        // must be noticed (a) immediately on the first poll, and (b)
        // within DEADLINE_STRIDE cheap polls when it expires mid-run —
        // never silently deferred by the amortisation.
        let mut aig = Aig::new();
        let _ = aig.add_input();
        let mut expired = QuantConfig::full()
            .with_deadline(Some(Instant::now()))
            .deadline_gate();
        assert!(
            expired.out_of_budget(&aig),
            "first poll must read the clock"
        );
        assert!(expired.out_of_budget(&aig), "expiry must latch");
        // Mid-run expiry: the first poll reads the clock before the
        // deadline, then the deadline passes; subsequent cheap polls must
        // notice within the stride.
        let soon =
            QuantConfig::full().with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        let mut gate = soon.deadline_gate();
        let _ = gate.out_of_budget(&aig);
        std::thread::sleep(Duration::from_millis(5));
        let mut polls = 0;
        loop {
            polls += 1;
            if gate.out_of_budget(&aig) {
                break;
            }
            assert!(
                polls <= DEADLINE_STRIDE,
                "expired deadline not noticed within {DEADLINE_STRIDE} polls"
            );
        }
        // Heavy node growth buys credits: a large manager-size change
        // since the previous poll forces the clock read right away
        // instead of waiting out the stride.
        let mut big = Aig::new();
        let ins: Vec<cbq_aig::Lit> = (0..12).map(|_| big.add_input().lit()).collect();
        let mut f = ins[0];
        while big.num_nodes() < 16 * 512 + 64 {
            for w in ins.windows(2) {
                let x = big.and(f, w[0]);
                f = big.xor(x, w[1]);
            }
        }
        let grow =
            QuantConfig::full().with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        let mut gate = grow.deadline_gate();
        let _ = gate.out_of_budget(&aig); // clock read on the tiny manager
        std::thread::sleep(Duration::from_millis(5));
        assert!(
            gate.out_of_budget(&big),
            "a stride's worth of node growth must force the clock read"
        );
        // No deadline, no node limit: never out of budget, however often
        // polled.
        let mut free = QuantConfig::full().deadline_gate();
        for _ in 0..100 {
            assert!(!free.out_of_budget(&aig));
        }
        // Node limits stay exact (checked on every poll, unstrided).
        let mut capped = QuantConfig::full().with_node_limit(Some(1)).deadline_gate();
        assert!(capped.out_of_budget(&big));
    }

    #[test]
    fn exists_many_still_honours_an_expired_deadline() {
        // End-to-end: the gate inside exists_many aborts every pending
        // variable when the deadline has already passed.
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..6).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.and(vars[0].lit(), vars[1].lit());
            let u = aig.xor(vars[2].lit(), vars[3].lit());
            aig.or(t, u)
        };
        let mut cnf = AigCnf::new();
        let cfg = QuantConfig::full().with_deadline(Some(Instant::now()));
        let res = exists_many(&mut aig, f, &vars[..4], &mut cnf, &cfg);
        assert_eq!(res.remaining.len(), 4, "expired deadline must abort all");
        assert_eq!(res.lit, f);
    }

    #[test]
    fn substitute_inlines_definitions() {
        let mut aig = Aig::new();
        let y = aig.add_input();
        let s = aig.add_input();
        let i = aig.add_input();
        // P(y) = y & s ; y := s ^ i  =>  P = (s^i) & s = s & !i
        let p = aig.and(y.lit(), s.lit());
        let delta = aig.xor(s.lit(), i.lit());
        let inlined = substitute(&mut aig, p, &[(y, delta)]);
        let expect = aig.and(s.lit(), !i.lit());
        assert!(!aig.support_contains(inlined, y));
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(aig.eval(inlined, &asg), aig.eval(expect, &asg));
        }
    }

    #[test]
    fn bdd_baseline_agrees() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..4).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.and(vars[0].lit(), vars[1].lit());
            let u = aig.xor(vars[2].lit(), vars[3].lit());
            aig.or(t, u)
        };
        let (blit, _size) = exists_bdd(&mut aig, f, &[vars[1]], usize::MAX).unwrap();
        let mut cnf = AigCnf::new();
        let circ = exists_many(&mut aig, f, &[vars[1]], &mut cnf, &QuantConfig::full());
        // Both methods must produce semantically equal results.
        assert!(cnf.prove_equiv(&aig, blit, circ.lit, None).is_equiv());
    }

    #[test]
    fn quantifying_all_support_gives_constant() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..3).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.and(vars[0].lit(), vars[1].lit());
            aig.and(t, vars[2].lit())
        };
        let mut cnf = AigCnf::new();
        let res = exists_many(&mut aig, f, &vars, &mut cnf, &QuantConfig::full());
        assert_eq!(res.lit, Lit::TRUE); // f is satisfiable
        let res2 = exists_many(&mut aig, Lit::FALSE, &vars, &mut cnf, &QuantConfig::full());
        assert_eq!(res2.lit, Lit::FALSE);
    }
}
