//! Parametric benchmark circuit generators.
//!
//! Each generator returns a self-contained [`Network`] with a bad-state
//! property. Safe circuits (property holds) exercise fixpoint convergence;
//! buggy variants have counterexamples at known depths, exercising trace
//! extraction and bounded methods.

use cbq_aig::{Aig, Lit, Var};

use crate::network::Network;

fn lits(vars: &[Var]) -> Vec<Lit> {
    vars.iter().map(|v| v.lit()).collect()
}

/// `word == value` as a conjunction (little-endian).
fn word_eq_const(aig: &mut Aig, word: &[Lit], value: u64) -> Lit {
    let terms: Vec<Lit> = word
        .iter()
        .enumerate()
        .map(|(i, l)| l.xor_sign((value >> i) & 1 == 0))
        .collect();
    aig.and_many(&terms)
}

/// Ripple-carry increment: `word + 1` (wrapping).
fn word_inc(aig: &mut Aig, word: &[Lit]) -> Vec<Lit> {
    let mut carry = Lit::TRUE;
    let mut out = Vec::with_capacity(word.len());
    for &w in word {
        out.push(aig.xor(w, carry));
        carry = aig.and(w, carry);
    }
    out
}

/// Ripple-borrow decrement: `word - 1` (wrapping).
fn word_dec(aig: &mut Aig, word: &[Lit]) -> Vec<Lit> {
    let mut borrow = Lit::TRUE;
    let mut out = Vec::with_capacity(word.len());
    for &w in word {
        out.push(aig.xor(w, borrow));
        borrow = aig.and(!w, borrow);
    }
    out
}

/// Bitwise multiplexer `sel ? a : b`.
fn word_mux(aig: &mut Aig, sel: Lit, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    a.iter().zip(b).map(|(x, y)| aig.ite(sel, *x, *y)).collect()
}

/// "At least two of `xs`" (quadratic, fine for ring sizes).
fn at_least_two(aig: &mut Aig, xs: &[Lit]) -> Lit {
    let mut pairs = Vec::new();
    for i in 0..xs.len() {
        for j in (i + 1)..xs.len() {
            pairs.push(aig.and(xs[i], xs[j]));
        }
    }
    aig.or_many(&pairs)
}

/// "Exactly one of `xs`".
fn exactly_one(aig: &mut Aig, xs: &[Lit]) -> Lit {
    let any = aig.or_many(xs);
    let two = at_least_two(aig, xs);
    aig.and(any, !two)
}

/// XOR-parity of `xs`.
fn parity(aig: &mut Aig, xs: &[Lit]) -> Lit {
    let mut p = Lit::FALSE;
    for &x in xs {
        p = aig.xor(p, x);
    }
    p
}

/// A safe bounded counter: counts `0 .. bound-1` and wraps to 0, so the
/// value `bound` is unreachable. `bad = (count == bound)`.
///
/// # Panics
///
/// Panics unless `1 <= bound < 2^n`.
pub fn bounded_counter(n: usize, bound: u64) -> Network {
    assert!(
        n < 63 && bound >= 1 && bound < (1 << n),
        "bound out of range"
    );
    let mut b = Network::builder(format!("bcnt{n}_{bound}"));
    let s = b.add_latch_word(n, 0);
    let aig = b.aig_mut();
    let cur = lits(&s);
    let inc = word_inc(aig, &cur);
    let wrap = word_eq_const(aig, &cur, bound - 1);
    let zeros = vec![Lit::FALSE; n];
    let next = word_mux(aig, wrap, &zeros, &inc);
    let bad = word_eq_const(aig, &cur, bound);
    for (v, nx) in s.iter().zip(next) {
        b.set_next(*v, nx);
    }
    b.build(bad)
}

/// A safe counter with a *deep backward fixpoint*: it counts
/// `0 .. bound-1` and wraps, and `bad = (count == bad_value)` with
/// `bad_value > bound`. The bad value is unreachable, but backward
/// reachability must peel the unreachable chain
/// `bad_value ← bad_value-1 ← … ← bound` one value per iteration:
/// exactly `bad_value - bound + 1` iterations to the fixpoint.
///
/// # Panics
///
/// Panics unless `1 <= bound <= bad_value < 2^n`.
pub fn bounded_counter_gap(n: usize, bound: u64, bad_value: u64) -> Network {
    assert!(n < 63 && bound >= 1 && bound <= bad_value && bad_value < (1 << n));
    let mut b = Network::builder(format!("bgap{n}_{bound}_{bad_value}"));
    let s = b.add_latch_word(n, 0);
    let aig = b.aig_mut();
    let cur = lits(&s);
    let inc = word_inc(aig, &cur);
    let wrap = word_eq_const(aig, &cur, bound - 1);
    let zeros = vec![Lit::FALSE; n];
    let next = word_mux(aig, wrap, &zeros, &inc);
    let bad = word_eq_const(aig, &cur, bad_value);
    for (v, nx) in s.iter().zip(next) {
        b.set_next(*v, nx);
    }
    b.build(bad)
}

/// A gap counter (see [`bounded_counter_gap`]) padded with `shadow`
/// latches of input-driven scrambler state that the property never
/// observes. This models the classic cone-of-influence-heavy industrial
/// design: most of the state is irrelevant to the property, but methods
/// that reason over the *full* state vector — k-induction's simple-path
/// distinctness constraints, BDD reachability — pay for every shadow
/// bit at every frame, while cone-directed methods (IC3's lazy clause
/// encoding) never touch them.
///
/// The shadow block is a shift register with XOR feedback scrambled by
/// a free input, so it has no short cycles to collapse the simple-path
/// search and no constant bits for the AIG to simplify away.
///
/// # Panics
///
/// Panics unless `1 <= bound <= bad_value < 2^n` and `shadow >= 2`.
pub fn shadowed_counter_gap(n: usize, bound: u64, bad_value: u64, shadow: usize) -> Network {
    assert!(n < 63 && bound >= 1 && bound <= bad_value && bad_value < (1 << n));
    assert!(shadow >= 2, "shadow block needs at least 2 bits");
    let mut b = Network::builder(format!("shctr{n}_{bound}_{bad_value}_s{shadow}"));
    let s = b.add_latch_word(n, 0);
    let sh = b.add_latch_word(shadow, 0);
    let x = b.add_input();
    let aig = b.aig_mut();
    let cur = lits(&s);
    let inc = word_inc(aig, &cur);
    let wrap = word_eq_const(aig, &cur, bound - 1);
    let zeros = vec![Lit::FALSE; n];
    let next = word_mux(aig, wrap, &zeros, &inc);
    let bad = word_eq_const(aig, &cur, bad_value);
    let shl = lits(&sh);
    let fb = parity(aig, &[shl[0], shl[shadow / 2], shl[shadow - 1], x.lit()]);
    for (v, nx) in s.iter().zip(next) {
        b.set_next(*v, nx);
    }
    for i in 0..shadow - 1 {
        b.set_next(sh[i], shl[i + 1]);
    }
    b.set_next(sh[shadow - 1], fb);
    b.build(bad)
}

/// An unsafe free-running counter with an enable input: `bad` when the
/// count reaches `k`. The shortest counterexample has exactly `k` steps
/// (the enable must be held high).
pub fn counter_bug(n: usize, k: u64) -> Network {
    assert!(n < 63 && k < (1 << n), "k out of range");
    let mut b = Network::builder(format!("cntbug{n}_{k}"));
    let s = b.add_latch_word(n, 0);
    let en = b.add_input();
    let aig = b.aig_mut();
    let cur = lits(&s);
    let inc = word_inc(aig, &cur);
    let next = word_mux(aig, en.lit(), &inc, &cur);
    let bad = word_eq_const(aig, &cur, k);
    for (v, nx) in s.iter().zip(next) {
        b.set_next(*v, nx);
    }
    b.build(bad)
}

/// A Gray-code counter with a phase latch: the parity of the Gray codeword
/// alternates every step, and the phase latch tracks it. Safe and
/// 1-inductive — `bad = (parity(gray) ≠ phase)`.
pub fn gray_counter(n: usize) -> Network {
    assert!((1..63).contains(&n));
    let mut b = Network::builder(format!("gray{n}"));
    let s = b.add_latch_word(n, 0);
    let p = b.add_latch(false);
    let aig = b.aig_mut();
    let cur = lits(&s);
    let next = word_inc(aig, &cur);
    // Gray codeword of the binary counter: g_i = b_i ^ b_{i+1}.
    let gray: Vec<Lit> = (0..n)
        .map(|i| {
            if i + 1 < n {
                aig.xor(cur[i], cur[i + 1])
            } else {
                cur[i]
            }
        })
        .collect();
    let gpar = parity(aig, &gray);
    let bad = aig.xor(gpar, p.lit());
    let pn = !p.lit();
    for (v, nx) in s.iter().zip(next) {
        b.set_next(*v, nx);
    }
    b.set_next(p, pn);
    b.build(bad)
}

/// A safe one-hot token ring of `n` stations: the token rotates, and the
/// bad states are everything that is not exactly-one-hot.
pub fn token_ring(n: usize) -> Network {
    assert!(n >= 2);
    let mut b = Network::builder(format!("ring{n}"));
    let t = b.add_latch_word(n, 1); // token starts at station 0
    let aig = b.aig_mut();
    let cur = lits(&t);
    let one = exactly_one(aig, &cur);
    let bad = !one;
    for i in 0..n {
        let prev = cur[(i + n - 1) % n];
        b.set_next(t[i], prev);
    }
    b.build(bad)
}

/// A token ring with an injection bug: when the `inject` input fires while
/// the token passes station 2, a duplicate token appears. Counterexample
/// depth 3 (for `n >= 4`).
pub fn token_ring_bug(n: usize) -> Network {
    assert!(n >= 4);
    let mut b = Network::builder(format!("ringbug{n}"));
    let t = b.add_latch_word(n, 1);
    let inj = b.add_input();
    let aig = b.aig_mut();
    let cur = lits(&t);
    let one = exactly_one(aig, &cur);
    let bad = !one;
    let nexts: Vec<Lit> = (0..n)
        .map(|i| {
            let prev = cur[(i + n - 1) % n];
            if i == 1 {
                // Duplicate the token from station 2 into station 1.
                let dup = aig.and(cur[2], inj.lit());
                aig.or(prev, dup)
            } else {
                prev
            }
        })
        .collect();
    for (v, nx) in t.iter().zip(nexts) {
        b.set_next(*v, nx);
    }
    b.build(bad)
}

/// A round-robin arbiter over `n` requesters: a one-hot token rotates and
/// gates the grants, so two grants can never be issued simultaneously.
/// `bad = (two grants at once)`. Safe, but the proof needs the one-hot
/// invariant of the token ring.
pub fn arbiter(n: usize) -> Network {
    assert!(n >= 2);
    let mut b = Network::builder(format!("arb{n}"));
    let t = b.add_latch_word(n, 1);
    let reqs = b.add_input_word(n);
    let aig = b.aig_mut();
    let cur = lits(&t);
    let grants: Vec<Lit> = reqs
        .iter()
        .zip(&cur)
        .map(|(r, tok)| aig.and(r.lit(), *tok))
        .collect();
    let bad = at_least_two(aig, &grants);
    for i in 0..n {
        let prev = cur[(i + n - 1) % n];
        b.set_next(t[i], prev);
    }
    b.build(bad)
}

/// A broken arbiter: station 0 is granted whenever it requests, ignoring
/// the token. Two grants become reachable (counterexample depth ≤ 2).
pub fn arbiter_bug(n: usize) -> Network {
    assert!(n >= 2);
    let mut b = Network::builder(format!("arbbug{n}"));
    let t = b.add_latch_word(n, 1);
    let reqs = b.add_input_word(n);
    let aig = b.aig_mut();
    let cur = lits(&t);
    let mut grants: Vec<Lit> = reqs
        .iter()
        .zip(&cur)
        .map(|(r, tok)| aig.and(r.lit(), *tok))
        .collect();
    grants[0] = reqs[0].lit(); // the bug
    let bad = at_least_two(aig, &grants);
    for i in 0..n {
        let prev = cur[(i + n - 1) % n];
        b.set_next(t[i], prev);
    }
    b.build(bad)
}

/// A Fibonacci LFSR (shift right, feedback into the top bit) whose tap
/// set includes bit 0, making the all-zero state unreachable from the
/// nonzero seed. `bad = (state == 0)`. Safe.
pub fn lfsr(n: usize, taps: &[usize]) -> Network {
    assert!(n >= 2 && taps.contains(&0), "taps must include bit 0");
    assert!(taps.iter().all(|t| *t < n), "tap out of range");
    let mut b = Network::builder(format!("lfsr{n}"));
    let s = b.add_latch_word(n, 1);
    let aig = b.aig_mut();
    let cur = lits(&s);
    let tap_lits: Vec<Lit> = taps.iter().map(|t| cur[*t]).collect();
    let fb = parity(aig, &tap_lits);
    let bad = word_eq_const(aig, &cur, 0);
    for i in 0..n - 1 {
        b.set_next(s[i], cur[i + 1]);
    }
    b.set_next(s[n - 1], fb);
    b.build(bad)
}

/// A FIFO controller with `2^k`-entry capacity: write/read pointers and an
/// occupancy counter, with push/pop guarded by full/empty.
/// `bad = (count > 2^k)` — safe thanks to the full guard.
pub fn fifo_ctrl(k: usize) -> Network {
    assert!((1..=16).contains(&k));
    let mut b = Network::builder(format!("fifo{k}"));
    let wptr = b.add_latch_word(k, 0);
    let rptr = b.add_latch_word(k, 0);
    let cnt = b.add_latch_word(k + 1, 0);
    let push = b.add_input();
    let pop = b.add_input();
    let aig = b.aig_mut();
    let w = lits(&wptr);
    let r = lits(&rptr);
    let c = lits(&cnt);
    let full = c[k]; // count == 2^k sets the top bit (given the invariant)
    let empty = word_eq_const(aig, &c, 0);
    let do_push = aig.and(push.lit(), !full);
    let do_pop = aig.and(pop.lit(), !empty);
    let winc = word_inc(aig, &w);
    let rinc = word_inc(aig, &r);
    let cinc = word_inc(aig, &c);
    let cdec = word_dec(aig, &c);
    let wn = word_mux(aig, do_push, &winc, &w);
    let rn = word_mux(aig, do_pop, &rinc, &r);
    // count': +1 on pure push, -1 on pure pop, unchanged otherwise.
    let pure_push = aig.and(do_push, !do_pop);
    let pure_pop = aig.and(do_pop, !do_push);
    let c_tmp = word_mux(aig, pure_push, &cinc, &c);
    let cn = word_mux(aig, pure_pop, &cdec, &c_tmp);
    // bad: count exceeds capacity (top bit set and any low bit set).
    let low_any = aig.or_many(&c[..k]);
    let bad = aig.and(c[k], low_any);
    for (v, nx) in wptr.iter().zip(wn) {
        b.set_next(*v, nx);
    }
    for (v, nx) in rptr.iter().zip(rn) {
        b.set_next(*v, nx);
    }
    for (v, nx) in cnt.iter().zip(cn) {
        b.set_next(*v, nx);
    }
    b.build(bad)
}

/// A Peterson-style two-process mutual exclusion controller with request
/// and release inputs. `bad = (both processes critical)`. Safe.
pub fn mutex() -> Network {
    mutex_impl(false)
}

/// The mutex with its turn-based guard removed: both processes can enter
/// the critical section together (counterexample depth 2).
pub fn mutex_bug() -> Network {
    mutex_impl(true)
}

fn mutex_impl(buggy: bool) -> Network {
    let name = if buggy { "mutexbug" } else { "mutex" };
    let mut b = Network::builder(name);
    let w0 = b.add_latch(false);
    let c0 = b.add_latch(false);
    let w1 = b.add_latch(false);
    let c1 = b.add_latch(false);
    let turn = b.add_latch(false); // false: P0 has priority
    let req0 = b.add_input();
    let req1 = b.add_input();
    let done0 = b.add_input();
    let done1 = b.add_input();
    let aig = b.aig_mut();
    let idle0 = {
        let t = aig.or(w0.lit(), c0.lit());
        !t
    };
    let idle1 = {
        let t = aig.or(w1.lit(), c1.lit());
        !t
    };
    let enter_wait0 = aig.and(idle0, req0.lit());
    let enter_wait1 = aig.and(idle1, req1.lit());
    // Guard for entering the critical section.
    let guard0 = if buggy {
        Lit::TRUE
    } else {
        aig.or(!w1.lit(), !turn.lit())
    };
    let guard1 = if buggy {
        Lit::TRUE
    } else {
        aig.or(!w0.lit(), turn.lit())
    };
    let enter_crit0 = {
        let t = aig.and(w0.lit(), !c1.lit());
        aig.and(t, guard0)
    };
    let enter_crit1 = {
        let t = aig.and(w1.lit(), !c0.lit());
        let u = aig.and(t, guard1);
        if buggy {
            u // the bug: no turn guard and no tie-break
        } else {
            // Tie-break: if both could enter this cycle, P0 wins.
            aig.and(u, !enter_crit0)
        }
    };
    let stay_crit0 = aig.and(c0.lit(), !done0.lit());
    let stay_crit1 = aig.and(c1.lit(), !done1.lit());
    let c0n = aig.or(enter_crit0, stay_crit0);
    let c1n = aig.or(enter_crit1, stay_crit1);
    let w0n = {
        let keep = aig.and(w0.lit(), !enter_crit0);
        aig.or(keep, enter_wait0)
    };
    let w1n = {
        let keep = aig.and(w1.lit(), !enter_crit1);
        aig.or(keep, enter_wait1)
    };
    // Entering wait yields priority to the other process.
    let t1 = aig.ite(enter_wait0, Lit::TRUE, turn.lit());
    let turn_n = aig.ite(enter_wait1, Lit::FALSE, t1);
    let bad = aig.and(c0.lit(), c1.lit());
    b.set_next(w0, w0n);
    b.set_next(c0, c0n);
    b.set_next(w1, w1n);
    b.set_next(c1, c1n);
    b.set_next(turn, turn_n);
    b.build(bad)
}

/// A serial shift register fed by a free input; `bad` when the register is
/// all-ones — reachable only by driving the input high for `n`
/// consecutive steps (counterexample depth exactly `n`).
pub fn shift_ones(n: usize) -> Network {
    assert!(n >= 1);
    let mut b = Network::builder(format!("shift{n}"));
    let s = b.add_latch_word(n, 0);
    let d = b.add_input();
    let aig = b.aig_mut();
    let cur = lits(&s);
    let bad = aig.and_many(&cur);
    b.set_next(s[0], d.lit());
    for i in 1..n {
        b.set_next(s[i], cur[i - 1]);
    }
    b.build(bad)
}

/// The standard suite used by the benchmark harness: a balanced mix of
/// safe and buggy instances at moderate sizes.
pub fn standard_suite() -> Vec<Network> {
    vec![
        bounded_counter(8, 200),
        gray_counter(8),
        token_ring(8),
        token_ring_bug(8),
        arbiter(6),
        arbiter_bug(6),
        lfsr(8, &[0, 2, 3, 5]),
        fifo_ctrl(3),
        mutex(),
        mutex_bug(),
        shift_ones(6),
        counter_bug(8, 40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Explicit-state BFS over the full (state × input) space — the ground
    /// truth for small circuits. Returns the depth of the shortest
    /// counterexample, or `None` if safe.
    pub(crate) fn explicit_check(net: &Network, max_states: usize) -> Option<usize> {
        use std::collections::{HashSet, VecDeque};
        let ni = net.num_inputs();
        assert!(ni <= 8, "too many inputs for explicit check");
        let mut seen: HashSet<Vec<bool>> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back((net.initial_state(), 0usize));
        seen.insert(net.initial_state());
        while let Some((state, depth)) = queue.pop_front() {
            assert!(seen.len() <= max_states, "state space larger than expected");
            for mask in 0..(1u32 << ni) {
                let inputs: Vec<bool> = (0..ni).map(|i| (mask >> i) & 1 != 0).collect();
                let (next, bad) = net.step(&state, &inputs);
                if bad {
                    return Some(depth);
                }
                if seen.insert(next.clone()) {
                    queue.push_back((next, depth + 1));
                }
            }
        }
        None
    }

    #[test]
    fn bounded_counter_is_safe() {
        assert_eq!(explicit_check(&bounded_counter(4, 10), 1 << 12), None);
    }

    #[test]
    fn bounded_counter_gap_is_safe() {
        assert_eq!(
            explicit_check(&bounded_counter_gap(4, 6, 13), 1 << 12),
            None
        );
    }

    #[test]
    fn counter_bug_depth_is_k() {
        assert_eq!(explicit_check(&counter_bug(4, 5), 1 << 12), Some(5));
    }

    #[test]
    fn gray_counter_is_safe() {
        assert_eq!(explicit_check(&gray_counter(4), 1 << 12), None);
    }

    #[test]
    fn token_ring_is_safe_and_bug_is_depth_3() {
        assert_eq!(explicit_check(&token_ring(5), 1 << 12), None);
        assert_eq!(explicit_check(&token_ring_bug(5), 1 << 12), Some(3));
    }

    #[test]
    fn arbiter_safe_and_bug_unsafe() {
        assert_eq!(explicit_check(&arbiter(4), 1 << 12), None);
        assert!(explicit_check(&arbiter_bug(4), 1 << 12).is_some());
    }

    #[test]
    fn lfsr_never_reaches_zero() {
        assert_eq!(explicit_check(&lfsr(5, &[0, 2]), 1 << 12), None);
    }

    #[test]
    fn fifo_counter_stays_bounded() {
        assert_eq!(explicit_check(&fifo_ctrl(2), 1 << 14), None);
    }

    #[test]
    fn mutex_safe_and_bug_depth_2() {
        assert_eq!(explicit_check(&mutex(), 1 << 12), None);
        assert_eq!(explicit_check(&mutex_bug(), 1 << 12), Some(2));
    }

    #[test]
    fn shift_ones_depth_is_n() {
        assert_eq!(explicit_check(&shift_ones(4), 1 << 10), Some(4));
    }

    #[test]
    fn suite_is_well_formed() {
        for net in standard_suite() {
            assert!(net.num_latches() > 0, "{} has no latches", net.name());
            // Every network must simulate from reset.
            let zeros = vec![false; net.num_inputs()];
            let (next, _) = net.step(&net.initial_state(), &zeros);
            assert_eq!(next.len(), net.num_latches());
        }
    }
}
