//! Property-based tests of the quantification engine: every configuration
//! (naive, merge-only, full, budgeted, BDD baseline, SAT enumeration) must
//! compute the same `∃vars. F` on random functions.

use proptest::prelude::*;

use cbq_aig::{Aig, AigTuning, Lit, Var};
use cbq_cnf::AigCnf;
use cbq_core::{exists_bdd, exists_many, QuantConfig};

const N: usize = 6;

#[derive(Clone, Debug)]
enum Op {
    And(usize, bool, usize, bool),
    Xor(usize, bool, usize, bool),
}

fn ops_strategy(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| Op::And(a, pa, b, pb)),
            (any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>())
                .prop_map(|(a, pa, b, pb)| Op::Xor(a, pa, b, pb)),
        ],
        1..=max_ops,
    )
}

fn build(ops: &[Op]) -> (Aig, Lit) {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..N).map(|_| aig.add_input().lit()).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            Op::And(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.and(x, y)
            }
            Op::Xor(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.xor(x, y)
            }
        };
        pool.push(l);
    }
    (aig, *pool.last().expect("non-empty"))
}

fn build_with(ops: &[Op], tuning: AigTuning) -> (Aig, Lit) {
    let mut aig = Aig::with_tuning(tuning);
    let mut pool: Vec<Lit> = (0..N).map(|_| aig.add_input().lit()).collect();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let l = match *op {
            Op::And(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.and(x, y)
            }
            Op::Xor(a, pa, b, pb) => {
                let (x, y) = (pick(a).xor_sign(pa), pick(b).xor_sign(pb));
                aig.xor(x, y)
            }
        };
        pool.push(l);
    }
    (aig, *pool.last().expect("non-empty"))
}

/// Exhaustive ∃ oracle.
fn exists_oracle(aig: &Aig, f: Lit, vars: &[Var], asg: &mut Vec<bool>) -> bool {
    match vars.split_first() {
        None => aig.eval(f, asg),
        Some((v, rest)) => {
            let idx = aig.input_index(*v).expect("input");
            let old = asg[idx];
            asg[idx] = false;
            let a = exists_oracle(aig, f, rest, asg);
            asg[idx] = true;
            let b = exists_oracle(aig, f, rest, asg);
            asg[idx] = old;
            a || b
        }
    }
}

fn check_result(aig: &Aig, f: Lit, vars: &[Var], result: Lit) -> Result<(), TestCaseError> {
    for v in vars {
        prop_assert!(
            !aig.support_contains(result, *v),
            "quantified variable {v:?} still in support"
        );
    }
    for mask in 0..1u32 << N {
        let mut asg: Vec<bool> = (0..N).map(|i| (mask >> i) & 1 != 0).collect();
        let expect = exists_oracle(aig, f, vars, &mut asg);
        prop_assert_eq!(aig.eval(result, &asg), expect, "mask {}", mask);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full flow computes ∃ correctly.
    #[test]
    fn full_flow_is_exact(ops in ops_strategy(20), nvars in 1..4usize) {
        let (mut aig, f) = build(&ops);
        let vars: Vec<Var> = (0..nvars).map(|i| aig.input_var(i)).collect();
        let mut cnf = AigCnf::new();
        let res = exists_many(&mut aig, f, &vars, &mut cnf, &QuantConfig::full());
        prop_assert!(res.remaining.is_empty());
        check_result(&aig, f, &vars, res.lit)?;
    }

    /// All ablation configurations agree with each other.
    #[test]
    fn configurations_agree(ops in ops_strategy(20), nvars in 1..3usize) {
        let (aig0, f) = build(&ops);
        let vars: Vec<Var> = (0..nvars).map(|i| aig0.input_var(i)).collect();
        let mut results = Vec::new();
        for cfg in [QuantConfig::naive(), QuantConfig::merge_only(), QuantConfig::full()] {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, f, &vars, &mut cnf, &cfg);
            check_result(&aig, f, &vars, res.lit)?;
            results.push(());
        }
        prop_assert_eq!(results.len(), 3);
    }

    /// The BDD baseline agrees with the circuit flow.
    #[test]
    fn bdd_baseline_agrees(ops in ops_strategy(20), nvars in 1..3usize) {
        let (mut aig, f) = build(&ops);
        let vars: Vec<Var> = (0..nvars).map(|i| aig.input_var(i)).collect();
        let (blit, _) = exists_bdd(&mut aig, f, &vars, usize::MAX).expect("no cap");
        check_result(&aig, f, &vars, blit)?;
    }

    /// Differential: the manager tuning never changes what `exists_many`
    /// computes. The reference `HashMap` rung, the cache-ablated rung,
    /// and the full dense/cached hot path each yield an exact `∃vars.F`,
    /// and toggling only the cofactor cache is *bit-identical* (same
    /// result literal, same node count) — the cache may only memoise
    /// what the uncached path would recompute identically.
    #[test]
    fn tuning_rungs_compute_the_same_exists(ops in ops_strategy(20), nvars in 1..3usize) {
        let rungs = [
            AigTuning::full(),
            AigTuning { cofactor_cache: false, ..AigTuning::full() },
            AigTuning::reference(),
        ];
        let mut lits = Vec::new();
        let mut counts = Vec::new();
        for tuning in rungs {
            let (mut aig, f) = build_with(&ops, tuning);
            let vars: Vec<Var> = (0..nvars).map(|i| aig.input_var(i)).collect();
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, f, &vars, &mut cnf, &QuantConfig::full());
            prop_assert!(res.remaining.is_empty());
            check_result(&aig, f, &vars, res.lit)?;
            lits.push(res.lit);
            counts.push(aig.num_nodes());
        }
        prop_assert_eq!(lits[0], lits[1], "cofactor cache changed the result");
        prop_assert_eq!(counts[0], counts[1], "cofactor cache changed the manager");
    }

    /// Partial quantification is sound: finishing the residuals yields
    /// the exact result.
    #[test]
    fn partial_quantification_is_sound(ops in ops_strategy(20), nvars in 1..4usize) {
        let (mut aig, f) = build(&ops);
        let vars: Vec<Var> = (0..nvars).map(|i| aig.input_var(i)).collect();
        let mut cnf = AigCnf::new();
        let tight = QuantConfig::full().with_budget(0.9);
        let res = exists_many(&mut aig, f, &vars, &mut cnf, &tight);
        // Finish the residuals without a budget.
        let fin = exists_many(&mut aig, res.lit, &res.remaining, &mut cnf, &QuantConfig::full());
        prop_assert!(fin.remaining.is_empty());
        check_result(&aig, f, &vars, fin.lit)?;
    }
}
