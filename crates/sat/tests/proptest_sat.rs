//! Property-based cross-checks of the CDCL solver against the exhaustive
//! reference oracle.

use proptest::prelude::*;

use cbq_sat::dimacs::Cnf;
use cbq_sat::drat::check_drat;
use cbq_sat::reference::{brute_force_count, brute_force_sat, ReferenceSolver};
use cbq_sat::{ProofMode, SatBackend, SatLit, SatResult, SatVar, Solver};

/// A random clause over `nvars` variables with 1..=4 literals.
fn clause_strategy(nvars: usize) -> impl Strategy<Value = Vec<SatLit>> {
    prop::collection::vec((0..nvars, any::<bool>()), 1..=4).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, pos)| SatVar::from_index(v).lit(pos))
            .collect()
    })
}

fn cnf_strategy(nvars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<Vec<SatLit>>> {
    prop::collection::vec(clause_strategy(nvars), 0..=max_clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The CDCL verdict agrees with exhaustive enumeration, and SAT models
    /// satisfy every clause.
    #[test]
    fn cdcl_agrees_with_brute_force(clauses in cnf_strategy(8, 40)) {
        let nvars = 8;
        let mut s = Solver::new();
        let vars: Vec<SatVar> = (0..nvars).map(|_| s.new_var()).collect();
        for c in &clauses {
            s.add_clause(c);
        }
        let expected = brute_force_sat(nvars, &clauses);
        match s.solve() {
            SatResult::Sat => {
                prop_assert!(expected.is_some(), "CDCL said SAT, oracle says UNSAT");
                for c in &clauses {
                    prop_assert!(
                        c.iter().any(|&l| {
                            let v = s.value(l.var()).unwrap_or(false);
                            v ^ l.is_negative()
                        }),
                        "model does not satisfy {c:?}"
                    );
                }
            }
            SatResult::Unsat => prop_assert!(expected.is_none(), "CDCL said UNSAT, oracle found a model"),
            SatResult::Unknown => prop_assert!(false, "no budget was set"),
        }
        let _ = vars;
    }

    /// Solving under assumptions equals solving with the assumptions added
    /// as unit clauses — and never damages the underlying database.
    #[test]
    fn assumptions_match_units(
        clauses in cnf_strategy(6, 24),
        assum in prop::collection::vec((0..6usize, any::<bool>()), 0..=3),
    ) {
        let nvars = 6;
        let mut incremental = Solver::new();
        let mut oracle_clauses = clauses.clone();
        for _ in 0..nvars {
            incremental.new_var();
        }
        for c in &clauses {
            incremental.add_clause(c);
        }
        // Deduplicate assumption variables to avoid contradictory pairs.
        let mut seen = std::collections::HashSet::new();
        let assumptions: Vec<SatLit> = assum
            .into_iter()
            .filter(|(v, _)| seen.insert(*v))
            .map(|(v, pos)| SatVar::from_index(v).lit(pos))
            .collect();
        for &a in &assumptions {
            oracle_clauses.push(vec![a]);
        }
        let expected = brute_force_sat(nvars, &oracle_clauses).is_some();
        let before = brute_force_sat(nvars, &clauses).is_some();
        let got = incremental.solve_with(&assumptions);
        prop_assert_eq!(got.is_sat(), expected);
        // The database itself must be untouched by the assumptions.
        let after = incremental.solve();
        prop_assert_eq!(after.is_sat(), before);
    }

    /// The arena solver and the reference backend agree through the
    /// [`SatBackend`] trait across *incremental* clause batches — the
    /// workload shape the activation-literal bridge produces (batches of
    /// guarded clauses between assumption solves).
    #[test]
    fn backends_agree_incrementally(
        batches in prop::collection::vec(cnf_strategy(7, 12), 1..=3),
        assum in prop::collection::vec((0..7usize, any::<bool>()), 0..=2),
    ) {
        let nvars = 7;
        let mut arena = Solver::new();
        let mut oracle = ReferenceSolver::new();
        for _ in 0..nvars {
            SatBackend::new_var(&mut arena);
            SatBackend::new_var(&mut oracle);
        }
        let mut seen = std::collections::HashSet::new();
        let assumptions: Vec<SatLit> = assum
            .into_iter()
            .filter(|(v, _)| seen.insert(*v))
            .map(|(v, pos)| SatVar::from_index(v).lit(pos))
            .collect();
        for batch in &batches {
            for c in batch {
                SatBackend::add_clause(&mut arena, c);
                SatBackend::add_clause(&mut oracle, c);
            }
            let a = SatBackend::solve(&mut arena);
            let o = SatBackend::solve(&mut oracle);
            prop_assert_eq!(a.is_sat(), o.is_sat(), "plain solve diverged");
            let a = SatBackend::solve_with(&mut arena, &assumptions);
            let o = SatBackend::solve_with(&mut oracle, &assumptions);
            prop_assert_eq!(a.is_sat(), o.is_sat(), "assumption solve diverged");
        }
    }

    /// Forcing tiny learnt caps (many reduce-DB rounds with arena
    /// compaction) never changes a verdict.
    #[test]
    fn reductions_preserve_verdicts(clauses in cnf_strategy(8, 48)) {
        let nvars = 8;
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let expected = brute_force_sat(nvars, &clauses).is_some();
        prop_assert_eq!(s.solve().is_sat(), expected);
        // Re-solve under each single-literal assumption: stresses the
        // learnt database (and its reductions) across many related calls.
        for v in 0..nvars {
            for pos in [false, true] {
                let a = SatVar::from_index(v).lit(pos);
                let mut oracle_clauses = clauses.clone();
                oracle_clauses.push(vec![a]);
                let expect = brute_force_sat(nvars, &oracle_clauses).is_some();
                prop_assert_eq!(s.solve_with(&[a]).is_sat(), expect);
            }
        }
    }

    /// Every assumption-free UNSAT answer must come with a DRAT proof
    /// that the built-in RUP checker accepts — from either backend.
    #[test]
    fn unsat_proofs_check(clauses in cnf_strategy(7, 36)) {
        let nvars = 7;
        let cnf = Cnf { num_vars: nvars, clauses: clauses.clone() };
        let backends: Vec<Box<dyn SatBackend>> =
            vec![Box::new(Solver::new()), Box::new(ReferenceSolver::new())];
        for mut b in backends {
            b.set_proof_mode(ProofMode::Drat);
            for _ in 0..nvars {
                b.new_var();
            }
            for c in &clauses {
                b.add_clause(c);
            }
            if b.solve() == SatResult::Unsat {
                let proof = b.drat_proof();
                prop_assert!(proof.is_some(), "UNSAT without a certificate");
                let stats = check_drat(&cnf, &proof.unwrap());
                prop_assert!(stats.is_ok(), "proof rejected: {:?}", stats.err());
            } else {
                prop_assert_eq!(b.drat_proof(), None);
            }
        }
    }

    /// The in-memory resolution trace replays: every derived clause's
    /// chain resolves to its stored literals, across incremental solves.
    #[test]
    fn resolution_traces_replay(batches in prop::collection::vec(cnf_strategy(7, 14), 1..=3)) {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        for _ in 0..7 {
            s.new_var();
        }
        for batch in &batches {
            for c in batch {
                s.add_clause(c);
            }
            let _ = s.solve();
            let verdict = s.proof().unwrap().verify();
            prop_assert!(verdict.is_ok(), "trace broken: {:?}", verdict.err());
        }
    }

    /// Proof logging is pure observation: decisions and conflicts are
    /// identical with proofs off and on.
    #[test]
    fn proof_logging_is_behaviourally_invisible(clauses in cnf_strategy(8, 40)) {
        let run = |mode: ProofMode| {
            let mut s = Solver::new();
            s.set_proof_mode(mode);
            for _ in 0..8 {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let r = s.solve();
            (r, s.stats().decisions, s.stats().conflicts, s.stats().propagations)
        };
        prop_assert_eq!(run(ProofMode::Off), run(ProofMode::Drat));
    }

    /// `failed_assumptions` is a genuine core: re-solving with just the
    /// core is still UNSAT.
    #[test]
    fn failed_assumptions_are_sound(
        clauses in cnf_strategy(6, 24),
        assum in prop::collection::vec((0..6usize, any::<bool>()), 1..=4),
    ) {
        let nvars = 6;
        let mut s = Solver::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        let mut seen = std::collections::HashSet::new();
        let assumptions: Vec<SatLit> = assum
            .into_iter()
            .filter(|(v, _)| seen.insert(*v))
            .map(|(v, pos)| SatVar::from_index(v).lit(pos))
            .collect();
        if s.solve_with(&assumptions) == SatResult::Unsat {
            let core: Vec<SatLit> = s.failed_assumptions().to_vec();
            prop_assert!(core.iter().all(|l| assumptions.contains(l)),
                "core {:?} not a subset of assumptions {:?}", core, assumptions);
            prop_assert_eq!(s.solve_with(&core), SatResult::Unsat);
        }
    }
}

#[test]
fn model_count_oracle_sanity() {
    // xor chain over 4 vars has 8 models.
    let v: Vec<SatVar> = (0..4).map(SatVar::from_index).collect();
    let clauses = vec![
        vec![v[0].pos(), v[1].pos(), v[2].pos(), v[3].pos()],
        vec![v[0].neg(), v[1].neg()],
    ];
    assert!(brute_force_count(4, &clauses) > 0);
}
