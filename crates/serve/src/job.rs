//! Request parsing and the socket-free job-processing core.
//!
//! [`process_check`] is the whole service pipeline minus the transport:
//! parse the model, consult the [`StructuralCache`], run (cold or
//! warm-started), record, and render the result line. The TCP layer in
//! [`crate::server`] is a thin shell around it, and the differential
//! test-suite drives it directly so cache correctness is checked without
//! sockets in the loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cbq_ckt::io::read_network;
use cbq_mc::json::run_to_json_fields;
use cbq_mc::{by_name, engine_names, Budget, Engine, Ic3, McRun};

use crate::cache::{CacheTier, ModelKey, StructuralCache};
use crate::json::Json;

/// Server-side resource ceilings. Every job budget is clamped against
/// these, so a request can tighten but never widen what the operator
/// allows — the cooperative-cancellation point for runaway jobs.
#[derive(Clone, Debug, Default)]
pub struct ServerCaps {
    /// Iteration/depth ceiling.
    pub max_steps: Option<usize>,
    /// Representation-node ceiling.
    pub max_nodes: Option<usize>,
    /// SAT-check ceiling.
    pub max_sat_checks: Option<u64>,
    /// Wall-clock ceiling per job.
    pub timeout: Option<Duration>,
}

fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl ServerCaps {
    /// The effective budget for a request: field-wise minimum of what
    /// the request asked for and what the server permits.
    pub fn clamp(&self, requested: &Budget) -> Budget {
        Budget {
            max_steps: tighter(requested.max_steps, self.max_steps),
            max_nodes: tighter(requested.max_nodes, self.max_nodes),
            max_sat_checks: tighter(requested.max_sat_checks, self.max_sat_checks),
            timeout: tighter(requested.timeout, self.timeout),
            cancel: requested.cancel.clone(),
        }
    }
}

/// A parsed `check` request, transport-independent.
#[derive(Clone, Debug)]
pub struct CheckRequest {
    /// Job identifier (client-chosen `id`, or server-assigned).
    pub id: u64,
    /// The model as sequential ASCII AIGER text.
    pub model: String,
    /// Registry engine name.
    pub engine: String,
    /// Requested budget (pre-clamp).
    pub budget: Budget,
    /// Whether the structural cache may serve and learn from this job.
    pub use_cache: bool,
}

impl CheckRequest {
    /// Extracts a `check` request from a parsed protocol message.
    /// `fallback_id` names the job when the client sent no `id`.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for an `error` event when required
    /// fields are missing or the engine name is unknown.
    pub fn from_json(msg: &Json, fallback_id: u64) -> Result<CheckRequest, String> {
        let model = msg
            .get("model")
            .and_then(Json::as_str)
            .ok_or("missing string field `model`")?
            .to_string();
        let engine = msg
            .get("engine")
            .and_then(Json::as_str)
            .unwrap_or("portfolio")
            .to_string();
        if !engine_names().contains(&engine.as_str()) {
            return Err(format!(
                "unknown engine `{engine}` (expected one of: {})",
                engine_names().join(", ")
            ));
        }
        let field = |name: &str| -> Result<Option<u64>, String> {
            match msg.get(name) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("field `{name}` must be a non-negative integer")),
            }
        };
        let mut budget = Budget::unlimited();
        budget.max_steps = field("steps")?.map(|n| n as usize);
        budget.max_nodes = field("nodes")?.map(|n| n as usize);
        budget.max_sat_checks = field("sat_checks")?;
        budget.timeout = field("timeout_ms")?.map(Duration::from_millis);
        Ok(CheckRequest {
            // 0 means "server assigns" (JSON job tags start at 1).
            id: field("id")?.filter(|&n| n != 0).unwrap_or(fallback_id),
            model,
            engine,
            budget,
            use_cache: msg.get("cache").and_then(Json::as_bool).unwrap_or(true),
        })
    }

    /// Renders this request as one protocol line (the client side of
    /// [`CheckRequest::from_json`]).
    pub fn to_json_line(&self) -> String {
        use cbq_mc::json::json_str;
        let mut line = String::from("{\"cmd\":\"check\"");
        if self.id != 0 {
            line.push_str(&format!(",\"id\":{}", self.id));
        }
        line.push_str(&format!(
            ",\"model\":{},\"engine\":{}",
            json_str(&self.model),
            json_str(&self.engine),
        ));
        if let Some(n) = self.budget.max_steps {
            line.push_str(&format!(",\"steps\":{n}"));
        }
        if let Some(n) = self.budget.max_nodes {
            line.push_str(&format!(",\"nodes\":{n}"));
        }
        if let Some(n) = self.budget.max_sat_checks {
            line.push_str(&format!(",\"sat_checks\":{n}"));
        }
        if let Some(t) = self.budget.timeout {
            line.push_str(&format!(",\"timeout_ms\":{}", t.as_millis()));
        }
        if !self.use_cache {
            line.push_str(",\"cache\":false");
        }
        line.push('}');
        line
    }
}

/// Locks a mutex, recovering from poisoning: a job that panicked while
/// holding the lock must not take every later job down with it. The
/// guarded state (cache, queue, streams) is written transactionally
/// enough that recovery is safe — at worst a panicked job's own record
/// is missing.
pub fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs one job inside a panic firewall: a panicking job yields an
/// `error` record for its id instead of unwinding through the worker
/// loop (where it would poison the shared queue/cache/stream mutexes and
/// kill every subsequent worker).
pub fn run_job_guarded<F>(job_id: u64, job: F) -> JobOutcome
where
    F: FnOnce() -> JobOutcome,
{
    catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        JobOutcome {
            line: error_line(job_id, &format!("job panicked: {msg}")),
            run: None,
            tier: CacheTier::Miss,
        }
    })
}

/// Renders an `error` event line.
pub fn error_line(job: u64, message: &str) -> String {
    format!(
        "{{\"event\":\"error\",\"job\":{job},\"message\":{}}}",
        cbq_mc::json::json_str(message)
    )
}

/// The outcome of one processed job: the wire line plus the run it
/// carries (when the model parsed), for callers that inspect results
/// in-process.
pub struct JobOutcome {
    /// The `result`/`error` line to stream back.
    pub line: String,
    /// The finished (or replayed) run; `None` on a request error.
    pub run: Option<McRun>,
    /// Which cache tier answered.
    pub tier: CacheTier,
}

/// Runs one `check` request against the shared cache: tier-1/2 replay
/// when possible, otherwise a cold or tier-3 warm-started engine run,
/// recorded back into the cache.
pub fn process_check(
    req: &CheckRequest,
    cache: &Mutex<StructuralCache>,
    caps: &ServerCaps,
) -> JobOutcome {
    let net = match read_network(&req.model, format!("job-{}", req.id)) {
        Ok(net) => net,
        Err(e) => {
            return JobOutcome {
                line: error_line(req.id, &format!("bad model: {e}")),
                run: None,
                tier: CacheTier::Miss,
            }
        }
    };
    let key = ModelKey::of(&net);

    // Replay tiers first; the lock is held only for the lookup.
    let mut seed = None;
    if req.use_cache {
        let mut cache = lock_recovering(cache);
        if let Some((run, tier)) = cache.lookup_run(&key, &req.engine) {
            let run = run.with_job(req.id);
            let line = result_line(&run, tier, &cache.stats.to_json());
            return JobOutcome {
                line,
                run: Some(run),
                tier,
            };
        }
        seed = cache.seed_for(&key, &req.engine);
    }

    let tier = if seed.is_some() {
        CacheTier::WarmStart
    } else {
        CacheTier::Miss
    };
    let budget = caps.clamp(&req.budget);
    let run = match seed {
        Some(seed) => Ic3 {
            seed,
            ..Ic3::default()
        }
        .check(&net, &budget),
        None => by_name(&req.engine)
            .expect("engine validated at parse")
            .check(&net, &budget),
    }
    .with_job(req.id);

    let stats_json = if req.use_cache {
        let mut cache = lock_recovering(cache);
        cache.record(&key, &req.engine, &run);
        cache.stats.to_json()
    } else {
        lock_recovering(cache).stats.to_json()
    };
    JobOutcome {
        line: result_line(&run, tier, &stats_json),
        run: Some(run),
        tier,
    }
}

fn result_line(run: &McRun, tier: CacheTier, stats_json: &str) -> String {
    format!(
        "{{\"event\":\"result\",{},\"cache\":{{\"tier\":{},\"hit\":{}}},\"cache_stats\":{}}}",
        run_to_json_fields(run),
        tier.number(),
        tier != CacheTier::Miss,
        stats_json,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;
    use cbq_ckt::io::write_network;

    fn check_req(net: &cbq_ckt::Network, engine: &str, id: u64) -> CheckRequest {
        CheckRequest {
            id,
            model: write_network(net),
            engine: engine.to_string(),
            budget: Budget::unlimited(),
            use_cache: true,
        }
    }

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let mut req = check_req(&generators::mutex(), "ic3", 7);
        req.budget = Budget::unlimited()
            .with_steps(10)
            .with_sat_checks(500)
            .with_timeout(Duration::from_millis(250));
        req.use_cache = false;
        let line = req.to_json_line();
        let msg = Json::parse(&line).unwrap();
        assert_eq!(msg.get("cmd").and_then(Json::as_str), Some("check"));
        let back = CheckRequest::from_json(&msg, 999).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.engine, "ic3");
        assert_eq!(back.model, req.model);
        assert_eq!(back.budget, req.budget);
        assert!(!back.use_cache);
    }

    #[test]
    fn parse_rejects_bad_requests() {
        let no_model = Json::parse(r#"{"cmd":"check","id":1}"#).unwrap();
        assert!(CheckRequest::from_json(&no_model, 1)
            .unwrap_err()
            .contains("model"));
        let bad_engine = Json::parse(r#"{"cmd":"check","model":"x","engine":"zchaff"}"#).unwrap();
        assert!(CheckRequest::from_json(&bad_engine, 1)
            .unwrap_err()
            .contains("unknown engine"));
        let bad_budget =
            Json::parse(r#"{"cmd":"check","model":"x","engine":"bmc","steps":-3}"#).unwrap();
        assert!(CheckRequest::from_json(&bad_budget, 1)
            .unwrap_err()
            .contains("steps"));
    }

    #[test]
    fn caps_clamp_fieldwise() {
        let caps = ServerCaps {
            max_steps: Some(10),
            max_sat_checks: Some(1000),
            ..ServerCaps::default()
        };
        let got = caps.clamp(&Budget::unlimited().with_steps(50).with_nodes(7));
        assert_eq!(got.max_steps, Some(10), "cap tightens");
        assert_eq!(got.max_nodes, Some(7), "request tightens");
        assert_eq!(got.max_sat_checks, Some(1000), "cap fills unset field");
        assert_eq!(got.timeout, None, "both unlimited");
    }

    #[test]
    fn second_identical_job_is_a_tier1_hit() {
        let cache = Mutex::new(StructuralCache::new());
        let caps = ServerCaps::default();
        let net = generators::token_ring(4);

        let cold = process_check(&check_req(&net, "ic3", 1), &cache, &caps);
        assert_eq!(cold.tier, CacheTier::Miss);
        let cold_run = cold.run.expect("ran");
        assert!(cold_run.verdict.is_safe());
        assert!(cold.line.contains("\"event\":\"result\""), "{}", cold.line);
        assert!(cold.line.contains("\"job\":1,"), "{}", cold.line);
        assert!(cold.line.contains("\"tier\":0"), "{}", cold.line);

        let hit = process_check(&check_req(&net, "ic3", 2), &cache, &caps);
        assert_eq!(hit.tier, CacheTier::WholeRun);
        let hit_run = hit.run.expect("replayed");
        assert_eq!(hit_run.verdict, cold_run.verdict);
        assert_eq!(hit_run.job, 2, "replay re-tagged with the new job id");
        assert!(hit.line.contains("\"tier\":1"), "{}", hit.line);
        assert!(hit.line.contains("\"tier1_hits\":1"), "{}", hit.line);
    }

    #[test]
    fn cache_opt_out_always_runs_cold() {
        let cache = Mutex::new(StructuralCache::new());
        let caps = ServerCaps::default();
        let net = generators::token_ring(4);
        let mut req = check_req(&net, "ic3", 1);
        let _ = process_check(&req, &cache, &caps);
        req.use_cache = false;
        req.id = 2;
        let again = process_check(&req, &cache, &caps);
        assert_eq!(again.tier, CacheTier::Miss);
        assert_eq!(cache.lock().unwrap().stats.lookups, 1, "no second lookup");
    }

    #[test]
    fn malformed_model_yields_an_error_event() {
        let cache = Mutex::new(StructuralCache::new());
        let out = process_check(
            &CheckRequest {
                id: 3,
                model: "not an aag".to_string(),
                engine: "bmc".to_string(),
                budget: Budget::unlimited(),
                use_cache: true,
            },
            &cache,
            &ServerCaps::default(),
        );
        assert!(out.run.is_none());
        assert!(out.line.contains("\"event\":\"error\""), "{}", out.line);
        assert!(out.line.contains("\"job\":3"), "{}", out.line);
    }

    #[test]
    fn panicking_job_yields_an_error_event_not_an_unwind() {
        let out = run_job_guarded(42, || panic!("model ate the stack"));
        assert!(out.run.is_none());
        assert!(out.line.contains("\"event\":\"error\""), "{}", out.line);
        assert!(out.line.contains("\"job\":42"), "{}", out.line);
        assert!(out.line.contains("model ate the stack"), "{}", out.line);
    }

    #[test]
    fn cache_survives_a_job_that_panicked_holding_the_lock() {
        let cache = Mutex::new(StructuralCache::new());
        let caps = ServerCaps::default();
        let net = generators::token_ring(4);
        // Warm the cache, then poison its mutex the way a panicking job
        // would: mid-critical-section.
        let _ = process_check(&check_req(&net, "ic3", 1), &cache, &caps);
        let poison = catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.lock().unwrap();
            panic!("job died holding the cache lock");
        }));
        assert!(poison.is_err());
        assert!(cache.is_poisoned(), "the panic must have poisoned the lock");
        // Later jobs recover the lock and still hit the cache.
        let hit = process_check(&check_req(&net, "ic3", 2), &cache, &caps);
        assert_eq!(hit.tier, CacheTier::WholeRun);
        assert!(hit.run.expect("replayed").verdict.is_safe());
    }

    #[test]
    fn server_caps_bound_the_job_budget() {
        let cache = Mutex::new(StructuralCache::new());
        let caps = ServerCaps {
            max_sat_checks: Some(1),
            ..ServerCaps::default()
        };
        let out = process_check(
            &check_req(&generators::token_ring(6), "ic3", 1),
            &cache,
            &caps,
        );
        let run = out.run.expect("ran");
        assert!(
            !run.verdict.is_conclusive(),
            "one SAT check cannot settle token_ring(6), got {}",
            run.verdict
        );
    }
}
