//! # cbq — Circuit Based Quantification
//!
//! A full reproduction of *"Circuit Based Quantification: Back to State
//! Set Manipulation within Unbounded Model Checking"* (Cabodi,
//! Crivellari, Nocco, Quer — DATE 2005), as a production-quality Rust
//! workspace.
//!
//! This facade crate re-exports every layer of the stack:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`aig`] | `cbq-aig` | And-Inverter Graph state-set representation |
//! | [`sat`] | `cbq-sat` | incremental CDCL SAT solver |
//! | [`cnf`] | `cbq-cnf` | shared-database Tseitin bridge |
//! | [`bdd`] | `cbq-bdd` | ROBDD package (sweeping + baseline MC) |
//! | [`cec`] | `cbq-cec` | equivalence checking / merge phase |
//! | [`synth`] | `cbq-synth` | don't-care optimisation phase |
//! | [`quant`] | `cbq-core` | **circuit-based quantifier elimination** |
//! | [`ckt`] | `cbq-ckt` | sequential networks + benchmark generators |
//! | [`mc`] | `cbq-mc` | UMC engines behind the unified `Engine`/`Budget` API |
//! | [`serve`] | `cbq-serve` | job service with a structural result cache |
//!
//! ## Quickstart
//!
//! Every model checker implements [`mc::Engine`] — `check(&net, &budget)`
//! — and is constructible by registry name. A [`mc::Budget`] bounds
//! steps, nodes, SAT checks, and wall-clock time; exhaustion yields
//! `Verdict::Bounded` rather than a hang.
//!
//! ```
//! use cbq::prelude::*;
//!
//! // Prove a token ring safe with the paper's engine.
//! let net = cbq::ckt::generators::token_ring(4);
//! let run = CircuitUmc::default().check(&net, &Budget::unlimited());
//! assert!(run.verdict.is_safe());
//!
//! // Any engine by name, as a trait object, under a budget.
//! let engine = <dyn Engine>::by_name("portfolio").expect("registered");
//! let run = engine.check(&net, &Budget::unlimited().with_steps(256));
//! assert!(run.verdict.is_safe());
//! ```
//!
//! See `examples/` for richer scenarios and `README.md` for the CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cbq_aig as aig;
pub use cbq_bdd as bdd;
pub use cbq_cec as cec;
pub use cbq_ckt as ckt;
pub use cbq_cnf as cnf;
pub use cbq_core as quant;
pub use cbq_mc as mc;
pub use cbq_sat as sat;
pub use cbq_serve as serve;
pub use cbq_synth as synth;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use cbq_aig::{Aig, Assignment, Cube, Lit, Var};
    pub use cbq_bdd::{BddManager, BddRef};
    pub use cbq_cec::{check_equiv, sweep, MergeOrder, SweepConfig};
    pub use cbq_ckt::{Network, Trace};
    pub use cbq_cnf::{AigCnf, CnfLifetime, EquivResult};
    pub use cbq_core::{exists_many, exists_one, substitute, QuantConfig, QuantResult};
    pub use cbq_mc::{
        BddUmc, Bmc, Budget, CircuitUmc, Engine, KInduction, McRun, McStats, Portfolio, Verdict,
    };
    pub use cbq_sat::{SatBackend, SatLit, SatResult, SatVar, Solver, SolverStats};
    pub use cbq_synth::{dc_simplify, optimize_disjunction, OptConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        assert_eq!(aig.and(a, Lit::TRUE), a);
    }
}
