//! Hand-rolled JSON rendering of [`McRun`] records and engine detail
//! statistics — the single wire format shared by `cbq check --json`,
//! `cbq sat --json`, and the `cbq serve` result stream (the bench
//! tooling's machine interface). No serialization dependency exists in
//! the workspace; these emitters are the counterpart of the service
//! crate's small recursive-descent parser.

use cbq_aig::AigPerfCounters;
use cbq_cnf::AigCnfStats;
use cbq_sat::SolverStats;

use crate::bmc::BmcStats;
use crate::bus::BusClientStats;
use crate::circuit_umc::CircuitUmcStats;
use crate::forward_umc::ForwardCircuitUmcStats;
use crate::ic3::Ic3Stats;
use crate::itp::ItpStats;
use crate::portfolio::PortfolioStats;
use crate::stateset::PartitionStats;
use crate::verdict::{McRun, Verdict};

/// Minimal JSON string escaping (engine names, human-readable reasons,
/// and serialized models; the full control-character range is escaped).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A `usize` slice as a JSON array.
pub fn json_usize_list(xs: &[usize]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// A `u64` slice as a JSON array.
pub fn json_u64_list(xs: &[u64]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// The partitioned-traversal counters as a JSON object.
pub fn partition_json(p: &PartitionStats) -> String {
    format!(
        "{{\"trajectory\":{},\"final\":{},\"max_cone\":{},\"prunes\":{},\"splits\":{},\
         \"worker_panics\":{}}}",
        json_usize_list(&p.trajectory),
        p.trajectory.last().copied().unwrap_or(1),
        p.max_cone,
        p.prunes,
        p.splits,
        json_usize_list(&p.worker_panics)
    )
}

/// The solver-core counters as a JSON object (shared by `cbq sat --json`
/// and the `check --json` engine detail).
pub fn solver_json(s: &SolverStats) -> String {
    format!(
        "{{\"solves\":{},\"decisions\":{},\"propagations\":{},\"conflicts\":{},\
         \"restarts\":{},\"learnts\":{},\"deleted\":{},\"reduces\":{},\
         \"recycled_vars\":{},\"arena_bytes\":{},\"lbd_hist\":{}}}",
        s.solves,
        s.decisions,
        s.propagations,
        s.conflicts,
        s.restarts,
        s.learnts,
        s.deleted,
        s.reduces,
        s.recycled_vars,
        s.arena_bytes(),
        json_u64_list(&s.lbd_hist)
    )
}

/// The SAT-bridge counters as a JSON object (`check --json` detail).
pub fn cnf_json(s: &AigCnfStats) -> String {
    format!(
        "{{\"encoded_ands\":{},\"checks\":{},\"migrations\":{},\"retirements\":{},\
         \"clauses_retired\":{},\"learnts_retained\":{}}}",
        s.encoded_ands,
        s.checks,
        s.migrations,
        s.retirements,
        s.clauses_retired,
        s.learnts_retained
    )
}

/// The AIG-manager hot-path counters as a JSON object (`check --json`
/// detail for the quantification engines and the serve stats stream).
pub fn quant_perf_json(p: &AigPerfCounters) -> String {
    format!(
        "{{\"strash_probes\":{},\"scratch_walk_nodes\":{},\"cofactor_cache_hits\":{}}}",
        p.strash_probes, p.scratch_walk_nodes, p.cofactor_cache_hits
    )
}

/// The lemma-bus consumer counters as a JSON object (`check --json`
/// detail for bus-wired engines and the portfolio aggregate).
pub fn bus_client_json(s: &BusClientStats) -> String {
    format!(
        "{{\"lemmas_admitted\":{},\"lemmas_rejected\":{},\"merges_learned\":{},\
         \"merges_rejected\":{}}}",
        s.lemmas_admitted, s.lemmas_rejected, s.merges_learned, s.merges_rejected
    )
}

/// The fields of [`run_to_json`] *without* the enclosing braces, so
/// callers (the serve result stream) can append fields of their own —
/// cache tier, queue timing — to the same flat object.
pub fn run_to_json_fields(run: &McRun) -> String {
    let verdict = match &run.verdict {
        Verdict::Safe { iterations } => {
            format!("\"verdict\":\"safe\",\"proved_at\":{iterations}")
        }
        Verdict::Unsafe { trace } => {
            format!("\"verdict\":\"unsafe\",\"cex_depth\":{}", trace.len() - 1)
        }
        Verdict::Bounded { resource, limit } => format!(
            "\"verdict\":\"bounded\",\"resource\":{},\"limit\":{limit}",
            json_str(&resource.to_string())
        ),
        Verdict::Unknown { reason } => {
            format!("\"verdict\":\"unknown\",\"reason\":{}", json_str(reason))
        }
    };
    let job = if run.job != 0 {
        format!("\"job\":{},", run.job)
    } else {
        String::new()
    };
    let mut detail = String::new();
    if let Some(d) = run.detail::<CircuitUmcStats>() {
        detail = format!(
            ",\"frontier_sizes\":{},\"reached_size\":{},\"quant_aborts\":{},\
             \"ganai_cofactors\":{},\"quant_perf\":{},\"sweep_runs\":{},\
             \"partitions\":{},\"solver\":{},\"cnf\":{}",
            json_usize_list(&d.frontier_sizes),
            d.reached_size,
            d.quant_aborts,
            d.ganai_cofactors,
            quant_perf_json(&d.quant_perf),
            d.sweep.runs,
            partition_json(&d.partitions),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    } else if let Some(d) = run.detail::<ForwardCircuitUmcStats>() {
        detail = format!(
            ",\"frontier_sizes\":{},\"quant_aborts\":{},\"ganai_cofactors\":{},\
             \"quant_perf\":{},\"sweep_runs\":{},\"partitions\":{},\
             \"solver\":{},\"cnf\":{}",
            json_usize_list(&d.frontier_sizes),
            d.quant_aborts,
            d.ganai_cofactors,
            quant_perf_json(&d.quant_perf),
            d.sweep.runs,
            partition_json(&d.partitions),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    } else if let Some(d) = run.detail::<Ic3Stats>() {
        detail = format!(
            ",\"frames\":{},\"obligations\":{},\"clauses\":{},\"pushed\":{},\
             \"gen_drops\":{},\"tern_drops\":{},\"ctg_blocked\":{},\"ctg_deep_blocked\":{},\
             \"inf_clauses\":{},\"subsumed\":{},\"seeded\":{},\"seed_rejected\":{},\
             \"lemma_count\":{},\"published\":{},\"bus\":{},\"solver\":{},\"cnf\":{}",
            d.frames,
            d.obligations,
            d.clauses,
            d.pushed,
            d.gen_drops,
            d.tern_drops,
            d.ctg_blocked,
            d.ctg_deep_blocked,
            d.inf_clauses,
            d.subsumed,
            d.seeded,
            d.seed_rejected,
            d.lemmas.len(),
            d.published,
            bus_client_json(&d.bus),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    } else if let Some(d) = run.detail::<ItpStats>() {
        detail = format!(
            ",\"frames\":{},\"refinements\":{},\"restarts\":{},\"interpolants\":{},\
             \"trace_clauses\":{},\"itp_nodes\":{},\"published\":{}",
            d.frames,
            d.refinements,
            d.restarts,
            d.interpolants,
            d.trace_clauses,
            d.itp_nodes,
            d.published
        );
    } else if let Some(d) = run.detail::<BmcStats>() {
        detail = format!(
            ",\"depth_reached\":{},\"unrolled_nodes\":{},\"latches_total\":{},\
             \"latches_stuck\":{},\"latches_pruned\":{},\"coi_lemmas_skipped\":{},\
             \"bus\":{}",
            d.depth_reached,
            d.unrolled_nodes,
            d.latches_total,
            d.latches_stuck,
            d.latches_pruned,
            d.coi_lemmas_skipped,
            bus_client_json(&d.bus)
        );
    } else if let Some(d) = run.detail::<PortfolioStats>() {
        let members: Vec<String> = d
            .runs
            .iter()
            .map(|(name, r)| {
                format!(
                    "{{\"engine\":{},\"verdict\":{},\"elapsed_ms\":{:.3}}}",
                    json_str(name),
                    json_str(&r.verdict.to_string()),
                    r.stats.elapsed.as_secs_f64() * 1e3
                )
            })
            .collect();
        let bus = match &d.bus {
            Some(b) => format!(
                ",\"bus\":{{\"published_cubes\":{},\"published_merges\":{},\
                 \"clients\":{}}}",
                b.published.cubes,
                b.published.merges,
                bus_client_json(&b.clients)
            ),
            None => String::new(),
        };
        detail = format!(
            ",\"parallel\":{},\"members\":[{}]{bus}",
            d.parallel,
            members.join(",")
        );
    }
    format!(
        "{job}{verdict},\"engine\":{},\"iterations\":{},\"peak_nodes\":{},\
         \"sat_checks\":{},\"elapsed_ms\":{:.3}{detail}",
        json_str(run.stats.engine),
        run.stats.iterations,
        run.stats.peak_nodes,
        run.stats.sat_checks,
        run.stats.elapsed.as_secs_f64() * 1e3
    )
}

/// The `McRun` common stats record — plus the engine-specific detail
/// when the type is known — as one flat JSON object.
pub fn run_to_json(run: &McRun) -> String {
    format!("{{{}}}", run_to_json_fields(run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budget, Engine};
    use crate::ic3::Ic3;
    use cbq_ckt::generators;

    #[test]
    fn escapes_and_shapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_usize_list(&[1, 2]), "[1,2]");
        assert_eq!(json_u64_list(&[]), "[]");
    }

    #[test]
    fn run_json_carries_job_and_detail() {
        let run = Ic3::default()
            .check(&generators::token_ring(4), &Budget::unlimited())
            .with_job(42);
        let json = run_to_json(&run);
        assert!(json.starts_with("{\"job\":42,"), "got {json}");
        assert!(json.contains("\"verdict\":\"safe\""));
        assert!(json.contains("\"engine\":\"ic3\""));
        assert!(json.contains("\"subsumed\":"));
        assert!(json.contains("\"tern_drops\":"));
        assert!(json.contains("\"ctg_blocked\":"));
        assert!(json.contains("\"inf_clauses\":"));
        assert!(json.contains("\"recycled_vars\":"));
        assert!(json.ends_with('}'));
        // Field form drops the braces but keeps the content.
        assert_eq!(format!("{{{}}}", run_to_json_fields(&run)), json);
    }

    #[test]
    fn circuit_and_bmc_json_carry_quant_and_coi_detail() {
        use crate::bmc::Bmc;
        use crate::circuit_umc::CircuitUmc;
        let run = CircuitUmc::default().check(&generators::mutex_bug(), &Budget::unlimited());
        let json = run_to_json(&run);
        assert!(
            json.contains("\"quant_perf\":{\"strash_probes\":"),
            "got {json}"
        );
        assert!(json.contains("\"scratch_walk_nodes\":"), "got {json}");
        assert!(json.contains("\"cofactor_cache_hits\":"), "got {json}");
        let run = Bmc::default().check(&generators::mutex_bug(), &Budget::unlimited());
        let json = run_to_json(&run);
        assert!(json.contains("\"verdict\":\"unsafe\""), "got {json}");
        assert!(json.contains("\"depth_reached\":2"), "got {json}");
        assert!(json.contains("\"latches_stuck\":"), "got {json}");
        assert!(json.contains("\"latches_pruned\":"), "got {json}");
        assert!(json.contains("\"coi_lemmas_skipped\":"), "got {json}");
    }

    #[test]
    fn itp_json_carries_interpolation_detail() {
        use crate::itp::Itp;
        let run = Itp::default().check(&generators::token_ring(4), &Budget::unlimited());
        let json = run_to_json(&run);
        assert!(json.contains("\"verdict\":\"safe\""), "got {json}");
        assert!(json.contains("\"engine\":\"itp\""), "got {json}");
        assert!(json.contains("\"interpolants\":"), "got {json}");
        assert!(json.contains("\"trace_clauses\":"), "got {json}");
        assert!(json.contains("\"refinements\":"), "got {json}");
    }

    #[test]
    fn portfolio_json_reports_mode_members_and_bus() {
        use crate::portfolio::Portfolio;
        let run = Portfolio::standard_parallel(true)
            .check(&generators::mutex_bug(), &Budget::unlimited());
        let json = run_to_json(&run);
        assert!(json.contains("\"verdict\":\"unsafe\""), "got {json}");
        assert!(json.contains("\"parallel\":true"), "got {json}");
        assert!(json.contains("\"members\":[{\"engine\":"), "got {json}");
        assert!(json.contains("\"published_cubes\":"), "got {json}");
        assert!(json.contains("\"lemmas_admitted\":"), "got {json}");
        // Sequential runs carry the same branch, without bus stats.
        let run = Portfolio::standard().check(&generators::mutex_bug(), &Budget::unlimited());
        let json = run_to_json(&run);
        assert!(json.contains("\"parallel\":false"), "got {json}");
        assert!(!json.contains("\"published_cubes\""), "got {json}");
    }
}
