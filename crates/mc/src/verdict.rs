//! Verdicts, common statistics, and the run record every engine returns.

use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use cbq_ckt::Trace;

/// A resource class a [`crate::Budget`] can bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Resource {
    /// Engine iterations / unrolling depth / induction depth.
    Steps,
    /// Representation nodes (AIG or BDD) in the working manager.
    Nodes,
    /// Assumption-based SAT checks issued.
    SatChecks,
    /// Wall-clock time.
    WallClock,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Steps => write!(f, "step"),
            Resource::Nodes => write!(f, "node"),
            Resource::SatChecks => write!(f, "SAT-check"),
            Resource::WallClock => write!(f, "wall-clock"),
        }
    }
}

/// Outcome of a model-checking run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The bad states are unreachable; `iterations` is the number of
    /// fixpoint iterations (or the inductive depth) that proved it.
    Safe {
        /// Iterations/depth at which the proof closed.
        iterations: usize,
    },
    /// A concrete counterexample trace was found.
    ///
    /// # Counterexample-length invariant
    ///
    /// Every engine normalises its witness to the same shape:
    /// `trace.len() == depth + 1`, where `depth` is the 0-based index of
    /// the step at which `bad` fires. The trace carries exactly one
    /// primary-input vector per step, starting from the initial state,
    /// and its **last** vector is the one that fires `bad` — so a
    /// violation in the initial state is a 1-step trace whose single
    /// input vector fires `bad` without advancing, a BMC hit at
    /// unrolling depth `k` is a `k + 1`-step trace, and `cbq check
    /// --json` reports `cex_depth = trace.len() - 1`. Engines with a
    /// minimality guarantee ([`crate::EngineSpec::minimal_cex`]) report
    /// the smallest such `depth`; the others (IC3) still honour the
    /// shape, just not minimality.
    Unsafe {
        /// The witness trace (replayable on the network).
        trace: Trace,
    },
    /// A [`crate::Budget`] limit was exhausted before the engine could
    /// conclude — the caller chose the bound, unlike [`Verdict::Unknown`]
    /// where the engine itself gave up.
    Bounded {
        /// The resource whose budget ran out.
        resource: Resource,
        /// The budget value that was exhausted (milliseconds for
        /// [`Resource::WallClock`], a count otherwise).
        limit: u64,
    },
    /// The engine gave up (internal bound exhausted, representation
    /// blow-up, incomplete method, …).
    Unknown {
        /// Human-readable reason.
        reason: String,
    },
}

impl Verdict {
    /// Whether the verdict proves the property.
    pub fn is_safe(&self) -> bool {
        matches!(self, Verdict::Safe { .. })
    }

    /// Whether the verdict refutes the property.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, Verdict::Unsafe { .. })
    }

    /// Whether the verdict settles the property either way.
    pub fn is_conclusive(&self) -> bool {
        self.is_safe() || self.is_unsafe()
    }

    /// Whether a resource budget cut the run short.
    pub fn is_bounded(&self) -> bool {
        matches!(self, Verdict::Bounded { .. })
    }

    /// The counterexample, if any.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            Verdict::Unsafe { trace } => Some(trace),
            _ => None,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe { iterations } => write!(f, "safe (after {iterations} iterations)"),
            Verdict::Unsafe { trace } => write!(f, "unsafe (cex of {} steps)", trace.len()),
            Verdict::Bounded { resource, limit } => {
                write!(f, "bounded ({resource} budget {limit} exhausted)")
            }
            Verdict::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// The resource summary every engine reports, whatever its internals.
///
/// Engine-specific counters (frontier size profiles, cofactor counts, …)
/// stay reachable through [`McRun::detail`].
#[derive(Clone, Debug, Default)]
pub struct McStats {
    /// Registry name of the engine that produced the run.
    pub engine: &'static str,
    /// Fixpoint iterations, unrolling depth, or induction depth reached.
    pub iterations: usize,
    /// Peak node count of the working representation (AIG or BDD).
    pub peak_nodes: usize,
    /// Assumption-based SAT checks issued (0 for pure-BDD engines).
    pub sat_checks: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// A verdict bundled with statistics: the uniform return value of
/// [`crate::Engine::check`].
#[derive(Clone)]
pub struct McRun {
    /// The verdict.
    pub verdict: Verdict,
    /// The common statistics record.
    pub stats: McStats,
    /// Caller-assigned job identifier (0 outside a job context). Set by
    /// schedulers — e.g. `cbq serve` — so streamed run records stay
    /// attributable to the request that produced them.
    pub job: u64,
    /// Engine-specific statistics, downcastable via [`McRun::detail`].
    detail: Option<Arc<dyn Any + Send + Sync>>,
}

impl McRun {
    /// Bundles a verdict with the common statistics.
    pub fn new(verdict: Verdict, stats: McStats) -> McRun {
        McRun {
            verdict,
            stats,
            job: 0,
            detail: None,
        }
    }

    /// Attaches an engine-specific statistics record.
    pub fn with_detail<T: Any + Send + Sync>(mut self, detail: T) -> McRun {
        self.detail = Some(Arc::new(detail));
        self
    }

    /// Tags the run with a caller-assigned job identifier.
    pub fn with_job(mut self, job: u64) -> McRun {
        self.job = job;
        self
    }

    /// The engine-specific statistics, if the run carries a `T`.
    ///
    /// ```
    /// use cbq_ckt::generators;
    /// use cbq_mc::{Budget, CircuitUmc, CircuitUmcStats, Engine};
    ///
    /// let run = CircuitUmc::default().check(&generators::mutex(), &Budget::unlimited());
    /// let detail = run.detail::<CircuitUmcStats>().expect("circuit stats");
    /// assert!(!detail.frontier_sizes.is_empty());
    /// ```
    pub fn detail<T: Any>(&self) -> Option<&T> {
        self.detail.as_ref()?.downcast_ref()
    }
}

// The detail payload is type-erased, so `Debug` is written by hand.
impl fmt::Debug for McRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("McRun")
            .field("verdict", &self.verdict)
            .field("stats", &self.stats)
            .field("has_detail", &self.detail.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_display() {
        let safe = Verdict::Safe { iterations: 3 };
        assert!(safe.is_safe());
        assert!(!safe.is_unsafe());
        assert!(safe.is_conclusive());
        assert!(safe.trace().is_none());
        assert!(format!("{safe}").contains("safe"));
        let unsafe_v = Verdict::Unsafe {
            trace: Trace::new(vec![vec![true]]),
        };
        assert!(unsafe_v.is_unsafe());
        assert!(unsafe_v.is_conclusive());
        assert_eq!(unsafe_v.trace().unwrap().len(), 1);
        let unk = Verdict::Unknown {
            reason: "bound".into(),
        };
        assert!(!unk.is_safe() && !unk.is_unsafe() && !unk.is_conclusive());
        let bounded = Verdict::Bounded {
            resource: Resource::Steps,
            limit: 4,
        };
        assert!(bounded.is_bounded() && !bounded.is_conclusive());
        assert!(format!("{bounded}").contains("step budget 4"));
    }

    #[test]
    fn detail_downcast() {
        #[derive(Debug, PartialEq)]
        struct Extra(u32);
        let run =
            McRun::new(Verdict::Safe { iterations: 1 }, McStats::default()).with_detail(Extra(7));
        assert_eq!(run.detail::<Extra>(), Some(&Extra(7)));
        assert!(run.detail::<String>().is_none());
        let cloned = run.clone();
        assert_eq!(cloned.detail::<Extra>(), Some(&Extra(7)));
        assert!(format!("{cloned:?}").contains("has_detail"));
    }
}
