//! Regenerates the evaluation tables/figures (E1–E8 of `DESIGN.md`).
//!
//! ```text
//! cargo run --release -p cbq-bench --bin report            # all
//! cargo run --release -p cbq-bench --bin report -- e1 e6   # selected
//! ```

use cbq_bench::{run_experiment, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        match run_experiment(&id) {
            Some(table) => print!("{table}"),
            None => {
                eprintln!("unknown experiment `{id}` (expected one of {EXPERIMENTS:?})");
                std::process::exit(2);
            }
        }
    }
}
