//! E4 / Fig. 2 — merge-tier effectiveness (strash / BDD sweep / SAT).

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_bench::preimage_workload;
use cbq_cec::{sweep, SweepConfig};
use cbq_cnf::AigCnf;
use cbq_ckt::generators;

fn bench_tiers(c: &mut Criterion) {
    let net = generators::fifo_ctrl(4);
    let (aig0, pre, pis) = preimage_workload(&net, 1);
    let v = pis[0];
    let mut g = c.benchmark_group("e4-tiers");
    g.sample_size(10);
    for (label, use_bdd, use_sat) in [
        ("bdd-only", true, false),
        ("sat-only", false, true),
        ("bdd+sat", true, true),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut aig = aig0.clone();
                let (f1, f0) = aig.cofactors(pre, v);
                let mut cnf = AigCnf::new();
                let cfg = SweepConfig {
                    use_bdd_sweep: use_bdd,
                    use_sat,
                    ..SweepConfig::default()
                };
                sweep(&mut aig, &[f1, f0], &mut cnf, &cfg).stats
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
