//! The portfolio engine: member engines composed over one shared budget.
//!
//! The paper's Section 4 pitch is that circuit quantification and SAT
//! pre-image are stronger *combined* than either alone; the portfolio
//! expresses that as engine composition, in two execution modes.
//!
//! **Sequential** (the default): members run in order and the first
//! conclusive verdict (safe or unsafe) wins. The caller's [`Budget`] is
//! shared: cumulative axes (steps, SAT checks) hand each member whatever
//! the previous members left over, the wall clock is divided among the
//! members still to run (so an early member cannot starve the rest), and
//! the node limit — a peak, not a sum, since each member builds and
//! drops its own manager — passes through whole.
//!
//! **Parallel** ([`Portfolio::standard_parallel`]): every member runs
//! concurrently on its own scoped thread over the caller's *full*
//! budget, with first-conclusive-answer cancellation through the
//! cooperative cancel flag of [`Budget::with_cancel`]. A member that
//! concludes cancels every *later* member but lets earlier ones finish,
//! so the winner — the smallest-index conclusive member — is exactly the
//! member that wins the sequential race, verdict and trace included;
//! wall clock drops from the *sum* of the members up to the winner to
//! their *max*. On top, the members share a [`LemmaBus`]: IC3 publishes
//! pushed frame clauses that BMC/k-induction re-validate and assume, and
//! a sweep **scout** thread publishes SAT-proven node merges of the
//! original next-state/bad cones that IC3 absorbs. Every consumer
//! re-validates everything it reads (see [`crate::bus`]), so bus traffic
//! can cost queries but never a verdict.
//!
//! The standard lineup — BMC for quick refutation, k-induction for quick
//! proofs, IC3 for convergence on deep non-inductive properties, then
//! the circuit and BDD traversals — settles easy instances in the cheap
//! engines and only pays for a full traversal when it must.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cbq_ckt::Network;

use crate::bdd_umc::BddUmc;
use crate::bmc::{Bmc, BmcStats};
use crate::bus::{BusClientStats, BusCounts, LemmaBus};
use crate::circuit_umc::CircuitUmc;
use crate::engine::{Budget, Engine, Meter};
use crate::ic3::{Ic3, Ic3Stats};
use crate::induction::{KInduction, KInductionStats};
use crate::itp::Itp;
use crate::sweep::merge_scout;
use crate::verdict::{McRun, McStats, Resource, Verdict};

/// Runs member engines — sequentially or in parallel — and returns the
/// first conclusive verdict (in member order).
pub struct Portfolio {
    /// The member engines, in priority order (index order is the
    /// sequential execution order *and* the parallel winner priority).
    pub members: Vec<Box<dyn Engine>>,
    /// Run members concurrently on scoped threads instead of slicing the
    /// budget sequentially.
    pub parallel: bool,
    /// The lemma bus shared by the members (parallel mode only). Wired
    /// into the members at construction by
    /// [`Portfolio::standard_parallel`]; also spawns the merge scout.
    /// Reusing one portfolio across models is sound — consumers
    /// re-validate against their own model — but stale cross-model
    /// publications waste admission queries, so prefer one portfolio per
    /// model when the bus is on.
    pub bus: Option<Arc<LemmaBus>>,
}

/// Bus traffic of one parallel portfolio run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortfolioBusStats {
    /// Publications during this run (cubes from IC3, merges from the
    /// scout).
    pub published: BusCounts,
    /// Consumer-side traffic, aggregated over all members (admissions,
    /// rejections, merges learned/rejected).
    pub clients: BusClientStats,
}

/// Per-member outcomes of a [`Portfolio`] run, attached as the run's
/// detail record.
#[derive(Clone, Debug)]
pub struct PortfolioStats {
    /// `(engine name, run)` for every member that executed, in member
    /// order. Sequentially, the winning member (if any) is last; in
    /// parallel mode every member has an entry and cancelled losers
    /// report `Unknown`.
    pub runs: Vec<(&'static str, McRun)>,
    /// Whether the members ran concurrently.
    pub parallel: bool,
    /// Lemma-bus traffic of this run (parallel mode with the bus on).
    pub bus: Option<PortfolioBusStats>,
}

impl Portfolio {
    /// A sequential portfolio over the given members.
    pub fn new(members: Vec<Box<dyn Engine>>) -> Portfolio {
        Portfolio {
            members,
            parallel: false,
            bus: None,
        }
    }

    /// The standard lineup: `bmc`, `kind`, `ic3`, `itp`, `circuit`, `bdd`, with
    /// member depth caps tightened so the refutation-only stages finish
    /// fast. IC3 sits between the inductive prover and the full
    /// traversals: it converges on deep non-inductive properties that
    /// k-induction's depth cap misses, without paying for a state-set
    /// fixpoint.
    pub fn standard() -> Portfolio {
        Portfolio::new(Portfolio::standard_members(None))
    }

    /// The standard lineup in parallel mode, optionally wired to a
    /// shared [`LemmaBus`] (which also enables the merge scout thread).
    pub fn standard_parallel(bus: bool) -> Portfolio {
        let bus = bus.then(|| Arc::new(LemmaBus::new()));
        Portfolio {
            members: Portfolio::standard_members(bus.clone()),
            parallel: true,
            bus,
        }
    }

    /// The standard members, with the bus handle wired into the engines
    /// that speak it (BMC and k-induction consume cubes, IC3 publishes
    /// cubes and absorbs merges, interpolation publishes singleton
    /// invariants on safe conclusions).
    fn standard_members(bus: Option<Arc<LemmaBus>>) -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(Bmc {
                max_depth: 32,
                bus: bus.clone(),
                ..Bmc::default()
            }),
            Box::new(KInduction {
                max_k: 40,
                simple_path: true,
                bus: bus.clone(),
            }),
            Box::new(Ic3 {
                bus: bus.clone(),
                ..Ic3::default()
            }),
            Box::new(Itp {
                bus,
                ..Itp::default()
            }),
            Box::new(CircuitUmc::default()),
            Box::new(BddUmc::default()),
        ]
    }
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::standard()
    }
}

/// Closes a portfolio run record.
fn finish(verdict: Verdict, mut stats: McStats, detail: PortfolioStats, meter: &Meter) -> McRun {
    stats.elapsed = meter.elapsed();
    McRun::new(verdict, stats).with_detail::<PortfolioStats>(detail)
}

/// The caller's own limit on `resource`, for rewriting a member's
/// slice-derived `Bounded` verdict. Members are only ever bounded on
/// axes the caller budgeted, so this is `Some` in practice.
fn caller_limit(budget: &Budget, resource: Resource) -> Option<u64> {
    match resource {
        Resource::Steps => budget.max_steps.map(|s| s as u64),
        Resource::Nodes => budget.max_nodes.map(|s| s as u64),
        Resource::SatChecks => budget.max_sat_checks,
        Resource::WallClock => budget.timeout.map(|t| t.as_millis() as u64),
    }
}

/// Rewrites a member's `Bounded` verdict to cite the caller's own limit
/// (a member sees its slice, the caller set the budget).
fn cite_caller(budget: &Budget, verdict: Verdict) -> Verdict {
    match verdict {
        Verdict::Bounded { resource, limit } => Verdict::Bounded {
            resource,
            limit: caller_limit(budget, resource).unwrap_or(limit),
        },
        other => other,
    }
}

/// Folds one member's bus-consumer counters into the aggregate.
fn absorb_client_stats(clients: &mut BusClientStats, run: &McRun) {
    if let Some(s) = run.detail::<BmcStats>() {
        clients.absorb(&s.bus);
    } else if let Some(s) = run.detail::<KInductionStats>() {
        clients.absorb(&s.bus);
    } else if let Some(s) = run.detail::<Ic3Stats>() {
        clients.absorb(&s.bus);
    }
}

impl Engine for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let stats = McStats {
            engine: self.name(),
            ..McStats::default()
        };
        let detail = PortfolioStats {
            runs: Vec::new(),
            parallel: self.parallel,
            bus: None,
        };
        if self.members.is_empty() {
            let verdict = Verdict::Unknown {
                reason: "portfolio has no members".to_string(),
            };
            return finish(verdict, stats, detail, &meter);
        }
        // A zero budget bounds the portfolio before any member runs.
        if let Some(verdict) = meter.exceeded(0, 0, 0) {
            return finish(verdict, stats, detail, &meter);
        }
        if self.parallel {
            self.check_parallel(net, budget, meter, stats, detail)
        } else {
            self.check_sequential(net, budget, meter, stats, detail)
        }
    }
}

impl Portfolio {
    fn check_sequential(
        &self,
        net: &Network,
        budget: &Budget,
        meter: Meter,
        mut stats: McStats,
        mut detail: PortfolioStats,
    ) -> McRun {
        let mut last_bounded: Option<Verdict> = None;
        for (i, member) in self.members.iter().enumerate() {
            let left = (self.members.len() - i) as u32;
            // Divide the remaining clock among the members still to run,
            // so an early member cannot starve the rest. Once the
            // remainder rounds to zero milliseconds there is no slice
            // worth handing out: stop citing the caller's own limit
            // instead of running a member against `limit: 0`.
            let mut slice_timeout = None;
            if let Some(t) = budget.timeout {
                let remaining = t.saturating_sub(meter.elapsed());
                if remaining < Duration::from_millis(1) {
                    last_bounded = Some(Verdict::Bounded {
                        resource: Resource::WallClock,
                        limit: t.as_millis() as u64,
                    });
                    break;
                }
                slice_timeout = Some((remaining / left).max(Duration::from_millis(1)));
            }
            let slice = Budget {
                // Cumulative axes: whatever the caller's budget has left.
                max_steps: budget.max_steps.map(|s| s.saturating_sub(stats.iterations)),
                max_sat_checks: budget
                    .max_sat_checks
                    .map(|s| s.saturating_sub(stats.sat_checks)),
                // Peak axis: each member builds and drops its own
                // manager, so the caller's limit applies whole.
                max_nodes: budget.max_nodes,
                timeout: slice_timeout,
                // Cooperative cancellation passes straight through.
                cancel: budget.cancel.clone(),
            };
            let run = member.check(net, &slice);
            // A member bounded on a cumulative axis consumed exactly its
            // slice limit (engines trip at `spent >= limit`); its own
            // iteration counter can sit one below that, which would
            // over-grant the next member.
            stats.iterations += match run.verdict {
                Verdict::Bounded {
                    resource: Resource::Steps,
                    limit,
                } => limit as usize,
                _ => run.stats.iterations,
            };
            stats.sat_checks += match run.verdict {
                Verdict::Bounded {
                    resource: Resource::SatChecks,
                    limit,
                } => limit,
                _ => run.stats.sat_checks,
            };
            stats.peak_nodes = stats.peak_nodes.max(run.stats.peak_nodes);
            let conclusive = run.verdict.is_conclusive();
            if run.verdict.is_bounded() {
                last_bounded = Some(run.verdict.clone());
            }
            let verdict = run.verdict.clone();
            detail.runs.push((member.name(), run));
            if conclusive {
                return finish(verdict, stats, detail, &meter);
            }
            // Stop once the caller's own budget is spent — this reports
            // the limits the caller actually set, not a member's slice.
            if let Some(bounded) =
                meter.exceeded(stats.iterations, stats.peak_nodes, stats.sat_checks)
            {
                return finish(bounded, stats, detail, &meter);
            }
        }
        // Nothing conclusive: report budget exhaustion if any member hit
        // it — citing the caller's limit, not the member's slice — else
        // the portfolio as a whole is stumped.
        let verdict = match last_bounded {
            Some(bounded) => cite_caller(budget, bounded),
            None => Verdict::Unknown {
                reason: "no member engine was conclusive".to_string(),
            },
        };
        finish(verdict, stats, detail, &meter)
    }

    fn check_parallel(
        &self,
        net: &Network,
        budget: &Budget,
        meter: Meter,
        mut stats: McStats,
        mut detail: PortfolioStats,
    ) -> McRun {
        let n = self.members.len();
        let counts_before = self.bus.as_ref().map(|b| b.counts());
        let cancels: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let scout_cancel = Arc::new(AtomicBool::new(false));
        // Every member gets the caller's full budget (cumulative axes
        // apply per member in parallel mode — wall clock is the shared
        // axis that matters) plus its private cancel flag.
        let results: Vec<Option<McRun>> = std::thread::scope(|s| {
            let cancels = &cancels;
            let scout_cancel = &scout_cancel;
            let handles: Vec<_> = self
                .members
                .iter()
                .enumerate()
                .map(|(i, member)| {
                    let slice = budget.clone().with_cancel(cancels[i].clone());
                    s.spawn(move || {
                        let run = member.check(net, &slice);
                        if run.verdict.is_conclusive() {
                            // First conclusive answer cancels every
                            // *later* member; earlier members run to
                            // completion so the winner is deterministic
                            // (smallest conclusive index — exactly the
                            // sequential winner, trace included).
                            for flag in cancels.iter().skip(i + 1) {
                                flag.store(true, Ordering::Relaxed);
                            }
                            scout_cancel.store(true, Ordering::Relaxed);
                        }
                        run
                    })
                })
                .collect();
            let scout = self.bus.as_deref().map(|bus| {
                s.spawn(move || {
                    merge_scout(net, bus, scout_cancel.as_ref());
                })
            });
            let results: Vec<Option<McRun>> = handles.into_iter().map(|h| h.join().ok()).collect();
            // All members are done; stop the scout even when nobody
            // concluded, then wait for it.
            scout_cancel.store(true, Ordering::Relaxed);
            if let Some(scout) = scout {
                let _ = scout.join();
            }
            results
        });
        // Aggregate in member order; a panicked member yields an Unknown
        // placeholder and can never win.
        let mut winner: Option<(usize, Verdict)> = None;
        let mut last_bounded: Option<Verdict> = None;
        for (i, (member, result)) in self.members.iter().zip(results).enumerate() {
            let run = result.unwrap_or_else(|| {
                McRun::new(
                    Verdict::Unknown {
                        reason: "member engine panicked".to_string(),
                    },
                    McStats {
                        engine: "panicked",
                        ..McStats::default()
                    },
                )
            });
            stats.sat_checks += run.stats.sat_checks;
            stats.peak_nodes = stats.peak_nodes.max(run.stats.peak_nodes);
            if run.verdict.is_conclusive() && winner.is_none() {
                winner = Some((i, run.verdict.clone()));
                stats.iterations = run.stats.iterations;
            }
            if run.verdict.is_bounded() && winner.is_none() {
                last_bounded = Some(run.verdict.clone());
            }
            detail.runs.push((member.name(), run));
        }
        detail.bus = counts_before.map(|before| {
            let after = self.bus.as_ref().expect("bus present").counts();
            let mut clients = BusClientStats::default();
            for (_, run) in &detail.runs {
                absorb_client_stats(&mut clients, run);
            }
            PortfolioBusStats {
                published: BusCounts {
                    cubes: after.cubes - before.cubes,
                    merges: after.merges - before.merges,
                },
                clients,
            }
        });
        let verdict = match winner {
            Some((_, verdict)) => verdict,
            None => match last_bounded {
                Some(bounded) => cite_caller(budget, bounded),
                None => Verdict::Unknown {
                    reason: "no member engine was conclusive".to_string(),
                },
            },
        };
        finish(verdict, stats, detail, &meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;
    use std::time::Instant;

    #[test]
    fn settles_safe_and_buggy_circuits() {
        let portfolio = Portfolio::standard();
        let run = portfolio.check(&generators::token_ring(5), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let detail = run.detail::<PortfolioStats>().expect("portfolio stats");
        // BMC cannot prove safety, so a later member must have won.
        assert!(detail.runs.len() >= 2);
        assert!(detail.runs.last().unwrap().1.verdict.is_safe());
        assert!(!detail.parallel);

        let buggy = generators::token_ring_bug(5);
        let run = portfolio.check(&buggy, &Budget::unlimited());
        match &run.verdict {
            Verdict::Unsafe { trace } => {
                assert!(trace.validates(&buggy));
                assert_eq!(trace.len(), 4, "BMC member finds the minimal cex");
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn parallel_matches_sequential_verdicts_and_traces() {
        for net in [
            generators::token_ring(5),
            generators::token_ring_bug(5),
            generators::mutex(),
            generators::mutex_bug(),
            generators::gray_counter(4),
        ] {
            let seq = Portfolio::standard().check(&net, &Budget::unlimited());
            for bus in [false, true] {
                let par = Portfolio::standard_parallel(bus).check(&net, &Budget::unlimited());
                assert_eq!(
                    seq.verdict,
                    par.verdict,
                    "{} diverged (bus: {bus})",
                    net.name()
                );
                let detail = par.detail::<PortfolioStats>().expect("stats");
                assert!(detail.parallel);
                assert_eq!(detail.bus.is_some(), bus);
                assert_eq!(detail.runs.len(), 6, "every member reports");
            }
        }
    }

    /// A member that can only be stopped by the cooperative cancel flag.
    struct Spin;
    impl Engine for Spin {
        fn name(&self) -> &'static str {
            "spin"
        }
        fn check(&self, _net: &Network, budget: &Budget) -> McRun {
            let meter = Meter::start(budget);
            loop {
                if let Some(v) = meter.exceeded(0, 0, 0) {
                    let stats = McStats {
                        engine: "spin",
                        elapsed: meter.elapsed(),
                        ..McStats::default()
                    };
                    return McRun::new(v, stats);
                }
                std::thread::yield_now();
            }
        }
    }

    /// A member that answers `Safe` immediately.
    struct Quick;
    impl Engine for Quick {
        fn name(&self) -> &'static str {
            "quick"
        }
        fn check(&self, _net: &Network, _budget: &Budget) -> McRun {
            McRun::new(
                Verdict::Safe { iterations: 0 },
                McStats {
                    engine: "quick",
                    ..McStats::default()
                },
            )
        }
    }

    #[test]
    fn winner_cancels_later_members_promptly() {
        // Spin never terminates on its own: only the winner's cancel
        // reaches it. The whole check must finish in gate-poll time, not
        // hang — this is the cancellation-latency regression.
        let portfolio = Portfolio {
            members: vec![Box::new(Quick), Box::new(Spin)],
            parallel: true,
            bus: None,
        };
        let start = Instant::now();
        let run = portfolio.check(&generators::mutex(), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "losers did not exit promptly: {:?}",
            start.elapsed()
        );
        let detail = run.detail::<PortfolioStats>().expect("stats");
        let spin = &detail.runs[1].1;
        match &spin.verdict {
            Verdict::Unknown { reason } => {
                assert!(reason.contains("cancelled"), "got {reason}")
            }
            other => panic!("expected a cancelled loser, got {other}"),
        }
    }

    #[test]
    fn earlier_members_finish_before_the_winner_is_picked() {
        // Quick sits *behind* BMC: its instant Safe answer must not
        // cancel or outrank the earlier member. On a buggy model BMC
        // still delivers its minimal-depth counterexample.
        let buggy = generators::token_ring_bug(5);
        let portfolio = Portfolio {
            members: vec![
                Box::new(Bmc {
                    max_depth: 32,
                    ..Bmc::default()
                }),
                Box::new(Quick),
            ],
            parallel: true,
            bus: None,
        };
        let run = portfolio.check(&buggy, &Budget::unlimited());
        match &run.verdict {
            Verdict::Unsafe { trace } => {
                assert!(trace.validates(&buggy));
                assert_eq!(trace.len(), 4, "BMC's minimal cex must win");
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn poisoned_bus_cannot_change_the_verdict() {
        for (net, safe) in [
            (generators::token_ring(5), true),
            (generators::token_ring_bug(5), false),
        ] {
            let portfolio = Portfolio::standard_parallel(true);
            let bus = portfolio.bus.as_ref().expect("bus on").clone();
            // Deliberately junk publications: a non-inductive cube, a
            // reset-intersecting cube, garbage ordinals, and a bogus
            // merge in out-of-range coordinates.
            bus.publish_cube(vec![(0, true), (1, true)]);
            bus.publish_cube(vec![(0, false), (1, false)]);
            bus.publish_cube(vec![(731, true)]);
            bus.publish_merge(
                cbq_aig::Var::from_index(1 << 20).lit(),
                cbq_aig::Var::from_index((1 << 20) + 1).lit(),
            );
            let run = portfolio.check(&net, &Budget::unlimited());
            assert_eq!(run.verdict.is_safe(), safe, "{} flipped", net.name());
        }
    }

    #[test]
    fn aggregates_member_stats() {
        let run = Portfolio::standard().check(&generators::mutex(), &Budget::unlimited());
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        assert_eq!(run.stats.engine, "portfolio");
    }

    #[test]
    fn zero_budget_is_bounded_immediately() {
        let run = Portfolio::standard().check(
            &generators::token_ring(5),
            &Budget::unlimited().with_steps(0),
        );
        assert!(run.verdict.is_bounded(), "got {}", run.verdict);
        assert!(run.detail::<PortfolioStats>().unwrap().runs.is_empty());
    }

    #[test]
    fn small_step_budget_reaches_the_first_member_whole() {
        // A 5-step budget must hand the BMC member enough depth frames
        // to find the depth-3 bug (an even per-member split would give
        // each of the four members one step and find nothing).
        let buggy = generators::token_ring_bug(5);
        let run = Portfolio::standard().check(&buggy, &Budget::unlimited().with_steps(5));
        assert!(run.verdict.is_unsafe(), "got {}", run.verdict);
    }

    #[test]
    fn node_budget_applies_per_member_not_divided() {
        // The node axis is a peak: a limit that covers the largest
        // single member must let the portfolio conclude.
        let net = generators::mutex();
        let generous = Portfolio::standard().check(&net, &Budget::unlimited());
        let peak = generous.stats.peak_nodes;
        assert!(generous.verdict.is_safe());
        let run = Portfolio::standard().check(&net, &Budget::unlimited().with_nodes(peak));
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
    }

    #[test]
    fn exhausted_clock_cites_the_caller_limit_not_zero() {
        // Burn the whole (tiny) clock in the first member: the later
        // members must be skipped, and the verdict must cite the
        // caller's millisecond limit — never `limit: 0`.
        let portfolio = Portfolio {
            members: vec![Box::new(Spin), Box::new(Spin), Box::new(Spin)],
            parallel: false,
            bus: None,
        };
        let timeout = Duration::from_millis(30);
        let run = portfolio.check(
            &generators::mutex(),
            &Budget::unlimited().with_timeout(timeout),
        );
        match run.verdict {
            Verdict::Bounded {
                resource: Resource::WallClock,
                limit,
            } => assert_eq!(limit, timeout.as_millis() as u64),
            ref other => panic!("expected a wall-clock bound, got {other}"),
        }
    }

    #[test]
    fn empty_portfolio_is_unknown() {
        let run = Portfolio::new(Vec::new()).check(&generators::mutex(), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
    }
}
