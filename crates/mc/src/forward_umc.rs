//! Forward reachability with circuit-based quantification — an extension
//! beyond the paper's backward traversal, on the partitioned
//! [`StateSet`] representation.
//!
//! Backward pre-image enjoys free next-state elimination by in-lining;
//! forward **image** does not: `Img(R)(s') = ∃s,i. T(s,i,s') ∧ R(s)`
//! requires quantifying *all* current-state and input variables out of a
//! genuine transition-relation conjunction. This engine exercises the
//! quantification machinery far harder than pre-image and demonstrates
//! that the circuit representation supports both directions; the
//! residual policy (naive completion or all-solutions enumeration)
//! matters much more here, and so does the between-iterations state-set
//! sweep ([`crate::sweep`]) — image computation churns through far more
//! temporary nodes per step. Partitioning pays off accordingly: each
//! partition images its own window in its own manager, in parallel.

use cbq_aig::{AigPerfCounters, Lit};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnfStats;
use cbq_core::QuantConfig;
use cbq_sat::{SatResult, SolverStats};

use crate::circuit_umc::{quantify_in_partition, ResidualPolicy};
use crate::engine::{Budget, Engine, Meter};
use crate::stateset::{read_vars, Partition, PartitionConfig, PartitionStats, StateSet};
use crate::sweep::{SweepConfig as StateSweepConfig, SweepStats};
use crate::verdict::{McRun, McStats, Resource, Verdict};

/// Forward-reachability model checker over partitioned AIG state sets.
#[derive(Clone, Debug)]
pub struct ForwardCircuitUmc {
    /// Quantification engine configuration.
    pub quant: QuantConfig,
    /// Residual-variable policy (see [`ResidualPolicy`]).
    pub residual: ResidualPolicy,
    /// Between-iterations state-set sweeping; `None` disables it.
    pub sweep: Option<StateSweepConfig>,
    /// Partitioned state-set configuration (default: monolithic).
    pub partition: PartitionConfig,
    /// Iteration bound.
    pub max_iterations: usize,
}

impl Default for ForwardCircuitUmc {
    fn default() -> ForwardCircuitUmc {
        ForwardCircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Enumerate { max_rounds: 10_000 },
            sweep: Some(StateSweepConfig::default()),
            partition: PartitionConfig::default(),
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`ForwardCircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct ForwardCircuitUmcStats {
    /// Forward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier (over current-state vars, summed
    /// over partitions).
    pub frontier_sizes: Vec<usize>,
    /// Peak node count of the working AIG managers (summed over
    /// partitions).
    pub peak_nodes: usize,
    /// Input/state variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// AIG-manager hot-path counters accumulated over every
    /// quantification (all partitions): strash probes, scratchpad walk
    /// nodes, cofactor-cache hits.
    pub quant_perf: AigPerfCounters,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
    /// State-set sweeping counters (all partitions).
    pub sweep: SweepStats,
    /// Partition lifecycle counters.
    pub partitions: PartitionStats,
    /// SAT-bridge counters (all partitions): encodings, checks, cone
    /// retirements, learnt clauses retained across GCs.
    pub cnf: AigCnfStats,
    /// Solver-core counters (all partitions): conflicts, restarts, arena
    /// bytes, LBD histogram, reductions.
    pub solver: SolverStats,
}

/// One partition worker's contribution to a forward iteration.
struct FwdStep {
    image: Lit,
    cex: bool,
    bounded: Option<Verdict>,
    aborts: usize,
    cofactors: usize,
    perf: AigPerfCounters,
}

impl FwdStep {
    fn empty() -> FwdStep {
        FwdStep {
            image: Lit::FALSE,
            cex: false,
            bounded: None,
            aborts: 0,
            cofactors: 0,
            perf: AigPerfCounters::default(),
        }
    }
}

/// Bundles the typed stats into the uniform run record.
fn finish(
    verdict: Verdict,
    stats: ForwardCircuitUmcStats,
    sat_checks: u64,
    meter: &Meter,
) -> McRun {
    let common = McStats {
        engine: "forward",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for ForwardCircuitUmc {
    fn name(&self) -> &'static str {
        "forward"
    }

    /// Runs forward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = ForwardCircuitUmcStats::default();
        let (verdict, sat_checks) = self.traverse(net, &meter, &mut stats);
        finish(verdict, stats, sat_checks, &meter)
    }
}

impl ForwardCircuitUmc {
    fn traverse(
        &self,
        net: &Network,
        meter: &Meter,
        stats: &mut ForwardCircuitUmcStats,
    ) -> (Verdict, u64) {
        let mut ss = StateSet::new_forward(
            net,
            self.partition.clone(),
            self.sweep.clone(),
            meter.deadline(),
            meter.node_limit(),
        );
        stats.peak_nodes = ss.total_nodes();
        if let Some(bounded) = meter.exceeded(0, ss.total_nodes(), 0) {
            let checks = self.seal(stats, &ss);
            return (bounded, checks);
        }
        ss.split_to_target();
        ss.record_iteration();
        stats.frontier_sizes.push(ss.frontier_size());

        for iter in 0..=self.max_iterations {
            let spent = ss.total_sat_checks();
            if let Some(bounded) = meter.exceeded(iter, ss.total_nodes(), spent) {
                let checks = self.seal(stats, &ss);
                return (bounded, checks);
            }
            stats.iterations = iter;
            // Per-partition bad check + image + quantification + sweep,
            // in parallel across the partitions' private managers.
            let steps = ss.par_map(|_, p| self.partition_step(p, iter, meter));
            if steps.iter().any(Option::is_none) {
                let verdict = Verdict::Unknown {
                    reason: format!(
                        "partition worker panicked (partitions {:?})",
                        ss.stats.worker_panics
                    ),
                };
                let checks = self.seal(stats, &ss);
                return (verdict, checks);
            }
            let steps: Vec<FwdStep> = steps.into_iter().flatten().collect();
            for step in &steps {
                stats.quant_aborts += step.aborts;
                stats.ganai_cofactors += step.cofactors;
                stats.quant_perf.add(step.perf);
            }
            if let Some(bounded) = steps.iter().find_map(|s| s.bounded.clone()) {
                let checks = self.seal(stats, &ss);
                return (bounded, checks);
            }
            // Counterexample: a frontier state fires bad under some input
            // (lowest partition index, for determinism).
            if let Some(t) = steps.iter().position(|s| s.cex) {
                let trace = self.extract_trace(&mut ss, iter, t);
                let checks = self.seal(stats, &ss);
                return (Verdict::Unsafe { trace }, checks);
            }
            let images: Vec<Lit> = steps.iter().map(|s| s.image).collect();
            let outcome = ss.merge_images(&images, false);
            if !outcome.any_new {
                let checks = self.seal(stats, &ss);
                return (
                    Verdict::Safe {
                        iterations: iter + 1,
                    },
                    checks,
                );
            }
            ss.prune_and_resplit();
            stats.peak_nodes = stats.peak_nodes.max(ss.total_nodes());
            stats.frontier_sizes.push(ss.frontier_size());
        }
        let checks = self.seal(stats, &ss);
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        (verdict, checks)
    }

    /// One partition's share of a forward iteration: the bad-intersection
    /// check, then image = quantify + rename, then the local sweep.
    fn partition_step(&self, p: &mut Partition, iter: usize, meter: &Meter) -> FwdStep {
        if let Some(bounded) = meter.exceeded(iter, p.aig.num_nodes(), 0) {
            return FwdStep {
                bounded: Some(bounded),
                ..FwdStep::empty()
            };
        }
        if p.frontier == Lit::FALSE {
            return FwdStep::empty();
        }
        if p.cnf.solve_under(&p.aig, &[p.frontier, p.bad]) == SatResult::Sat {
            return FwdStep {
                cex: true,
                ..FwdStep::empty()
            };
        }
        // Image: ∃s,i. T ∧ frontier, then rename s' → s.
        let conj = p.aig.and(p.trans, p.frontier);
        let elim = p.elim_vars();
        let q = quantify_in_partition(p, conj, &elim, &self.quant, self.residual);
        if !q.complete {
            let bounded = meter
                .exceeded(iter, p.aig.num_nodes(), 0)
                .unwrap_or(Verdict::Bounded {
                    resource: Resource::WallClock,
                    limit: 0,
                });
            return FwdStep {
                bounded: Some(bounded),
                aborts: q.aborts,
                cofactors: q.cofactors,
                perf: q.perf,
                ..FwdStep::empty()
            };
        }
        let rename = p.rename();
        let img = p.aig.compose(q.lit, &rename);
        let mut extra = [img];
        p.sweep_if_due(&mut extra);
        FwdStep {
            image: extra[0],
            cex: false,
            bounded: None,
            aborts: q.aborts,
            cofactors: q.cofactors,
            perf: q.perf,
        }
    }

    /// Final bookkeeping shared by every exit path; returns the SAT-check
    /// total for the common stats record.
    fn seal(&self, stats: &mut ForwardCircuitUmcStats, ss: &StateSet) -> u64 {
        stats.peak_nodes = stats.peak_nodes.max(ss.total_nodes());
        stats.sweep = ss.aggregate_sweep();
        stats.partitions = ss.stats.clone();
        stats.cnf = ss.aggregate_cnf();
        stats.solver = ss.aggregate_solver();
        ss.total_sat_checks()
    }

    /// Walks the counterexample backwards through the forward frontiers
    /// (searching partitions in index order at each level), then emits
    /// the input sequence in forward order.
    fn extract_trace(&self, ss: &mut StateSet, level: usize, t0: usize) -> Trace {
        // Concrete final state (in partition t0's frontier) plus the bad
        // input.
        let (mut states_rev, mut inputs_rev) = {
            let p = &mut ss.parts[t0];
            let r = p.cnf.solve_under(&p.aig, &[p.frontiers[level], p.bad]);
            debug_assert_eq!(r, SatResult::Sat);
            (
                vec![read_vars(&p.aig, &p.latches, &p.cnf)],
                vec![read_vars(&p.aig, &p.pis, &p.cnf)],
            )
        };
        for l in (0..level).rev() {
            let target = states_rev.last().expect("non-empty").clone();
            let mut found = false;
            for idx in 0..ss.parts.len() {
                let p = &mut ss.parts[idx];
                if p.frontiers.len() <= l || p.frontiers[l] == Lit::FALSE {
                    continue;
                }
                // Predecessor: F_l(s) ∧ (δ(s,i) == target).
                let eq = {
                    let eqs: Vec<Lit> = p
                        .deltas
                        .iter()
                        .zip(&target)
                        .map(|(delta, v)| delta.xor_sign(!v))
                        .collect();
                    p.aig.and_many(&eqs)
                };
                if p.cnf.solve_under(&p.aig, &[p.frontiers[l], eq]) == SatResult::Sat {
                    states_rev.push(read_vars(&p.aig, &p.latches, &p.cnf));
                    inputs_rev.push(read_vars(&p.aig, &p.pis, &p.cnf));
                    found = true;
                    break;
                }
            }
            debug_assert!(found, "predecessor must exist in some partition");
            if !found {
                break;
            }
        }
        inputs_rev.reverse();
        Trace::new(inputs_rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateset::{PartitionCount, SplitPolicy};
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn safe_circuits_forward() {
        for net in [
            generators::token_ring(5),
            generators::bounded_counter(4, 9),
            generators::gray_counter(4),
            generators::mutex(),
            generators::lfsr(5, &[0, 2]),
        ] {
            check_safe(&ForwardCircuitUmc::default(), &net);
        }
    }

    #[test]
    fn unsafe_circuits_forward_with_minimal_traces() {
        for (net, depth) in [
            (generators::token_ring_bug(5), 3),
            (generators::mutex_bug(), 2),
            (generators::shift_ones(4), 4),
            (generators::counter_bug(4, 5), 5),
        ] {
            check_unsafe(&ForwardCircuitUmc::default(), &net, Some(depth));
        }
    }

    #[test]
    fn forward_iterations_match_reachable_diameter() {
        // bounded_counter(3, 5): 5 reachable states (0..4), so the
        // frontier empties at iteration 5... plus the fixpoint check.
        let run = ForwardCircuitUmc::default()
            .check(&generators::bounded_counter(3, 5), &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 5),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn naive_residual_policy_also_works() {
        let engine = ForwardCircuitUmc {
            residual: ResidualPolicy::Naive,
            ..ForwardCircuitUmc::default()
        };
        let run = engine.check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.verdict.is_safe());
    }

    #[test]
    fn eager_sweeping_agrees_forward() {
        for net in [generators::token_ring(4), generators::shift_ones(4)] {
            let plain = ForwardCircuitUmc {
                sweep: None,
                ..ForwardCircuitUmc::default()
            };
            let eager = ForwardCircuitUmc {
                sweep: Some(StateSweepConfig::eager()),
                ..ForwardCircuitUmc::default()
            };
            let rp = plain.check(&net, &Budget::unlimited());
            let re = eager.check(&net, &Budget::unlimited());
            // Concrete cex inputs may differ; classification and minimal
            // depth must not.
            match (&rp.verdict, &re.verdict) {
                (Verdict::Unsafe { trace: a }, Verdict::Unsafe { trace: b }) => {
                    assert_eq!(a.len(), b.len(), "{}: cex depth changed", net.name());
                }
                (a, b) => assert_eq!(a, b, "{}: sweep changed verdict", net.name()),
            }
            let de = re.detail::<ForwardCircuitUmcStats>().expect("stats");
            assert!(de.sweep.runs > 0, "{}: eager sweep never ran", net.name());
            if let Verdict::Unsafe { trace } = &re.verdict {
                assert!(trace.validates(&net), "{}: swept trace bogus", net.name());
            }
        }
    }

    #[test]
    fn partitioned_forward_agrees_with_monolithic() {
        for net in [
            generators::bounded_counter(3, 5),
            generators::token_ring(4),
            generators::token_ring_bug(5),
            generators::counter_bug(4, 5),
        ] {
            let mono = ForwardCircuitUmc::default().check(&net, &Budget::unlimited());
            for policy in [SplitPolicy::LatchCofactor, SplitPolicy::FrontierOrigin] {
                let engine = ForwardCircuitUmc {
                    partition: PartitionConfig {
                        split: policy,
                        ..PartitionConfig::with_count(PartitionCount::Fixed(3))
                    },
                    ..ForwardCircuitUmc::default()
                };
                let run = engine.check(&net, &Budget::unlimited());
                match (&mono.verdict, &run.verdict) {
                    (Verdict::Unsafe { trace: a }, Verdict::Unsafe { trace: b }) => {
                        assert_eq!(
                            a.len(),
                            b.len(),
                            "{} ({policy:?}): cex depth changed",
                            net.name()
                        );
                        assert!(b.validates(&net), "{}: partitioned trace bogus", net.name());
                    }
                    (a, b) => assert_eq!(
                        a,
                        b,
                        "{} ({policy:?}): partitioning changed the verdict",
                        net.name()
                    ),
                }
                let detail = run.detail::<ForwardCircuitUmcStats>().expect("stats");
                assert!(
                    detail.partitions.trajectory.iter().any(|&n| n > 1),
                    "{} ({policy:?}): never actually partitioned",
                    net.name()
                );
            }
        }
    }
}
