//! A tiny reference solver (exhaustive enumeration) used to cross-check
//! the CDCL solver in tests and property-based tests.
//!
//! Only suitable for small variable counts (exponential), but its
//! simplicity makes it an effective oracle. [`ReferenceSolver`] wraps the
//! enumeration behind the same incremental surface as the CDCL solver
//! (see [`crate::SatBackend`]), so differential tests and the
//! `cbq sat --backend reference` tool can drive either interchangeably.

use crate::proof::{ProofLog, ProofMode};
use crate::solver::Solver;
use crate::types::{SatLit, SatResult, SatVar};

/// Variable-count ceiling of the exhaustive oracle (2²⁴ assignments).
pub const MAX_ORACLE_VARS: usize = 24;

/// An incremental facade over [`brute_force_sat`]: stores the clause
/// list, re-enumerates on every solve. Returns [`SatResult::Unknown`]
/// beyond [`MAX_ORACLE_VARS`] variables instead of taking exponential
/// forever.
#[derive(Clone, Debug, Default)]
pub struct ReferenceSolver {
    num_vars: usize,
    clauses: Vec<Vec<SatLit>>,
    model: Option<Vec<bool>>,
    proof_mode: ProofMode,
    proof: Option<Box<ProofLog>>,
}

impl ReferenceSolver {
    /// An empty oracle.
    pub fn new() -> ReferenceSolver {
        ReferenceSolver::default()
    }

    /// Adds a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Stores a clause. An empty clause makes the database unsatisfiable;
    /// mirrors [`crate::Solver::add_clause`]'s return convention.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        self.clauses.push(lits.to_vec());
        !lits.is_empty()
    }

    /// Selects the proof mode. The oracle itself derives nothing; on an
    /// assumption-free UNSAT answer it replays the stored clauses through
    /// a proof-logging [`Solver`] and keeps that solver's log, so the
    /// differential suite can demand a checkable certificate from either
    /// backend.
    pub fn set_proof_mode(&mut self, mode: ProofMode) {
        self.proof_mode = mode;
        self.proof = None;
    }

    /// The proof log of the last assumption-free UNSAT answer, when a
    /// mode other than `Off` is active.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_deref()
    }

    /// Decides the stored clause set under `assumptions` by enumeration.
    pub fn solve_with(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.model = None;
        self.proof = None;
        if self.num_vars > MAX_ORACLE_VARS {
            return SatResult::Unknown;
        }
        let mut all = self.clauses.clone();
        all.extend(assumptions.iter().map(|&l| vec![l]));
        match brute_force_sat(self.num_vars, &all) {
            Some(model) => {
                self.model = Some(model);
                SatResult::Sat
            }
            None => {
                if assumptions.is_empty() && self.proof_mode != ProofMode::Off {
                    let mut s = Solver::new();
                    s.set_proof_mode(self.proof_mode);
                    for _ in 0..self.num_vars {
                        s.new_var();
                    }
                    for c in &self.clauses {
                        s.add_clause(c);
                    }
                    let replayed = s.solve();
                    debug_assert_eq!(replayed, SatResult::Unsat, "oracle/CDCL disagree");
                    self.proof = s.take_proof();
                }
                SatResult::Unsat
            }
        }
    }

    /// Solves with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with(&[])
    }

    /// Model value of `v` after a [`SatResult::Sat`] answer.
    pub fn value(&self, v: SatVar) -> Option<bool> {
        self.model.as_ref().and_then(|m| m.get(v.index()).copied())
    }
}

/// Exhaustively decides satisfiability of a clause list over `num_vars`
/// variables.
///
/// # Panics
///
/// Panics if `num_vars > 24` (would enumerate more than 16M assignments).
///
/// ```
/// use cbq_sat::SatVar;
/// use cbq_sat::reference::brute_force_sat;
/// let v0 = SatVar::from_index(0);
/// assert!(brute_force_sat(1, &[vec![v0.pos()]]).is_some());
/// assert!(brute_force_sat(1, &[vec![v0.pos()], vec![v0.neg()]]).is_none());
/// ```
pub fn brute_force_sat(num_vars: usize, clauses: &[Vec<SatLit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 24, "reference solver limited to 24 variables");
    for mask in 0u64..(1u64 << num_vars) {
        let assignment: Vec<bool> = (0..num_vars).map(|i| (mask >> i) & 1 != 0).collect();
        if clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] ^ l.is_negative())
        }) {
            return Some(assignment);
        }
    }
    None
}

/// Counts satisfying assignments by exhaustive enumeration.
///
/// # Panics
///
/// Panics if `num_vars > 24`.
pub fn brute_force_count(num_vars: usize, clauses: &[Vec<SatLit>]) -> u64 {
    assert!(num_vars <= 24, "reference solver limited to 24 variables");
    let mut count = 0;
    for mask in 0u64..(1u64 << num_vars) {
        let assignment: Vec<bool> = (0..num_vars).map(|i| (mask >> i) & 1 != 0).collect();
        if clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] ^ l.is_negative())
        }) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatVar;

    #[test]
    fn counts_xor() {
        let a = SatVar::from_index(0);
        let b = SatVar::from_index(1);
        // (a | b) & (!a | !b) == xor
        let clauses = vec![vec![a.pos(), b.pos()], vec![a.neg(), b.neg()]];
        assert_eq!(brute_force_count(2, &clauses), 2);
    }

    #[test]
    fn model_is_checked() {
        let a = SatVar::from_index(0);
        let m = brute_force_sat(2, &[vec![a.neg()]]).unwrap();
        assert!(!m[0]);
    }

    #[test]
    fn incremental_facade_matches_enumeration() {
        let mut s = ReferenceSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.pos(), b.pos()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.solve_with(&[a.neg(), b.neg()]), SatResult::Unsat);
        assert_eq!(s.solve(), SatResult::Sat); // assumptions non-destructive
        assert!(s.value(a).is_some() || s.value(b).is_some());
        assert_eq!(s.num_vars(), 2);
        assert_eq!(s.num_clauses(), 1);
    }

    #[test]
    fn oracle_declines_oversized_instances() {
        let mut s = ReferenceSolver::new();
        for _ in 0..MAX_ORACLE_VARS + 1 {
            s.new_var();
        }
        assert_eq!(s.solve(), SatResult::Unknown);
    }
}
