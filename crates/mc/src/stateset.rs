//! Partitioned state sets: the disjunctive, parallel state-set
//! representation of the circuit-based traversals.
//!
//! The paper manipulates one monolithic AIG state set inside one shared
//! manager — every pre-image, quantification pass, and sweep serialises
//! on one cone and one clause database. This module splits the traversal
//! state into a [`StateSet`]: a disjunction of [`Partition`]s, each
//! owning its **own AIG manager and clause database** plus the mapping
//! from network latches to partition input variables, so the expensive
//! per-iteration work (pre-image/image, `exists_many`, sweeping) runs
//! **in parallel across partitions** with `std::thread::scope`.
//!
//! # Partition lifecycle: split → image → sweep → prune → merge
//!
//! * **split** — a partition is divided either *by latch cofactor*
//!   ([`SplitPolicy::LatchCofactor`]): the window cube is extended by the
//!   latch with the best balance score, producing two window-disjoint
//!   partitions; or *by frontier-of-origin*
//!   ([`SplitPolicy::FrontierOrigin`]): the frontier's disjuncts are
//!   divided between two same-window siblings. Splitting triggers
//!   eagerly at construction (up to `--partitions N|auto`) and again
//!   whenever a partition's state cone outgrows
//!   [`PartitionConfig::resplit_watermark`].
//! * **image** — each partition computes its pre-image (or image) and
//!   quantification independently, in parallel, inside its own manager.
//! * **sweep** — the per-partition [`StateSetSweeper`] fraigs and
//!   garbage-collects each manager independently (still inside the
//!   worker threads).
//! * **prune** — same-window sibling frontiers that are SAT-provably
//!   contained in the union of their siblings are dropped.
//! * **merge** — deterministic, index-ordered: every quantified image is
//!   cofactored onto every window, moved across managers by
//!   ordinal-stable cone export/import, conjoined with the window cube,
//!   and subtracted against the target's reached set.
//!
//! # Exactness
//!
//! With latch-cofactor windows the partitions tile the state space, so
//! the union of partition frontiers/reached sets equals the monolithic
//! sets **exactly** at every iteration: verdicts, fixpoint iteration
//! counts, and minimal counterexample depths are identical for any
//! partition count. Frontier-of-origin siblings replicate their window's
//! reached set, which preserves the same invariant.

use std::collections::HashMap;
use std::time::Instant;

use cbq_aig::{Aig, Lit, Node, Var};
use cbq_ckt::Network;
use cbq_cnf::{AigCnf, AigCnfStats, CnfLifetime};
use cbq_sat::{SatResult, SolverStats};

use crate::sweep::{StateSetSweeper, SweepConfig as StateSweepConfig, SweepStats};

/// How many partitions a traversal starts with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PartitionCount {
    /// Exactly this many partitions (1 = the monolithic traversal).
    Fixed(usize),
    /// One partition per available CPU core.
    Auto,
}

impl PartitionCount {
    /// Parses a CLI-facing value: `auto` or a positive number.
    pub fn from_name(name: &str) -> Option<PartitionCount> {
        if name == "auto" {
            return Some(PartitionCount::Auto);
        }
        name.parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .map(PartitionCount::Fixed)
    }

    /// Resolves the count against the machine's parallelism.
    pub fn resolve(&self) -> usize {
        match self {
            PartitionCount::Fixed(n) => (*n).max(1),
            PartitionCount::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// How an oversized partition is divided.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SplitPolicy {
    /// Extend the window cube by the latch whose cofactors have the best
    /// balance score (smallest larger half), producing two
    /// window-disjoint partitions.
    LatchCofactor,
    /// Divide the frontier's disjuncts-of-origin between two same-window
    /// siblings (falls back to the latch split when the frontier has
    /// fewer than two disjuncts).
    FrontierOrigin,
}

impl SplitPolicy {
    /// Parses a CLI-facing name (`latch`, `origin`).
    pub fn from_name(name: &str) -> Option<SplitPolicy> {
        match name {
            "latch" => Some(SplitPolicy::LatchCofactor),
            "origin" => Some(SplitPolicy::FrontierOrigin),
            _ => None,
        }
    }

    /// The CLI-facing name of this policy.
    pub fn name(&self) -> &'static str {
        match self {
            SplitPolicy::LatchCofactor => "latch",
            SplitPolicy::FrontierOrigin => "origin",
        }
    }
}

/// Configuration of the partitioned state-set representation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Initial partition count (`Fixed(1)` = monolithic).
    pub count: PartitionCount,
    /// Split policy for the initial split and watermark re-splits.
    pub split: SplitPolicy,
    /// Re-split a partition whose state cone (reached ∪ frontier AND
    /// gates) outgrows this many nodes; `None` disables re-splitting.
    pub resplit_watermark: Option<usize>,
    /// Hard cap on the total partition count.
    pub max_partitions: usize,
    /// SAT-prune same-window sibling frontiers contained in the union of
    /// their siblings.
    pub prune: bool,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig {
            count: PartitionCount::Fixed(1),
            split: SplitPolicy::LatchCofactor,
            resplit_watermark: None,
            max_partitions: 64,
            prune: true,
        }
    }
}

impl PartitionConfig {
    /// A configuration starting at `count` partitions, with watermark
    /// re-splitting enabled (the `cbq check --partitions` behaviour).
    /// An explicit count of 1 stays genuinely monolithic: no watermark,
    /// never self-partitions.
    pub fn with_count(count: PartitionCount) -> PartitionConfig {
        let resplit_watermark = match count {
            PartitionCount::Fixed(1) => None,
            _ => Some(4096),
        };
        PartitionConfig {
            count,
            resplit_watermark,
            ..PartitionConfig::default()
        }
    }
}

/// Per-run counters of a partitioned traversal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Partition count after each iteration.
    pub trajectory: Vec<usize>,
    /// Largest per-partition state cone (reached ∪ frontier AND gates)
    /// observed at any iteration boundary.
    pub max_cone: usize,
    /// Sibling frontiers pruned as contained in their window's union.
    pub prunes: usize,
    /// Splits performed (initial and watermark-triggered).
    pub splits: usize,
    /// Indices of partitions whose [`StateSet::par_map`] worker panicked.
    /// The panic is caught — the engine reports a clean
    /// [`crate::Verdict::Unknown`] instead of aborting the process — and
    /// the partition ids land here for diagnosis.
    pub worker_panics: Vec<usize>,
}

/// One disjunct of a [`StateSet`]: a self-contained share of the
/// traversal state inside its own AIG manager and clause database.
pub struct Partition {
    /// The partition-private AIG manager.
    pub aig: Aig,
    /// The partition-private incremental SAT bridge.
    pub cnf: AigCnf,
    /// Primary-input variables, in network order.
    pub pis: Vec<Var>,
    /// Latch variables, in network order (the latch-to-partition-input
    /// mapping; ordinals are stable across splits and GC).
    pub latches: Vec<Var>,
    /// Fresh next-state variables `s'` (forward traversals only).
    pub next_vars: Vec<Var>,
    /// Next-state functions δ, in latch order.
    pub deltas: Vec<Lit>,
    /// The transition relation `∧ⱼ (s'ⱼ ≡ δⱼ)` (forward traversals;
    /// [`Lit::TRUE`] for backward ones, which in-line instead).
    pub trans: Lit,
    /// The bad-state function.
    pub bad: Lit,
    /// The initial-state cube.
    pub init: Lit,
    /// The window cube as (latch ordinal, value) pairs; empty = the whole
    /// state space.
    pub window: Vec<(usize, bool)>,
    /// The window cube as a literal of this manager.
    pub window_lit: Lit,
    /// States reached within this partition's window.
    pub reached: Lit,
    /// The active frontier (window-restricted).
    pub frontier: Lit,
    /// The frontier's disjuncts of origin (one per merged image piece) —
    /// the unit [`SplitPolicy::FrontierOrigin`] divides.
    pub frontier_parts: Vec<Lit>,
    /// Every frontier in discovery order (trace extraction walks them).
    pub frontiers: Vec<Lit>,
    /// Cooperative wall-clock cancellation for quantification and sweeps.
    pub deadline: Option<Instant>,
    /// Cooperative per-partition node budget for quantification.
    pub node_limit: Option<usize>,
    sweeper: Option<StateSetSweeper>,
}

impl Partition {
    fn seed(
        net: &Network,
        forward: bool,
        sweep: Option<StateSweepConfig>,
        deadline: Option<Instant>,
        node_limit: Option<usize>,
    ) -> Partition {
        let mut aig = net.aig().clone();
        let (next_vars, trans) = if forward {
            let next_vars: Vec<Var> = net.latches().iter().map(|_| aig.add_input()).collect();
            let eqs: Vec<Lit> = net
                .latches()
                .iter()
                .zip(&next_vars)
                .map(|(l, nv)| aig.iff(nv.lit(), l.next))
                .collect();
            let trans = aig.and_many(&eqs);
            (next_vars, trans)
        } else {
            (Vec::new(), Lit::TRUE)
        };
        let init = net.initial_cube().to_lit(&mut aig);
        let (reached, frontier, frontiers, parts) = if forward {
            (init, init, vec![init], vec![init])
        } else {
            (Lit::FALSE, Lit::FALSE, Vec::new(), Vec::new())
        };
        // The sweeper's GC decides what a retirement does to the clause
        // database, so the bridge is created with the sweeper's lifetime.
        let lifetime = sweep
            .as_ref()
            .map_or(CnfLifetime::default(), |cfg| cfg.lifetime);
        let mut sweeper = sweep.map(StateSetSweeper::new);
        if let Some(sw) = &mut sweeper {
            sw.set_deadline(deadline);
        }
        Partition {
            aig,
            cnf: AigCnf::with_lifetime(lifetime),
            pis: net.primary_inputs().to_vec(),
            latches: net.latch_vars(),
            next_vars,
            deltas: net.latches().iter().map(|l| l.next).collect(),
            trans,
            bad: net.bad(),
            init,
            window: Vec::new(),
            window_lit: Lit::TRUE,
            reached,
            frontier,
            frontier_parts: parts,
            frontiers,
            deadline,
            node_limit,
            sweeper,
        }
    }

    /// A twin for splitting: same manager image, fresh clause database and
    /// fresh sweeper (so SAT-check and sweep counters are not double
    /// counted across siblings).
    fn clone_for_split(&self) -> Partition {
        Partition {
            aig: self.aig.clone(),
            cnf: AigCnf::with_lifetime(self.cnf.lifetime()),
            pis: self.pis.clone(),
            latches: self.latches.clone(),
            next_vars: self.next_vars.clone(),
            deltas: self.deltas.clone(),
            trans: self.trans,
            bad: self.bad,
            init: self.init,
            window: self.window.clone(),
            window_lit: self.window_lit,
            reached: self.reached,
            frontier: self.frontier,
            frontier_parts: self.frontier_parts.clone(),
            frontiers: self.frontiers.clone(),
            deadline: self.deadline,
            node_limit: self.node_limit,
            sweeper: self.sweeper.as_ref().map(|s| {
                let mut fresh = StateSetSweeper::new(s.config().clone());
                fresh.set_deadline(self.deadline);
                fresh
            }),
        }
    }

    /// Restricts every state cone to `latch ordinal == value`, extending
    /// the window cube.
    fn restrict(&mut self, ord: usize, value: bool) {
        let v = self.latches[ord];
        let wlit = v.lit().xor_sign(!value);
        self.window.push((ord, value));
        self.window_lit = self.aig.and(self.window_lit, wlit);
        let restrict_lit = |aig: &mut Aig, l: Lit| {
            let cof = aig.cofactor(l, v, value);
            aig.and(cof, wlit)
        };
        self.frontier = restrict_lit(&mut self.aig, self.frontier);
        self.reached = restrict_lit(&mut self.aig, self.reached);
        for slot in self
            .frontier_parts
            .iter_mut()
            .chain(self.frontiers.iter_mut())
        {
            *slot = restrict_lit(&mut self.aig, *slot);
        }
    }

    /// The raw pre-image of `target`: quantification by substitution of
    /// the next-state functions (Section 3 in-lining).
    pub fn preimage(&mut self, target: Lit) -> Lit {
        let defs: Vec<(Var, Lit)> = self
            .latches
            .iter()
            .copied()
            .zip(self.deltas.iter().copied())
            .collect();
        self.aig.compose(target, &defs)
    }

    /// Variables eliminated per forward image: current latches + inputs.
    pub fn elim_vars(&self) -> Vec<Var> {
        let mut elim = self.latches.clone();
        elim.extend_from_slice(&self.pis);
        elim
    }

    /// The forward renaming `s' → s` applied after quantification.
    pub fn rename(&self) -> Vec<(Var, Lit)> {
        self.next_vars
            .iter()
            .zip(&self.latches)
            .map(|(nv, l)| (*nv, l.lit()))
            .collect()
    }

    /// AND gates of this partition's state cone (reached ∪ frontier).
    pub fn state_cone(&self) -> usize {
        self.aig.cone_size_many(&[self.reached, self.frontier])
    }

    /// Runs the partition's sweeper if due, remapping every partition
    /// literal/variable plus the caller's `extra` literals. Returns
    /// whether a sweep ran.
    pub fn sweep_if_due(&mut self, extra: &mut [Lit]) -> bool {
        let Some(mut sweeper) = self.sweeper.take() else {
            return false;
        };
        let mut lits: Vec<&mut Lit> = vec![
            &mut self.trans,
            &mut self.bad,
            &mut self.init,
            &mut self.window_lit,
            &mut self.reached,
            &mut self.frontier,
        ];
        lits.extend(self.deltas.iter_mut());
        lits.extend(self.frontiers.iter_mut());
        lits.extend(self.frontier_parts.iter_mut());
        lits.extend(extra.iter_mut());
        let vars: Vec<&mut Var> = self
            .pis
            .iter_mut()
            .chain(self.latches.iter_mut())
            .chain(self.next_vars.iter_mut())
            .collect();
        let ran = sweeper.run_if_due(&mut self.aig, &mut self.cnf, lits, vars);
        self.sweeper = Some(sweeper);
        ran
    }

    /// SAT checks issued by this partition. The bridge's counters are
    /// monotone across sweep-GC retirements, so no separate retired-check
    /// bookkeeping exists any more.
    pub fn sat_checks(&self) -> u64 {
        self.cnf.stats().checks
    }

    /// This partition's sweeping counters (zeroed when sweeping is off).
    pub fn sweep_stats(&self) -> SweepStats {
        self.sweeper
            .as_ref()
            .map_or_else(SweepStats::default, |s| s.stats)
    }
}

/// Outcome of one [`StateSet::merge_images`] call.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// Whether any partition gained new states (false = global fixpoint).
    pub any_new: bool,
    /// Lowest-index partition whose new frontier intersects the initial
    /// states, if any (backward traversals' counterexample signal).
    pub cex_partition: Option<usize>,
}

/// A disjunctive set of [`Partition`]s — the traversal state of the
/// partitioned circuit engines.
pub struct StateSet {
    /// The partitions, in deterministic index order. The represented set
    /// is the union of the partitions' sets.
    pub parts: Vec<Partition>,
    /// Lifecycle counters.
    pub stats: PartitionStats,
    cfg: PartitionConfig,
}

impl StateSet {
    /// A backward-traversal state set: one seed partition with empty
    /// reached/frontier sets (the engine installs F₀ before splitting).
    pub fn new_backward(
        net: &Network,
        cfg: PartitionConfig,
        sweep: Option<StateSweepConfig>,
        deadline: Option<Instant>,
        node_limit: Option<usize>,
    ) -> StateSet {
        StateSet {
            parts: vec![Partition::seed(net, false, sweep, deadline, node_limit)],
            stats: PartitionStats::default(),
            cfg,
        }
    }

    /// A forward-traversal state set: one seed partition whose frontier
    /// and reached set are the initial states, plus transition relation
    /// and next-state variables.
    pub fn new_forward(
        net: &Network,
        cfg: PartitionConfig,
        sweep: Option<StateSweepConfig>,
        deadline: Option<Instant>,
        node_limit: Option<usize>,
    ) -> StateSet {
        StateSet {
            parts: vec![Partition::seed(net, true, sweep, deadline, node_limit)],
            stats: PartitionStats::default(),
            cfg,
        }
    }

    /// The configured initial partition count, resolved against the
    /// machine.
    pub fn target_count(&self) -> usize {
        self.cfg.count.resolve().min(self.cfg.max_partitions)
    }

    /// Splits the largest partitions until the configured initial count
    /// is reached (or no partition can split further).
    pub fn split_to_target(&mut self) {
        let target = self.target_count();
        while self.parts.len() < target {
            // Candidates in descending state-cone order (ties: lowest
            // index); take the first that actually splits.
            let mut order: Vec<(usize, usize)> = self
                .parts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.state_cone()))
                .collect();
            order.sort_by_key(|&(i, size)| (std::cmp::Reverse(size), i));
            if !order.into_iter().any(|(i, _)| self.split_partition(i)) {
                break;
            }
        }
    }

    /// Splits partition `idx` according to the configured policy; returns
    /// whether a split happened.
    pub fn split_partition(&mut self, idx: usize) -> bool {
        if self.parts.len() >= self.cfg.max_partitions {
            return false;
        }
        let done = match self.cfg.split {
            SplitPolicy::FrontierOrigin if self.parts[idx].frontier_parts.len() >= 2 => {
                self.split_by_origin(idx)
            }
            _ => {
                // Latch-splitting one member of a same-window sibling
                // group would leave the other siblings on the parent
                // window — overlapping windows that duplicate every
                // subsequent image step. Refuse instead.
                let has_siblings = self
                    .parts
                    .iter()
                    .enumerate()
                    .any(|(j, q)| j != idx && q.window == self.parts[idx].window);
                if has_siblings {
                    return false;
                }
                self.split_by_latch(idx)
            }
        };
        if done {
            self.stats.splits += 1;
        }
        done
    }

    /// Latch-cofactor split: picks the unused latch with the best balance
    /// score over the partition's state cone and extends the window.
    fn split_by_latch(&mut self, idx: usize) -> bool {
        let ord = {
            let p = &mut self.parts[idx];
            let used: Vec<usize> = p.window.iter().map(|(o, _)| *o).collect();
            let state = p.aig.or(p.frontier, p.reached);
            let mut best: Option<(usize, usize)> = None;
            for ord in 0..p.latches.len() {
                if used.contains(&ord) {
                    continue;
                }
                let v = p.latches[ord];
                if !p.aig.support_contains(state, v) {
                    continue;
                }
                let (c1, c0) = p.aig.cofactors(state, v);
                let score = p.aig.cone_size(c1).max(p.aig.cone_size(c0));
                if best.is_none_or(|(s, _)| score < s) {
                    best = Some((score, ord));
                }
            }
            match best {
                Some((_, ord)) => ord,
                // State cone ignores every unused latch: split on the
                // first free ordinal anyway (content lands on one side).
                None => match (0..p.latches.len()).find(|o| !used.contains(o)) {
                    Some(ord) => ord,
                    None => return false,
                },
            }
        };
        let mut child = self.parts[idx].clone_for_split();
        self.parts[idx].restrict(ord, false);
        child.restrict(ord, true);
        self.parts.push(child);
        true
    }

    /// Frontier-of-origin split: divides the frontier disjuncts between
    /// the partition and a new same-window sibling (which replicates the
    /// window's reached set, preserving exact subtraction).
    fn split_by_origin(&mut self, idx: usize) -> bool {
        if self.parts[idx].frontier_parts.len() < 2 {
            return false;
        }
        let mut child = self.parts[idx].clone_for_split();
        let mid = self.parts[idx].frontier_parts.len().div_ceil(2);
        let give = self.parts[idx].frontier_parts.split_off(mid);
        {
            let p = &mut self.parts[idx];
            p.frontier = p.aig.or_many(&p.frontier_parts);
            if let Some(last) = p.frontiers.last_mut() {
                *last = p.frontier;
            }
        }
        child.frontier_parts = give;
        child.frontier = child.aig.or_many(&child.frontier_parts);
        if let Some(last) = child.frontiers.last_mut() {
            *last = child.frontier;
        }
        self.parts.push(child);
        true
    }

    /// Runs `f` over every partition — in parallel via `thread::scope`
    /// when more than one partition and more than one core are available,
    /// batched so no more than `available_parallelism` workers run at
    /// once (watermark re-splitting can push the partition count well
    /// past the core count). Results are returned in partition index
    /// order regardless of thread completion order (the determinism
    /// guard).
    ///
    /// A panicking worker does **not** abort the process: its slot comes
    /// back as `None` and the partition index is recorded in
    /// [`PartitionStats::worker_panics`], so the engine can surface a
    /// clean [`crate::Verdict::Unknown`] instead of crashing the whole
    /// traversal (the panicked partition's state is no longer trusted).
    pub fn par_map<R, F>(&mut self, f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(usize, &mut Partition) -> R + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let results: Vec<Option<R>> = if self.parts.len() <= 1 || cores <= 1 {
            self.parts
                .iter_mut()
                .enumerate()
                // AssertUnwindSafe: on panic the partition is recorded as
                // poisoned and the traversal stops using it.
                .map(|(i, p)| catch_unwind(AssertUnwindSafe(|| f(i, p))).ok())
                .collect()
        } else {
            let f = &f;
            let mut results = Vec::with_capacity(self.parts.len());
            let mut base = 0;
            for chunk in self.parts.chunks_mut(cores) {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(off, p)| scope.spawn(move || f(base + off, p)))
                        .collect();
                    for h in handles {
                        // Err = the worker panicked; the payload is
                        // dropped and the slot reported as None.
                        results.push(h.join().ok());
                    }
                });
                base += cores;
            }
            results
        };
        for (i, r) in results.iter().enumerate() {
            if r.is_none() {
                self.stats.worker_panics.push(i);
            }
        }
        results
    }

    /// The deterministic merge step: redistributes the per-partition
    /// quantified images (`images[i]` lives in partition `i`'s manager,
    /// over latch variables) onto every window, subtracts each target's
    /// reached set, installs the new frontiers, and reports fixpoint /
    /// counterexample signals. Index-ordered throughout, so repeated runs
    /// produce identical frontiers and stats.
    ///
    /// `detect_init_cex` enables the backward traversals' counterexample
    /// scan (does any new frontier intersect the initial states?);
    /// forward traversals detect counterexamples against `bad` instead
    /// and pass `false`.
    pub fn merge_images(&mut self, images: &[Lit], detect_init_cex: bool) -> MergeOutcome {
        let n = self.parts.len();
        debug_assert_eq!(images.len(), n);
        // Distinct windows in first-occurrence (index) order.
        let mut windows: Vec<Vec<(usize, bool)>> = Vec::new();
        let mut window_of: Vec<usize> = Vec::with_capacity(n);
        for p in &self.parts {
            let id = match windows.iter().position(|w| *w == p.window) {
                Some(id) => id,
                None => {
                    windows.push(p.window.clone());
                    windows.len() - 1
                }
            };
            window_of.push(id);
        }
        // Phase 1: cofactor every image onto every window and export the
        // cones (ordinal-stable, so they import into any sibling).
        let mut pieces: Vec<Vec<ConeExport>> = vec![Vec::new(); windows.len()];
        for (s, &image) in images.iter().enumerate() {
            if image == Lit::FALSE {
                continue;
            }
            let src = &mut self.parts[s];
            for (w_id, w) in windows.iter().enumerate() {
                let map: Vec<(Var, Lit)> = w
                    .iter()
                    .map(|(ord, val)| {
                        (src.latches[*ord], if *val { Lit::TRUE } else { Lit::FALSE })
                    })
                    .collect();
                let cof = src.aig.compose(image, &map);
                if cof == Lit::FALSE {
                    continue;
                }
                pieces[w_id].push(export_cone(&src.aig, cof));
            }
        }
        // Phase 2: per target (index order), import its window's pieces,
        // restrict, subtract reached, and take its round-robin share of
        // the active frontier (same-window siblings divide the pieces;
        // the share assignment depends only on the piece index, so it is
        // identical across runs).
        let mut group_size = vec![0usize; windows.len()];
        for &w in &window_of {
            group_size[w] += 1;
        }
        let mut group_pos = vec![0usize; windows.len()];
        let mut any_new = false;
        for (t, &w_id) in window_of.iter().enumerate() {
            let pos = group_pos[w_id];
            group_pos[w_id] += 1;
            let m = group_size[w_id];
            let p = &mut self.parts[t];
            let old_reached = p.reached;
            let mut new_all: Vec<Lit> = Vec::new();
            let mut share: Vec<Lit> = Vec::new();
            for (j, exp) in pieces[w_id].iter().enumerate() {
                let piece = import_cone(&mut p.aig, exp);
                let piece = p.aig.and(piece, p.window_lit);
                let fresh = p.aig.and(piece, !old_reached);
                if fresh == Lit::FALSE {
                    continue;
                }
                new_all.push(fresh);
                if j % m == pos {
                    share.push(fresh);
                }
            }
            let mut front = p.aig.or_many(&share);
            if front != Lit::FALSE && p.cnf.solve_under(&p.aig, &[front]) == SatResult::Unsat {
                front = Lit::FALSE;
            }
            if front == Lit::FALSE {
                share.clear();
            }
            p.frontier = front;
            p.frontier_parts = share;
            p.frontiers.push(front);
            if !new_all.is_empty() {
                let add = p.aig.or_many(&new_all);
                p.reached = p.aig.or(old_reached, add);
            }
            any_new |= front != Lit::FALSE;
        }
        // Counterexample signal: lowest-index partition whose new
        // frontier intersects the initial states.
        let mut cex_partition = None;
        if detect_init_cex {
            for t in 0..n {
                let p = &mut self.parts[t];
                if p.frontier != Lit::FALSE
                    && p.cnf.solve_under(&p.aig, &[p.frontier, p.init]) == SatResult::Sat
                {
                    cex_partition = Some(t);
                    break;
                }
            }
        }
        MergeOutcome {
            any_new,
            cex_partition,
        }
    }

    /// The post-merge lifecycle step: prunes contained sibling frontiers,
    /// re-splits partitions past the watermark, and records the
    /// trajectory/max-cone statistics.
    pub fn prune_and_resplit(&mut self) {
        if self.cfg.prune {
            self.prune_contained();
        }
        if let Some(watermark) = self.cfg.resplit_watermark {
            let mut idx = 0;
            while idx < self.parts.len() {
                if self.parts.len() >= self.cfg.max_partitions {
                    break;
                }
                if self.parts[idx].state_cone() > watermark {
                    self.split_partition(idx);
                }
                idx += 1;
            }
        }
        self.record_iteration();
    }

    /// Prunes same-window sibling frontiers that are SAT-provably
    /// contained in the union of their (still active) siblings. Later
    /// siblings are checked first, so of two identical siblings exactly
    /// one survives.
    fn prune_contained(&mut self) {
        let mut groups: HashMap<Vec<(usize, bool)>, Vec<usize>> = HashMap::new();
        for (i, p) in self.parts.iter().enumerate() {
            groups.entry(p.window.clone()).or_default().push(i);
        }
        let mut group_list: Vec<Vec<usize>> = groups.into_values().collect();
        group_list.sort_unstable();
        for group in group_list {
            if group.len() < 2 {
                continue;
            }
            for pos in (0..group.len()).rev() {
                let t = group[pos];
                if self.parts[t].frontier == Lit::FALSE {
                    continue;
                }
                let exports: Vec<ConeExport> = group
                    .iter()
                    .filter(|&&q| q != t && self.parts[q].frontier != Lit::FALSE)
                    .map(|&q| export_cone(&self.parts[q].aig, self.parts[q].frontier))
                    .collect();
                if exports.is_empty() {
                    continue;
                }
                let p = &mut self.parts[t];
                let lits: Vec<Lit> = exports.iter().map(|e| import_cone(&mut p.aig, e)).collect();
                let union = p.aig.or_many(&lits);
                let excess = p.aig.and(p.frontier, !union);
                if excess == Lit::FALSE || p.cnf.solve_under(&p.aig, &[excess]) == SatResult::Unsat
                {
                    p.frontier = Lit::FALSE;
                    p.frontier_parts.clear();
                    if let Some(last) = p.frontiers.last_mut() {
                        *last = Lit::FALSE;
                    }
                    self.stats.prunes += 1;
                }
            }
        }
    }

    /// Records the per-iteration partition statistics.
    pub fn record_iteration(&mut self) {
        self.stats.trajectory.push(self.parts.len());
        let max = self.parts.iter().map(|p| p.state_cone()).max().unwrap_or(0);
        self.stats.max_cone = self.stats.max_cone.max(max);
    }

    /// Total nodes across every partition manager.
    pub fn total_nodes(&self) -> usize {
        self.parts.iter().map(|p| p.aig.num_nodes()).sum()
    }

    /// Total SAT checks across every partition (live + retired bridges).
    pub fn total_sat_checks(&self) -> u64 {
        self.parts.iter().map(|p| p.sat_checks()).sum()
    }

    /// Summed AND-gate count of the partition frontiers.
    pub fn frontier_size(&self) -> usize {
        self.parts.iter().map(|p| p.aig.cone_size(p.frontier)).sum()
    }

    /// Summed AND-gate count of the partition reached sets.
    pub fn reached_size(&self) -> usize {
        self.parts.iter().map(|p| p.aig.cone_size(p.reached)).sum()
    }

    /// Sweeping counters folded across every partition, in index order.
    pub fn aggregate_sweep(&self) -> SweepStats {
        let mut total = SweepStats::default();
        for p in &self.parts {
            total.absorb(&p.sweep_stats());
        }
        total
    }

    /// SAT-bridge counters folded across every partition.
    pub fn aggregate_cnf(&self) -> AigCnfStats {
        let mut total = AigCnfStats::default();
        for p in &self.parts {
            total.absorb(&p.cnf.stats());
        }
        total
    }

    /// Solver-core counters (conflicts, arena bytes, LBD histogram, …)
    /// folded across every partition's persistent solver.
    pub fn aggregate_solver(&self) -> SolverStats {
        let mut total = SolverStats::default();
        for p in &self.parts {
            total.absorb(&p.cnf.solver_stats());
        }
        total
    }
}

/// A manager-independent serialisation of one cone. Inputs are identified
/// by their **ordinal**, which every partition manager preserves across
/// clones, splits, and GC compactions — so a cone exported from one
/// partition imports into any other with identical semantics.
#[derive(Clone, Debug)]
pub struct ConeExport {
    nodes: Vec<ExportNode>,
    root_idx: usize,
    root_neg: bool,
}

#[derive(Copy, Clone, Debug)]
enum ExportNode {
    Const,
    Input(usize),
    And(usize, bool, usize, bool),
}

/// Serialises the cone of `root` out of `aig`.
pub fn export_cone(aig: &Aig, root: Lit) -> ConeExport {
    let cone = aig.collect_cone(&[root]);
    // Dense cone-position plane: fanins precede gates, so no cone index
    // exceeds the root's.
    let mut idx_of = vec![usize::MAX; root.var().index() + 1];
    let mut nodes = Vec::with_capacity(cone.len());
    for v in cone {
        let node = match aig.node(v) {
            Node::Const => ExportNode::Const,
            Node::Input { .. } => {
                ExportNode::Input(aig.input_index(v).expect("input has an ordinal"))
            }
            Node::And { f0, f1 } => ExportNode::And(
                idx_of[f0.var().index()],
                f0.is_complemented(),
                idx_of[f1.var().index()],
                f1.is_complemented(),
            ),
        };
        idx_of[v.index()] = nodes.len();
        nodes.push(node);
    }
    ConeExport {
        nodes,
        root_idx: idx_of[root.var().index()],
        root_neg: root.is_complemented(),
    }
}

/// Rebuilds an exported cone inside `aig` (structural hashing dedups any
/// part that already exists) and returns the translated root.
pub fn import_cone(aig: &mut Aig, exp: &ConeExport) -> Lit {
    let mut lits: Vec<Lit> = Vec::with_capacity(exp.nodes.len());
    for node in &exp.nodes {
        let l = match *node {
            ExportNode::Const => Lit::FALSE,
            ExportNode::Input(ord) => aig.input_var(ord).lit(),
            ExportNode::And(a, na, b, nb) => {
                let la = lits[a].xor_sign(na);
                let lb = lits[b].xor_sign(nb);
                aig.and(la, lb)
            }
        };
        lits.push(l);
    }
    lits[exp.root_idx].xor_sign(exp.root_neg)
}

/// The conjunction of latch literals pinning `state` (trace extraction).
pub(crate) fn state_cube(aig: &mut Aig, latches: &[Var], state: &[bool]) -> Lit {
    let lits: Vec<Lit> = latches
        .iter()
        .zip(state)
        .map(|(l, v)| l.lit().xor_sign(!v))
        .collect();
    aig.and_many(&lits)
}

/// Reads the model values of a list of input variables, in order.
pub(crate) fn read_vars(aig: &Aig, vars: &[Var], cnf: &AigCnf) -> Vec<bool> {
    let model = cnf.model_inputs(aig);
    vars.iter()
        .map(|v| model[aig.input_index(*v).expect("sequential var is an input")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn cone_export_round_trips_across_managers() {
        let mut a = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| a.add_input().lit()).collect();
        let f = {
            let x = a.xor(ins[0], ins[1]);
            let y = a.and(x, !ins[2]);
            a.or(y, ins[3])
        };
        let exp = export_cone(&a, f);
        let mut b = Aig::with_inputs(4);
        let g = import_cone(&mut b, &exp);
        for mask in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(a.eval(f, &asg), b.eval(g, &asg));
        }
        // Constants survive too.
        let c = import_cone(&mut b, &export_cone(&a, Lit::TRUE));
        assert_eq!(c, Lit::TRUE);
    }

    #[test]
    fn latch_split_tiles_the_state_space() {
        let net = generators::token_ring(4);
        let mut ss = StateSet::new_backward(
            &net,
            PartitionConfig::with_count(PartitionCount::Fixed(4)),
            None,
            None,
            None,
        );
        // Install a frontier so the split has something to balance.
        let p = &mut ss.parts[0];
        let bad = p.bad;
        let f0 = p.preimage(bad);
        p.frontier = f0;
        p.frontier_parts = vec![f0];
        p.frontiers.push(f0);
        p.reached = f0;
        ss.split_to_target();
        assert_eq!(ss.parts.len(), 4);
        // Window cubes must be pairwise disjoint: two distinct windows
        // always disagree on some shared latch ordinal.
        for i in 0..ss.parts.len() {
            for j in i + 1..ss.parts.len() {
                let wi = &ss.parts[i].window;
                let wj = &ss.parts[j].window;
                let disjoint = wi
                    .iter()
                    .any(|(o, v)| wj.iter().any(|(o2, v2)| o == o2 && v != v2));
                assert!(disjoint, "windows {wi:?} and {wj:?} overlap");
            }
        }
        assert_eq!(ss.stats.splits, 3);
    }

    #[test]
    fn par_map_catches_worker_panics() {
        // A panicking partition worker must not abort the process: its
        // slot returns None, every healthy partition's result survives,
        // and the panicked index is recorded for the engine's verdict.
        let net = generators::token_ring(4);
        let mut ss = StateSet::new_backward(
            &net,
            PartitionConfig::with_count(PartitionCount::Fixed(2)),
            None,
            None,
            None,
        );
        let p = &mut ss.parts[0];
        let bad = p.bad;
        p.frontier = bad;
        p.frontier_parts = vec![bad];
        p.frontiers.push(bad);
        p.reached = bad;
        ss.split_to_target();
        assert!(ss.parts.len() >= 2);
        let results = ss.par_map(|i, _| {
            if i == 1 {
                panic!("injected worker failure");
            }
            i * 10
        });
        assert_eq!(results[0], Some(0));
        assert_eq!(results[1], None);
        assert_eq!(ss.stats.worker_panics, vec![1]);
        // The next sweep over the same set still works (and records a
        // second panic independently).
        let results = ss.par_map(|i, _| i);
        assert!(results.iter().all(Option::is_some));
        assert_eq!(ss.stats.worker_panics, vec![1]);
    }

    #[test]
    fn partition_counts_parse() {
        assert_eq!(
            PartitionCount::from_name("4"),
            Some(PartitionCount::Fixed(4))
        );
        assert_eq!(
            PartitionCount::from_name("auto"),
            Some(PartitionCount::Auto)
        );
        assert_eq!(PartitionCount::from_name("0"), None);
        assert_eq!(PartitionCount::from_name("many"), None);
        assert_eq!(PartitionCount::Fixed(3).resolve(), 3);
        assert!(PartitionCount::Auto.resolve() >= 1);
        assert_eq!(
            SplitPolicy::from_name("latch"),
            Some(SplitPolicy::LatchCofactor)
        );
        assert_eq!(
            SplitPolicy::from_name("origin"),
            Some(SplitPolicy::FrontierOrigin)
        );
        assert_eq!(SplitPolicy::from_name("x"), None);
        assert_eq!(SplitPolicy::LatchCofactor.name(), "latch");
        assert_eq!(SplitPolicy::FrontierOrigin.name(), "origin");
    }
}
