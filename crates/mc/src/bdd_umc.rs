//! BDD-based reachability — the canonical-representation baseline the
//! paper argues against ("traditional methodologies resort to BDD, or
//! BDD-like, representations; these suffer the well known memory
//! explosion problem, due to their canonicity").
//!
//! Backward traversal mirrors the circuit engine: pre-image is functional
//! substitution ([`cbq_bdd::BddManager::vector_compose`]) followed by
//! input quantification; fixpoint checks are free thanks to canonicity.
//! A forward engine (relational product over a monolithic transition
//! relation) is provided for completeness.

use std::collections::HashMap;

use cbq_bdd::{BddManager, BddRef};
use cbq_ckt::{Network, Trace};

use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// Traversal direction for [`BddUmc`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum BddDirection {
    /// Backward from the bad states (the paper's direction).
    #[default]
    Backward,
    /// Forward from the initial state.
    Forward,
}

/// BDD-based reachability engine.
#[derive(Clone, Debug)]
pub struct BddUmc {
    /// Traversal direction.
    pub direction: BddDirection,
    /// Abort with `Unknown` once the manager exceeds this many nodes.
    pub node_cap: usize,
    /// Iteration bound.
    pub max_iterations: usize,
}

impl Default for BddUmc {
    fn default() -> BddUmc {
        BddUmc {
            direction: BddDirection::Backward,
            node_cap: 5_000_000,
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`BddUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct BddUmcStats {
    /// Iterations executed.
    pub iterations: usize,
    /// BDD node count of each frontier.
    pub frontier_sizes: Vec<usize>,
    /// Node count of the final reached set.
    pub reached_size: usize,
    /// Total nodes allocated in the manager.
    pub peak_nodes: usize,
}

/// Level layout: latches at `0..L`, inputs at `L..L+I`, next-state copies
/// at `L+I..2L+I` (forward only).
struct Levels {
    num_latches: usize,
    num_inputs: usize,
}

impl Levels {
    fn latch(&self, j: usize) -> u32 {
        j as u32
    }
    fn input(&self, j: usize) -> u32 {
        (self.num_latches + j) as u32
    }
    fn next(&self, j: usize) -> u32 {
        (self.num_latches + self.num_inputs + j) as u32
    }
    fn input_levels(&self) -> Vec<u32> {
        (0..self.num_inputs).map(|j| self.input(j)).collect()
    }
    fn current_levels(&self) -> Vec<u32> {
        (0..self.num_latches).map(|j| self.latch(j)).collect()
    }
}

impl Engine for BddUmc {
    fn name(&self) -> &'static str {
        match self.direction {
            BddDirection::Backward => "bdd",
            BddDirection::Forward => "bdd-forward",
        }
    }

    /// Runs BDD reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        match self.direction {
            BddDirection::Backward => self.check_backward(net, &meter),
            BddDirection::Forward => self.check_forward(net, &meter),
        }
    }
}

impl BddUmc {
    /// Bundles the typed stats into the uniform run record.
    fn finish(&self, verdict: Verdict, stats: BddUmcStats, meter: &Meter) -> McRun {
        let common = McStats {
            engine: self.name(),
            iterations: stats.iterations,
            peak_nodes: stats.peak_nodes,
            sat_checks: 0,
            elapsed: meter.elapsed(),
        };
        McRun::new(verdict, common).with_detail(stats)
    }

    fn build_common(
        &self,
        net: &Network,
        mgr: &mut BddManager,
        lv: &Levels,
    ) -> Option<(BddRef, Vec<BddRef>, BddRef)> {
        // Map AIG inputs to levels.
        let mut var_level = HashMap::new();
        for (j, l) in net.latches().iter().enumerate() {
            var_level.insert(l.var, lv.latch(j));
        }
        for (j, v) in net.primary_inputs().iter().enumerate() {
            var_level.insert(*v, lv.input(j));
        }
        let bad = mgr.from_aig(net.aig(), net.bad(), &var_level, self.node_cap)?;
        let deltas: Vec<BddRef> = net
            .latches()
            .iter()
            .map(|l| mgr.from_aig(net.aig(), l.next, &var_level, self.node_cap))
            .collect::<Option<_>>()?;
        let init = {
            let mut cube = mgr.one();
            for (j, l) in net.latches().iter().enumerate() {
                let v = mgr.var(lv.latch(j));
                let lit = if l.init { v } else { mgr.not(v) };
                cube = mgr.and(cube, lit);
            }
            cube
        };
        Some((bad, deltas, init))
    }

    fn check_backward(&self, net: &Network, meter: &Meter) -> McRun {
        let lv = Levels {
            num_latches: net.num_latches(),
            num_inputs: net.num_inputs(),
        };
        let mut mgr = BddManager::new(lv.num_latches + lv.num_inputs);
        let mut stats = BddUmcStats::default();
        if let Some(bounded) = meter.exceeded(0, mgr.num_nodes(), 0) {
            return self.finish(bounded, stats, meter);
        }
        let Some((bad, deltas, init)) = self.build_common(net, &mut mgr, &lv) else {
            return self.blowup(stats, &mgr, meter);
        };
        let subst: HashMap<u32, BddRef> = deltas
            .iter()
            .enumerate()
            .map(|(j, d)| (lv.latch(j), *d))
            .collect();
        let input_levels = lv.input_levels();

        // F₀ = ∃i. bad. Keep the *raw* (pre-quantification) formulas for
        // counterexample input extraction.
        let mut raws: Vec<BddRef> = vec![bad];
        let Some(f0) = mgr.exists_limited(bad, &input_levels, self.node_cap) else {
            return self.blowup(stats, &mgr, meter);
        };
        let mut frontier = f0;
        let mut frontiers = vec![f0];
        let mut reached = f0;
        stats.frontier_sizes.push(mgr.size(f0));
        if mgr.and(frontier, init) != mgr.zero() {
            let trace = extract_trace(net, &mut mgr, &lv, &raws, 0);
            stats.peak_nodes = mgr.num_nodes();
            return self.finish(Verdict::Unsafe { trace }, stats, meter);
        }
        for iter in 1..=self.max_iterations {
            if let Some(bounded) = meter.exceeded(iter - 1, mgr.num_nodes(), 0) {
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(bounded, stats, meter);
            }
            stats.iterations = iter;
            let pre_raw = mgr.vector_compose(frontier, &subst);
            let Some(pre) = mgr.exists_limited(pre_raw, &input_levels, self.node_cap) else {
                return self.blowup(stats, &mgr, meter);
            };
            let nr = mgr.not(reached);
            let new = mgr.and(pre, nr);
            if new == mgr.zero() {
                stats.reached_size = mgr.size(reached);
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(Verdict::Safe { iterations: iter }, stats, meter);
            }
            raws.push(pre_raw);
            frontiers.push(new);
            stats.frontier_sizes.push(mgr.size(new));
            if mgr.and(new, init) != mgr.zero() {
                let trace = extract_trace(net, &mut mgr, &lv, &raws, iter);
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(Verdict::Unsafe { trace }, stats, meter);
            }
            reached = mgr.or(reached, new);
            frontier = new;
            if mgr.num_nodes() > self.node_cap {
                return self.blowup(stats, &mgr, meter);
            }
        }
        stats.peak_nodes = mgr.num_nodes();
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        self.finish(verdict, stats, meter)
    }

    fn check_forward(&self, net: &Network, meter: &Meter) -> McRun {
        let lv = Levels {
            num_latches: net.num_latches(),
            num_inputs: net.num_inputs(),
        };
        let mut mgr = BddManager::new(2 * lv.num_latches + lv.num_inputs);
        let mut stats = BddUmcStats::default();
        if let Some(bounded) = meter.exceeded(0, mgr.num_nodes(), 0) {
            return self.finish(bounded, stats, meter);
        }
        let Some((bad, deltas, init)) = self.build_common(net, &mut mgr, &lv) else {
            return self.blowup(stats, &mgr, meter);
        };
        // Monolithic transition relation T(s, i, s') = ∧ⱼ s'ⱼ ≡ δⱼ.
        let mut trans = mgr.one();
        for (j, d) in deltas.iter().enumerate() {
            let nv = mgr.var(lv.next(j));
            let eq = mgr.iff(nv, *d);
            trans = mgr.and(trans, eq);
            if mgr.num_nodes() > self.node_cap {
                return self.blowup(stats, &mgr, meter);
            }
        }
        // Quantify s and i in the relational product; then rename s' → s.
        let mut cur_and_inputs = lv.current_levels();
        cur_and_inputs.extend(lv.input_levels());
        let rename: HashMap<u32, BddRef> = (0..lv.num_latches)
            .map(|j| {
                let v = mgr.var(lv.latch(j));
                (lv.next(j), v)
            })
            .collect();

        let mut reached = init;
        let mut frontier = init;
        let mut frontiers = vec![init];
        stats.frontier_sizes.push(mgr.size(init));
        for iter in 0..=self.max_iterations {
            if let Some(bounded) = meter.exceeded(iter, mgr.num_nodes(), 0) {
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(bounded, stats, meter);
            }
            stats.iterations = iter;
            // Counterexample: a reached state fires bad under some input.
            if mgr.and(frontier, bad) != mgr.zero() {
                let trace = extract_forward_trace(net, &mut mgr, &lv, &frontiers, bad, trans, iter);
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(Verdict::Unsafe { trace }, stats, meter);
            }
            let img = mgr.and_exists(trans, frontier, &cur_and_inputs);
            let img = mgr.vector_compose(img, &rename);
            let nr = mgr.not(reached);
            let new = mgr.and(img, nr);
            if new == mgr.zero() {
                stats.reached_size = mgr.size(reached);
                stats.peak_nodes = mgr.num_nodes();
                return self.finish(
                    Verdict::Safe {
                        iterations: iter + 1,
                    },
                    stats,
                    meter,
                );
            }
            frontiers.push(new);
            stats.frontier_sizes.push(mgr.size(new));
            reached = mgr.or(reached, new);
            frontier = new;
            if mgr.num_nodes() > self.node_cap {
                return self.blowup(stats, &mgr, meter);
            }
        }
        stats.peak_nodes = mgr.num_nodes();
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        self.finish(verdict, stats, meter)
    }

    fn blowup(&self, mut stats: BddUmcStats, mgr: &BddManager, meter: &Meter) -> McRun {
        stats.peak_nodes = mgr.num_nodes();
        let verdict = Verdict::Unknown {
            reason: format!("BDD blow-up beyond {} nodes", self.node_cap),
        };
        self.finish(verdict, stats, meter)
    }
}

/// Backward-traversal counterexample: walk forward from the initial
/// state; at each level restrict the raw (state × input) pre-image
/// formula by the current state and read an input assignment off the BDD.
fn extract_trace(
    net: &Network,
    mgr: &mut BddManager,
    lv: &Levels,
    raws: &[BddRef],
    level: usize,
) -> Trace {
    let mut inputs_seq = Vec::with_capacity(level + 1);
    let mut state = net.initial_state();
    for l in (0..=level).rev() {
        // raws[l] is over (s, i): for l ≥ 1 the pairs whose successor lies
        // in frontier l-1, and bad itself for l = 0. Walking forward from
        // the initial state consumes raws[level], …, raws[0].
        let mut g = raws[l];
        for (j, v) in state.iter().enumerate() {
            g = mgr.restrict(g, lv.latch(j), *v);
        }
        let asg = mgr
            .one_sat(g)
            .expect("counterexample step must be satisfiable");
        let inputs: Vec<bool> = (0..lv.num_inputs)
            .map(|j| asg[lv.input(j) as usize].unwrap_or(false))
            .collect();
        let (next, _) = net.step(&state, &inputs);
        inputs_seq.push(inputs);
        state = next;
    }
    Trace::new(inputs_seq)
}

/// Forward-traversal counterexample: pick a bad state in the last
/// frontier, then walk backwards through the frontiers using the
/// transition relation, collecting inputs; emit them in forward order.
fn extract_forward_trace(
    net: &Network,
    mgr: &mut BddManager,
    lv: &Levels,
    frontiers: &[BddRef],
    bad: BddRef,
    trans: BddRef,
    level: usize,
) -> Trace {
    // Final state: in frontiers[level] ∧ ∃i.bad — take a concrete one,
    // with the bad-firing input.
    let final_sel = mgr.and(frontiers[level], bad);
    let asg = mgr.one_sat(final_sel).expect("bad intersection nonempty");
    let mut states_rev: Vec<Vec<bool>> = Vec::new();
    let mut inputs_rev: Vec<Vec<bool>> = Vec::new();
    let cur_state: Vec<bool> = (0..lv.num_latches)
        .map(|j| asg[lv.latch(j) as usize].unwrap_or(false))
        .collect();
    let final_inputs: Vec<bool> = (0..lv.num_inputs)
        .map(|j| asg[lv.input(j) as usize].unwrap_or(false))
        .collect();
    inputs_rev.push(final_inputs);
    states_rev.push(cur_state);
    for l in (0..level).rev() {
        let target = states_rev.last().expect("non-empty");
        // Predecessor in frontiers[l]: frontiers[l](s) ∧ T(s,i,s'=target).
        let mut g = mgr.and(frontiers[l], trans);
        for (j, v) in target.iter().enumerate() {
            g = mgr.restrict(g, lv.next(j), *v);
        }
        let asg = mgr.one_sat(g).expect("predecessor must exist");
        let state: Vec<bool> = (0..lv.num_latches)
            .map(|j| asg[lv.latch(j) as usize].unwrap_or(false))
            .collect();
        let inputs: Vec<bool> = (0..lv.num_inputs)
            .map(|j| asg[lv.input(j) as usize].unwrap_or(false))
            .collect();
        inputs_rev.push(inputs);
        states_rev.push(state);
    }
    inputs_rev.reverse();
    let _ = net;
    Trace::new(inputs_rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    fn engines() -> [BddUmc; 2] {
        [
            BddUmc {
                direction: BddDirection::Backward,
                ..BddUmc::default()
            },
            BddUmc {
                direction: BddDirection::Forward,
                ..BddUmc::default()
            },
        ]
    }

    #[test]
    fn safe_circuits_both_directions() {
        for eng in engines() {
            for net in [
                generators::token_ring(5),
                generators::bounded_counter(4, 9),
                generators::gray_counter(4),
                generators::mutex(),
            ] {
                crate::testsupport::check_safe(&eng, &net);
            }
        }
    }

    #[test]
    fn unsafe_circuits_both_directions() {
        for eng in engines() {
            for (net, depth) in [
                (generators::token_ring_bug(5), 3),
                (generators::mutex_bug(), 2),
                (generators::shift_ones(4), 4),
                (generators::counter_bug(4, 5), 5),
            ] {
                crate::testsupport::check_unsafe(&eng, &net, Some(depth));
            }
        }
    }

    #[test]
    fn node_cap_aborts_cleanly() {
        let eng = BddUmc {
            node_cap: 50,
            ..BddUmc::default()
        };
        let run = eng.check(&generators::fifo_ctrl(3), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn stats_are_populated() {
        let run = BddUmc::default().check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.stats.iterations >= 1);
        assert!(run.stats.peak_nodes > 0);
        let detail = run.detail::<BddUmcStats>().expect("typed stats");
        assert!(!detail.frontier_sizes.is_empty());
    }

    #[test]
    fn node_budget_is_bounded_not_unknown() {
        // Unlike the engine's own node_cap (an internal give-up, hence
        // Unknown), a caller-imposed node budget reports Bounded.
        let run = BddUmc::default().check(
            &generators::fifo_ctrl(3),
            &Budget::unlimited().with_nodes(10),
        );
        assert!(run.verdict.is_bounded(), "got {}", run.verdict);
    }
}
