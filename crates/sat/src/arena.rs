//! The contiguous clause arena backing the CDCL solver.
//!
//! Every clause — problem or learnt — lives in one flat `Vec<u32>`:
//! two header words (length/flags and the LBD glue score) followed by the
//! literal codes. Clauses are addressed by a typed [`CRef`] (the word
//! offset of the header), so watcher lists and reason slots are plain
//! `u32`s instead of fat pointers, clause access is a single slice index,
//! and the whole database is one allocation that the reduce-DB pass
//! compacts in place. This is the layout of MiniSat's `ClauseAllocator`
//! (and of its Rust ports), traded against the seed solver's
//! `Vec<Vec<SatLit>>`-per-clause representation.
//!
//! Layout of one clause at offset `c`:
//!
//! ```text
//! data[c]     = len << 2 | learnt << 1 | dead
//! data[c + 1] = lbd            (0 for problem clauses)
//! data[c + 2 ..= c + 1 + len]  = literal codes
//! ```

use crate::types::SatLit;

/// A typed reference into the [`ClauseArena`]: the word offset of the
/// clause header.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CRef(pub(crate) u32);

impl CRef {
    /// The raw word offset (diagnostics only).
    pub fn offset(self) -> u32 {
        self.0
    }
}

const HEADER_WORDS: usize = 2;
const LEARNT_BIT: u32 = 0b10;
const DEAD_BIT: u32 = 0b01;

/// The flat clause store. See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
pub struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by clauses marked dead (reclaimable by compaction).
    wasted: usize,
}

impl ClauseArena {
    /// An empty arena.
    pub fn new() -> ClauseArena {
        ClauseArena::default()
    }

    /// Total words allocated (headers + literals of live *and* dead
    /// clauses; compaction reclaims the dead ones).
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Words occupied by dead clauses awaiting compaction.
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Total bytes of the arena storage.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }

    /// Whether the arena holds no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocates a clause and returns its reference.
    pub fn alloc(&mut self, lits: &[SatLit], learnt: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2, "unit clauses live on the trail");
        let c = CRef(u32::try_from(self.data.len()).expect("clause arena overflow"));
        let flags = if learnt { LEARNT_BIT } else { 0 };
        self.data.push((lits.len() as u32) << 2 | flags);
        self.data.push(lbd);
        self.data.extend(lits.iter().map(|l| l.0));
        c
    }

    /// Number of literals of clause `c`.
    pub fn len(&self, c: CRef) -> usize {
        (self.data[c.0 as usize] >> 2) as usize
    }

    /// Whether `c` is a learnt clause.
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.data[c.0 as usize] & LEARNT_BIT != 0
    }

    /// Whether `c` has been marked dead (pending compaction).
    pub fn is_dead(&self, c: CRef) -> bool {
        self.data[c.0 as usize] & DEAD_BIT != 0
    }

    /// Marks `c` dead; the storage is reclaimed by [`ClauseArena::compact`].
    pub fn mark_dead(&mut self, c: CRef) {
        debug_assert!(!self.is_dead(c));
        self.data[c.0 as usize] |= DEAD_BIT;
        self.wasted += HEADER_WORDS + self.len(c);
    }

    /// The glue (LBD) score of clause `c`.
    pub fn lbd(&self, c: CRef) -> u32 {
        self.data[c.0 as usize + 1]
    }

    /// Updates the glue score of clause `c` (only ever lowered, when a
    /// conflict re-derives the clause through fewer decision levels).
    pub fn set_lbd(&mut self, c: CRef, lbd: u32) {
        self.data[c.0 as usize + 1] = lbd;
    }

    /// The `i`-th literal of clause `c`.
    pub fn lit(&self, c: CRef, i: usize) -> SatLit {
        SatLit(self.data[c.0 as usize + HEADER_WORDS + i])
    }

    /// Copies the literals of clause `c` into a fresh vector (conflict
    /// analysis needs them while mutating the solver).
    pub fn lits_vec(&self, c: CRef) -> Vec<SatLit> {
        (0..self.len(c)).map(|i| self.lit(c, i)).collect()
    }

    /// Swaps literals `i` and `j` of clause `c`.
    pub fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        let base = c.0 as usize + HEADER_WORDS;
        self.data.swap(base + i, base + j);
    }

    /// Compacts the arena: every clause not marked dead is copied front-
    /// to-back into the same store, and its old header slot is overwritten
    /// with the forwarding offset. Returns an [`ArenaRemap`] that
    /// translates pre-compaction references of *live* clauses; dead
    /// references must not be looked up.
    pub fn compact(&mut self) -> ArenaRemap {
        let mut fresh: Vec<u32> = Vec::with_capacity(self.data.len() - self.wasted);
        let mut at = 0usize;
        while at < self.data.len() {
            let header = self.data[at];
            let len = (header >> 2) as usize;
            let total = HEADER_WORDS + len;
            if header & DEAD_BIT == 0 {
                let new_off = fresh.len() as u32;
                fresh.extend_from_slice(&self.data[at..at + total]);
                // Forwarding address, read back via `ArenaRemap::forward`.
                self.data[at] = new_off;
            }
            at += total;
        }
        debug_assert_eq!(at, self.data.len(), "arena walk misaligned");
        let old = std::mem::replace(&mut self.data, fresh);
        self.wasted = 0;
        ArenaRemap { forwarding: old }
    }
}

/// The forwarding table produced by [`ClauseArena::compact`]: old header
/// slots of live clauses hold their new offsets.
pub struct ArenaRemap {
    forwarding: Vec<u32>,
}

impl ArenaRemap {
    /// The post-compaction reference of a clause that was live at `c`.
    pub fn forward(&self, c: CRef) -> CRef {
        CRef(self.forwarding[c.0 as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatVar;

    fn lits(codes: &[usize]) -> Vec<SatLit> {
        codes.iter().map(|&c| SatLit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_access() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 3]), false, 0);
        let c2 = a.alloc(&lits(&[2, 5, 7]), true, 2);
        assert_eq!(a.len(c1), 2);
        assert_eq!(a.len(c2), 3);
        assert!(!a.is_learnt(c1));
        assert!(a.is_learnt(c2));
        assert_eq!(a.lbd(c2), 2);
        assert_eq!(a.lit(c2, 1), SatVar::from_index(2).neg());
        a.set_lbd(c2, 1);
        assert_eq!(a.lbd(c2), 1);
        a.swap_lits(c2, 0, 2);
        assert_eq!(a.lit(c2, 0), SatLit::from_code(7));
        assert_eq!(a.words(), 4 + 5);
    }

    #[test]
    fn compaction_forwards_live_clauses() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 3]), false, 0);
        let c2 = a.alloc(&lits(&[2, 5, 7]), true, 3);
        let c3 = a.alloc(&lits(&[1, 4]), true, 1);
        a.mark_dead(c2);
        assert!(a.is_dead(c2));
        assert_eq!(a.wasted(), 5);
        let before = a.words();
        let remap = a.compact();
        assert_eq!(a.wasted(), 0);
        assert!(a.words() < before);
        let n1 = remap.forward(c1);
        let n3 = remap.forward(c3);
        assert_eq!(a.lits_vec(n1), lits(&[0, 3]));
        assert_eq!(a.lits_vec(n3), lits(&[1, 4]));
        assert!(a.is_learnt(n3));
        assert_eq!(a.lbd(n3), 1);
    }
}
