//! The paper's traversal routine: backward reachability with AIG state
//! sets and circuit-based quantification (Section 3).

use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::SatResult;

use crate::engine::{Budget, Engine, Meter};
use crate::ganai::all_solutions_exists;
use crate::preimage::preimage_formula;
use crate::verdict::{McRun, McStats, Verdict};

/// How to finish quantification when partial quantification aborts some
/// input variables (Section 4: "it accepts effective quantification and
/// aborts the expensive ones").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResidualPolicy {
    /// Fall back to the naive cofactor disjunction (always completes, may
    /// grow the circuit).
    Naive,
    /// Hand the residual variables to all-solutions SAT enumeration with
    /// circuit cofactoring (the paper's proposed combination with [2]),
    /// bounded by this many enumeration rounds (falls back to naive if
    /// exhausted).
    Enumerate {
        /// Maximum enumeration rounds per quantification.
        max_rounds: usize,
    },
}

/// Backward-reachability model checker over AIG state sets — the paper's
/// engine.
///
/// "Given an invariant property P we start reachability from its
/// complement and we terminate as soon as no newly reached states are
/// found (fix-point) or we intersect the initial state set, delivering a
/// counter-example. In our implementation all state sets are represented
/// and manipulated using AIGs instead of BDDs. Operations on AIGs, e.g.,
/// equivalence, are performed using a SAT engine."
#[derive(Clone, Debug)]
pub struct CircuitUmc {
    /// Quantification engine configuration (merge/optimise/budget).
    pub quant: QuantConfig,
    /// What to do with variables partial quantification aborts.
    pub residual: ResidualPolicy,
    /// Iteration bound (a safety net; reaching it yields `Unknown`).
    pub max_iterations: usize,
}

impl Default for CircuitUmc {
    fn default() -> CircuitUmc {
        CircuitUmc {
            quant: QuantConfig::full(),
            residual: ResidualPolicy::Naive,
            max_iterations: 10_000,
        }
    }
}

/// Statistics of a [`CircuitUmc`] run.
#[derive(Clone, Debug, Default)]
pub struct CircuitUmcStats {
    /// Backward iterations executed.
    pub iterations: usize,
    /// AND-gate count of each frontier after quantification.
    pub frontier_sizes: Vec<usize>,
    /// AND-gate count of the final reached-set representation.
    pub reached_size: usize,
    /// Total nodes allocated in the working AIG (monotone, a peak proxy).
    pub peak_nodes: usize,
    /// Assumption-based SAT checks issued (all purposes).
    pub sat_checks: u64,
    /// Input variables aborted by partial quantification, total.
    pub quant_aborts: usize,
    /// Cofactors enumerated by the residual policy, total.
    pub ganai_cofactors: usize,
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: CircuitUmcStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "circuit",
        iterations: stats.iterations,
        peak_nodes: stats.peak_nodes,
        sat_checks: stats.sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for CircuitUmc {
    fn name(&self) -> &'static str {
        "circuit"
    }

    /// Runs backward reachability on `net` within `budget`.
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut aig = net.aig().clone();
        let mut cnf = AigCnf::new();
        let mut stats = CircuitUmcStats::default();
        if let Some(bounded) = meter.exceeded(0, aig.num_nodes(), 0) {
            stats.peak_nodes = aig.num_nodes();
            return finish(bounded, stats, &meter);
        }
        let pis: Vec<Var> = net.primary_inputs().to_vec();
        let init_lit = net.initial_cube().to_lit(&mut aig);

        // F₀ = ∃i. bad(s, i)
        let mut frontier = self.quantify(&mut aig, net.bad(), &pis, &mut cnf, &mut stats);
        let mut frontiers: Vec<Lit> = vec![frontier];
        let mut reached = frontier;
        stats.frontier_sizes.push(aig.cone_size(frontier));

        // Is the initial state already bad?
        if cnf.solve_under(&aig, &[frontier, init_lit]) == SatResult::Sat {
            let trace = self.extract_trace(&mut aig, net, &mut cnf, &frontiers, 0);
            stats.sat_checks = cnf.stats().checks;
            stats.peak_nodes = aig.num_nodes();
            return finish(Verdict::Unsafe { trace }, stats, &meter);
        }

        for iter in 1..=self.max_iterations {
            if let Some(bounded) = meter.exceeded(iter - 1, aig.num_nodes(), cnf.stats().checks) {
                stats.sat_checks = cnf.stats().checks;
                stats.reached_size = aig.cone_size(reached);
                stats.peak_nodes = aig.num_nodes();
                return finish(bounded, stats, &meter);
            }
            stats.iterations = iter;
            // Pre-image: in-line the next-state functions, then quantify
            // the primary inputs by circuit-based quantification.
            let pre_raw = preimage_formula(&mut aig, net, frontier);
            let pre = self.quantify(&mut aig, pre_raw, &pis, &mut cnf, &mut stats);
            // New states this iteration.
            let new = aig.and(pre, !reached);
            if cnf.solve_under(&aig, &[new]) == SatResult::Unsat {
                stats.sat_checks = cnf.stats().checks;
                stats.reached_size = aig.cone_size(reached);
                stats.peak_nodes = aig.num_nodes();
                return finish(Verdict::Safe { iterations: iter }, stats, &meter);
            }
            frontiers.push(new);
            stats.frontier_sizes.push(aig.cone_size(new));
            if cnf.solve_under(&aig, &[new, init_lit]) == SatResult::Sat {
                let trace = self.extract_trace(&mut aig, net, &mut cnf, &frontiers, iter);
                stats.sat_checks = cnf.stats().checks;
                stats.peak_nodes = aig.num_nodes();
                return finish(Verdict::Unsafe { trace }, stats, &meter);
            }
            reached = aig.or(reached, new);
            frontier = new;
        }
        stats.sat_checks = cnf.stats().checks;
        stats.reached_size = aig.cone_size(reached);
        stats.peak_nodes = aig.num_nodes();
        let verdict = Verdict::Unknown {
            reason: format!("iteration bound {} reached", self.max_iterations),
        };
        finish(verdict, stats, &meter)
    }
}

impl CircuitUmc {
    /// Quantifies the primary inputs out of `f`, honouring the partial
    /// quantification budget and the residual policy.
    fn quantify(
        &self,
        aig: &mut Aig,
        f: Lit,
        pis: &[Var],
        cnf: &mut AigCnf,
        stats: &mut CircuitUmcStats,
    ) -> Lit {
        let q = exists_many(aig, f, pis, cnf, &self.quant);
        if q.remaining.is_empty() {
            return q.lit;
        }
        stats.quant_aborts += q.remaining.len();
        match self.residual {
            ResidualPolicy::Naive => {
                let naive = QuantConfig::naive();
                exists_many(aig, q.lit, &q.remaining, cnf, &naive).lit
            }
            ResidualPolicy::Enumerate { max_rounds } => {
                match all_solutions_exists(aig, q.lit, &q.remaining, cnf, max_rounds) {
                    Some((lit, gstats)) => {
                        stats.ganai_cofactors += gstats.cofactors;
                        lit
                    }
                    None => {
                        let naive = QuantConfig::naive();
                        exists_many(aig, q.lit, &q.remaining, cnf, &naive).lit
                    }
                }
            }
        }
    }

    /// Walks a counterexample forward: from the initial state, at each
    /// level find an input leading into the next (closer-to-bad)
    /// frontier, finishing with an input that fires `bad` itself.
    fn extract_trace(
        &self,
        aig: &mut Aig,
        net: &Network,
        cnf: &mut AigCnf,
        frontiers: &[Lit],
        level: usize,
    ) -> Trace {
        let mut inputs_seq: Vec<Vec<bool>> = Vec::with_capacity(level + 1);
        let mut state = net.initial_state();
        for l in (0..level).rev() {
            let target = frontiers[l];
            let pre_raw = preimage_formula(aig, net, target);
            let cube = state_cube(aig, net, &state);
            let r = cnf.solve_under(aig, &[pre_raw, cube]);
            debug_assert_eq!(r, SatResult::Sat, "trace step must be satisfiable");
            let inputs = extract_pi_values(aig, net, cnf);
            let (next, _) = net.step(&state, &inputs);
            inputs_seq.push(inputs);
            state = next;
        }
        // Final step: fire bad from the current state.
        let cube = state_cube(aig, net, &state);
        let r = cnf.solve_under(aig, &[net.bad(), cube]);
        debug_assert_eq!(r, SatResult::Sat, "bad must fire at trace end");
        inputs_seq.push(extract_pi_values(aig, net, cnf));
        Trace::new(inputs_seq)
    }
}

/// The conjunction of latch literals pinning `state`.
fn state_cube(aig: &mut Aig, net: &Network, state: &[bool]) -> Lit {
    let lits: Vec<Lit> = net
        .latches()
        .iter()
        .zip(state)
        .map(|(l, v)| l.var.lit().xor_sign(!v))
        .collect();
    aig.and_many(&lits)
}

/// Reads the primary-input values from the current SAT model.
fn extract_pi_values(aig: &Aig, net: &Network, cnf: &AigCnf) -> Vec<bool> {
    let model = cnf.model_inputs(aig);
    net.primary_inputs()
        .iter()
        .map(|v| model[aig.input_index(*v).expect("PI is an input")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    fn check_safe(net: &Network) {
        let run = CircuitUmc::default().check(net, &Budget::unlimited());
        assert!(
            run.verdict.is_safe(),
            "{} should be safe, got {}",
            net.name(),
            run.verdict
        );
    }

    fn check_unsafe(net: &Network, expected_depth: Option<usize>) {
        let run = CircuitUmc::default().check(net, &Budget::unlimited());
        match &run.verdict {
            Verdict::Unsafe { trace } => {
                assert!(
                    trace.validates(net),
                    "{}: trace does not replay",
                    net.name()
                );
                if let Some(d) = expected_depth {
                    assert_eq!(trace.len(), d + 1, "{}: unexpected cex length", net.name());
                }
            }
            other => panic!("{} should be unsafe, got {other}", net.name()),
        }
    }

    #[test]
    fn safe_token_ring() {
        check_safe(&generators::token_ring(6));
    }

    #[test]
    fn safe_bounded_counter() {
        check_safe(&generators::bounded_counter(4, 9));
    }

    #[test]
    fn safe_gray_counter() {
        check_safe(&generators::gray_counter(4));
    }

    #[test]
    fn deep_backward_fixpoint_iteration_count() {
        // The gap circuit converges in exactly gap+1 backward iterations.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Safe { iterations } => assert_eq!(iterations, 12 - 6 + 1),
            other => panic!("expected safe, got {other}"),
        }
    }

    #[test]
    fn safe_lfsr() {
        check_safe(&generators::lfsr(5, &[0, 2]));
    }

    #[test]
    fn safe_arbiter() {
        check_safe(&generators::arbiter(4));
    }

    #[test]
    fn safe_mutex() {
        check_safe(&generators::mutex());
    }

    #[test]
    fn unsafe_token_ring_bug() {
        check_unsafe(&generators::token_ring_bug(5), Some(3));
    }

    #[test]
    fn unsafe_mutex_bug() {
        check_unsafe(&generators::mutex_bug(), Some(2));
    }

    #[test]
    fn unsafe_shift_ones() {
        check_unsafe(&generators::shift_ones(4), Some(4));
    }

    #[test]
    fn unsafe_counter_bug() {
        check_unsafe(&generators::counter_bug(4, 6), Some(6));
    }

    #[test]
    fn residual_policies_agree() {
        let net = generators::shift_ones(5);
        let tight = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Enumerate { max_rounds: 128 },
            ..CircuitUmc::default()
        };
        let run = tight.check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => assert!(trace.validates(&net)),
            other => panic!("expected unsafe, got {other}"),
        }
        let naive = CircuitUmc {
            quant: QuantConfig::full().with_budget(1.05),
            residual: ResidualPolicy::Naive,
            ..CircuitUmc::default()
        };
        let run2 = naive.check(&net, &Budget::unlimited());
        assert!(run2.verdict.is_unsafe());
    }

    #[test]
    fn stats_are_populated() {
        let run = CircuitUmc::default().check(&generators::token_ring(4), &Budget::unlimited());
        assert!(run.stats.iterations >= 1);
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        let detail = run.detail::<CircuitUmcStats>().expect("typed stats");
        assert!(!detail.frontier_sizes.is_empty());
        assert_eq!(detail.iterations, run.stats.iterations);
    }

    #[test]
    fn step_budget_bounds_the_traversal() {
        // The gap circuit needs 7 backward iterations; 2 are not enough.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = CircuitUmc::default().check(&net, &Budget::unlimited().with_steps(2));
        match run.verdict {
            Verdict::Bounded { resource, limit } => {
                assert_eq!(resource, crate::Resource::Steps);
                assert_eq!(limit, 2);
            }
            other => panic!("expected bounded, got {other}"),
        }
        assert!(run.stats.iterations <= 2);
    }
}
