//! The append-only, structurally hashed AIG manager.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::lit::{Lit, Var};
use crate::node::Node;

/// Hot-path implementation selection for the manager.
///
/// The default ([`AigTuning::full`]) is the fast configuration: an
/// open-addressing strash, the generation-stamped dense compose/cofactor
/// scratchpad, support-limited cofactoring, and the cofactor cache. Each
/// feature can be disabled independently, falling back to a plain
/// reference implementation (per-call `HashMap`s, full-cone rebuilds).
/// The reference rungs exist for two reasons: the `e6q` bench ablates
/// each feature against them, and the property tests pin the fast paths
/// *bit-identical* to the reference paths on random circuits.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AigTuning {
    /// Open-addressing strash (off: reference `HashMap` strash).
    pub open_strash: bool,
    /// Generation-stamped dense compose/cofactor memo (off: reference
    /// per-call `HashMap` memo).
    pub dense_scratch: bool,
    /// Support-limited cofactoring: nodes outside the substituted
    /// variables' dependent sub-cone are copied through unchanged instead
    /// of being re-issued through [`Aig::and`].
    pub support_limited: bool,
    /// The direct-mapped (root, var, phase) cofactor cache.
    pub cofactor_cache: bool,
}

impl AigTuning {
    /// Every fast path enabled (the default).
    pub const fn full() -> AigTuning {
        AigTuning {
            open_strash: true,
            dense_scratch: true,
            support_limited: true,
            cofactor_cache: true,
        }
    }

    /// Every fast path disabled: the straightforward `HashMap`-based
    /// implementation, kept as the differential-testing oracle and the
    /// baseline rung of the `e6q` ablation.
    pub const fn reference() -> AigTuning {
        AigTuning {
            open_strash: false,
            dense_scratch: false,
            support_limited: false,
            cofactor_cache: false,
        }
    }

    fn to_bits(self) -> u8 {
        (!self.open_strash as u8)
            | (!self.dense_scratch as u8) << 1
            | (!self.support_limited as u8) << 2
            | (!self.cofactor_cache as u8) << 3
    }

    fn from_bits(bits: u8) -> AigTuning {
        AigTuning {
            open_strash: bits & 1 == 0,
            dense_scratch: bits & 2 == 0,
            support_limited: bits & 4 == 0,
            cofactor_cache: bits & 8 == 0,
        }
    }

    /// Sets the tuning that [`Aig::new`] gives to freshly created managers,
    /// process-wide. This exists so a bench harness can ablate one feature
    /// across a whole engine run (which creates managers internally, e.g.
    /// one per state-set partition) without threading a knob through every
    /// layer; production code never calls it.
    pub fn set_process_default(tuning: AigTuning) {
        DEFAULT_TUNING.store(tuning.to_bits(), Ordering::Relaxed);
    }

    /// The tuning [`Aig::new`] currently hands to new managers.
    pub fn process_default() -> AigTuning {
        AigTuning::from_bits(DEFAULT_TUNING.load(Ordering::Relaxed))
    }
}

impl Default for AigTuning {
    fn default() -> AigTuning {
        AigTuning::full()
    }
}

/// `AigTuning::full()` encodes to 0, so the static default is all-fast.
static DEFAULT_TUNING: AtomicU8 = AtomicU8::new(0);

/// Snapshot of the manager's hot-path work counters. Counters only ever
/// grow within one manager (compaction builds a fresh manager and resets
/// them); take two snapshots and subtract ([`AigPerfCounters::since`]) to
/// attribute work to a phase.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AigPerfCounters {
    /// Strash slots inspected by [`Aig::and`] lookups (one per lookup in
    /// the reference `HashMap` mode).
    pub strash_probes: u64,
    /// Nodes visited by substitution cone walks (compose / cofactor),
    /// counted on the dense scratchpad path and the reference `HashMap`
    /// path alike — the rung-to-rung drop is what support limiting and
    /// multi-root walk sharing save.
    pub scratch_walk_nodes: u64,
    /// Cofactor-cache hits.
    pub cofactor_cache_hits: u64,
}

impl AigPerfCounters {
    /// Counter deltas accumulated since an `earlier` snapshot of the same
    /// manager (saturating, so a snapshot from before a compaction — which
    /// resets the counters — cannot underflow).
    pub fn since(self, earlier: AigPerfCounters) -> AigPerfCounters {
        AigPerfCounters {
            strash_probes: self.strash_probes.saturating_sub(earlier.strash_probes),
            scratch_walk_nodes: self
                .scratch_walk_nodes
                .saturating_sub(earlier.scratch_walk_nodes),
            cofactor_cache_hits: self
                .cofactor_cache_hits
                .saturating_sub(earlier.cofactor_cache_hits),
        }
    }

    /// Accumulates another snapshot's (or delta's) counters into this one
    /// — for totalling per-phase deltas across managers or partitions.
    pub fn add(&mut self, other: AigPerfCounters) {
        self.strash_probes += other.strash_probes;
        self.scratch_walk_nodes += other.scratch_walk_nodes;
        self.cofactor_cache_hits += other.cofactor_cache_hits;
    }
}

/// Open-addressing structural-hash table mapping normalised fanin pairs
/// to node variables. Keys are the raw literal codes; stored fanins are
/// never constants (the one-level rules return before the table is
/// consulted), so the all-zero key doubles as the empty marker.
/// Fibonacci multiplicative hashing, linear probing, power-of-two
/// capacity, no deletion — the manager is append-only.
#[derive(Clone)]
struct OpenStrash {
    keys: Vec<(u32, u32)>,
    vals: Vec<u32>,
    len: usize,
}

const STRASH_EMPTY: (u32, u32) = (0, 0);

fn strash_hash(key: (u32, u32)) -> usize {
    let x = (u64::from(key.0) << 32) | u64::from(key.1);
    let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    // The high product bits are the well-mixed ones; fold them down
    // before the caller masks to the table size.
    (h ^ (h >> 32)) as usize
}

impl OpenStrash {
    fn with_capacity(ands: usize) -> OpenStrash {
        let cap = (ands.max(16) * 2).next_power_of_two();
        OpenStrash {
            keys: vec![STRASH_EMPTY; cap],
            vals: vec![0; cap],
            len: 0,
        }
    }

    fn get(&self, key: (u32, u32), probes: &mut u64) -> Option<Var> {
        let mask = self.keys.len() - 1;
        let mut i = strash_hash(key) & mask;
        loop {
            *probes += 1;
            let k = self.keys[i];
            if k == key {
                return Some(Var(self.vals[i]));
            }
            if k == STRASH_EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: (u32, u32), var: Var) {
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = strash_hash(key) & mask;
        while self.keys[i] != STRASH_EMPTY {
            debug_assert_ne!(self.keys[i], key, "duplicate strash insert");
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.vals[i] = var.0;
        self.len += 1;
    }

    fn grow(&mut self) {
        let mut bigger = OpenStrash::with_capacity(self.keys.len());
        for (k, &v) in self.keys.iter().zip(&self.vals) {
            if *k != STRASH_EMPTY {
                bigger.insert(*k, Var(v));
            }
        }
        *self = bigger;
    }
}

/// The strash behind [`Aig::and`]: open addressing by default, with the
/// `HashMap` original kept as the [`AigTuning`] reference rung.
#[derive(Clone)]
enum StrashTable {
    Open(OpenStrash),
    Reference(HashMap<(Lit, Lit), Var>),
}

impl StrashTable {
    fn new(open: bool, ands: usize) -> StrashTable {
        if open {
            StrashTable::Open(OpenStrash::with_capacity(ands))
        } else {
            StrashTable::Reference(HashMap::with_capacity(ands))
        }
    }

    fn get(&self, f0: Lit, f1: Lit, probes: &mut u64) -> Option<Var> {
        match self {
            StrashTable::Open(t) => t.get((f0.code(), f1.code()), probes),
            StrashTable::Reference(m) => {
                *probes += 1;
                m.get(&(f0, f1)).copied()
            }
        }
    }

    fn insert(&mut self, f0: Lit, f1: Lit, var: Var) {
        match self {
            StrashTable::Open(t) => t.insert((f0.code(), f1.code()), var),
            StrashTable::Reference(m) => {
                m.insert((f0, f1), var);
            }
        }
    }
}

/// Generation-stamped dense scratchpad for compose/cofactor cone walks.
///
/// "Clearing" is a generation bump, not a memset: an entry is live iff its
/// stamp equals the current generation, so back-to-back compose calls pay
/// zero reset cost and no per-call allocation once the buffers have grown
/// to the manager's size. Only nodes that exist when a walk begins are
/// ever stamped; nodes the walk itself creates have larger indices and
/// are never queried, so the buffers need no mid-walk growth.
#[derive(Clone, Default)]
struct Scratch {
    /// Memo: `memo[i]` is live iff `stamp[i] == gen`.
    gen: u32,
    stamp: Vec<u32>,
    memo: Vec<Lit>,
    /// Traversal marks, independent of the memo (the memo is pre-seeded
    /// with substitution targets before the walk starts).
    visit_gen: u32,
    visit: Vec<u32>,
    /// Reusable traversal buffers (old-node indices).
    order: Vec<u32>,
    stack: Vec<u32>,
    /// Total nodes visited by substitution walks, dense or reference
    /// (perf counter).
    walk_nodes: u64,
}

impl Scratch {
    fn begin(&mut self, num_nodes: usize) {
        if self.stamp.len() < num_nodes {
            self.stamp.resize(num_nodes, 0);
            self.memo.resize(num_nodes, Lit::FALSE);
            self.visit.resize(num_nodes, 0);
        }
        if self.gen == u32::MAX {
            self.gen = 0;
            self.stamp.fill(0);
        }
        self.gen += 1;
        if self.visit_gen == u32::MAX {
            self.visit_gen = 0;
            self.visit.fill(0);
        }
        self.visit_gen += 1;
        self.order.clear();
        self.stack.clear();
    }

    fn set(&mut self, v: Var, l: Lit) {
        let i = v.index();
        self.stamp[i] = self.gen;
        self.memo[i] = l;
    }

    fn get(&self, v: Var) -> Option<Lit> {
        let i = v.index();
        if i < self.stamp.len() && self.stamp[i] == self.gen {
            Some(self.memo[i])
        } else {
            None
        }
    }

    /// The image of edge `l` under the memo; unstamped nodes map to
    /// themselves (they lie outside the walked, dependent region).
    fn resolve(&self, l: Lit) -> Lit {
        match self.get(l.var()) {
            Some(m) => m.xor_sign(l.is_complemented()),
            None => l,
        }
    }

    /// Marks `v` visited; returns whether it already was.
    fn visited(&mut self, v: Var) -> bool {
        let i = v.index();
        if self.visit[i] == self.visit_gen {
            true
        } else {
            self.visit[i] = self.visit_gen;
            false
        }
    }
}

/// Direct-mapped cofactor cache keyed by (root, var, phase).
///
/// Exact without any invalidation: the manager is append-only and
/// [`Aig::and`] is a deterministic function of immutable existing
/// structure, so a cofactor, once computed, can never change —
/// recomputing it later necessarily returns the same literal. Compaction
/// builds a fresh manager (and thus a fresh, empty cache), which is the
/// only generation boundary that exists. Storage is allocated lazily on
/// the first cofactor call so managers that never cofactor pay nothing.
#[derive(Clone, Default)]
struct CofactorCache {
    /// `(key, result)`; `u64::MAX` marks an empty slot (a real key would
    /// need a node index beyond any allocatable manager).
    slots: Vec<(u64, Lit)>,
    hits: u64,
}

const COF_CACHE_SLOTS: usize = 4096;

impl CofactorCache {
    fn key(f: Lit, v: Var, value: bool) -> u64 {
        (u64::from(f.code()) << 32) | u64::from(v.0 << 1 | value as u32)
    }

    fn slot(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize & (COF_CACHE_SLOTS - 1)
    }

    fn get(&mut self, f: Lit, v: Var, value: bool) -> Option<Lit> {
        if self.slots.is_empty() {
            return None;
        }
        let key = CofactorCache::key(f, v, value);
        let (k, res) = self.slots[CofactorCache::slot(key)];
        if k == key {
            self.hits += 1;
            Some(res)
        } else {
            None
        }
    }

    fn put(&mut self, f: Lit, v: Var, value: bool, result: Lit) {
        if self.slots.is_empty() {
            self.slots = vec![(u64::MAX, Lit::FALSE); COF_CACHE_SLOTS];
        }
        let key = CofactorCache::key(f, v, value);
        self.slots[CofactorCache::slot(key)] = (key, result);
    }
}

/// Direct-mapped cone-size cache keyed by the root literal. Like the
/// cofactor cache it is exact forever: nodes are never mutated, so the
/// cone of an existing literal cannot change.
#[derive(Clone, Default)]
struct ConeSizeCache {
    /// `(root code, size)`; `u32::MAX` marks an empty slot.
    slots: Vec<(u32, u32)>,
}

const CONE_CACHE_SLOTS: usize = 1024;

impl ConeSizeCache {
    fn slot(code: u32) -> usize {
        (u64::from(code).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as usize
            & (CONE_CACHE_SLOTS - 1)
    }

    fn get(&self, root: Lit) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let (code, size) = self.slots[ConeSizeCache::slot(root.code())];
        (code == root.code()).then_some(size as usize)
    }

    fn put(&mut self, root: Lit, size: usize) {
        if self.slots.is_empty() {
            self.slots = vec![(u32::MAX, 0); CONE_CACHE_SLOTS];
        }
        let size = u32::try_from(size).unwrap_or(u32::MAX - 1);
        self.slots[ConeSizeCache::slot(root.code())] = (root.code(), size);
    }
}

/// An And-Inverter Graph manager.
///
/// Nodes are append-only and structurally hashed: calling [`Aig::and`] with
/// fanins that already name an existing gate returns the existing literal.
/// One- and two-level simplification rules are applied on construction, so
/// the graph is *semi-canonical*: many (but not all) syntactically different
/// formulas map to the same node, which is the zero-cost first tier of the
/// paper's merge phase.
///
/// ```
/// use cbq_aig::{Aig, Lit};
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// let f = aig.and(a, b);
/// let g = aig.and(b, a); // structural hashing: same node
/// assert_eq!(f, g);
/// assert_eq!(aig.and(a, !a), Lit::FALSE);
/// ```
///
/// ## Hot-path machinery
///
/// The quantification inner loop (`cofactor` → `compose` → `and`) runs on
/// dense, allocation-free structures: an open-addressing strash, a
/// generation-stamped scratchpad for cone walks, support-limited
/// cofactoring (the sub-cone that does not depend on the substituted
/// variable is copied through unchanged), and a direct-mapped cofactor
/// cache. See [`AigTuning`] for the knobs and [`Aig::perf_counters`] for
/// the work counters.
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: StrashTable,
    inputs: Vec<Var>,
    level: Vec<u32>,
    tuning: AigTuning,
    scratch: Scratch,
    cof_cache: CofactorCache,
    cone_cache: ConeSizeCache,
    strash_probes: u64,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty manager containing only the constant node, with
    /// the process-default [`AigTuning`].
    pub fn new() -> Aig {
        Aig::with_tuning(AigTuning::process_default())
    }

    /// Creates an empty manager with an explicit hot-path tuning.
    pub fn with_tuning(tuning: AigTuning) -> Aig {
        Aig {
            nodes: vec![Node::Const],
            strash: StrashTable::new(tuning.open_strash, 16),
            inputs: Vec::new(),
            level: vec![0],
            tuning,
            scratch: Scratch::default(),
            cof_cache: CofactorCache::default(),
            cone_cache: ConeSizeCache::default(),
            strash_probes: 0,
        }
    }

    /// Creates an empty manager with `n` inputs already added.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let aig = Aig::with_inputs(8);
    /// assert_eq!(aig.num_inputs(), 8);
    /// ```
    pub fn with_inputs(n: usize) -> Aig {
        let mut aig = Aig::new();
        for _ in 0..n {
            aig.add_input();
        }
        aig
    }

    /// The active hot-path tuning.
    pub fn tuning(&self) -> AigTuning {
        self.tuning
    }

    /// Switches the hot-path tuning. Swapping the strash implementation
    /// rebuilds the table from the (immutable) node list; results are
    /// never affected, only the machinery computing them.
    pub fn set_tuning(&mut self, tuning: AigTuning) {
        if tuning.open_strash != self.tuning.open_strash {
            let mut table = StrashTable::new(tuning.open_strash, self.num_ands());
            for (i, n) in self.nodes.iter().enumerate() {
                if let Node::And { f0, f1 } = n {
                    table.insert(*f0, *f1, Var::from_index(i));
                }
            }
            self.strash = table;
        }
        if !tuning.cofactor_cache {
            self.cof_cache = CofactorCache::default();
        }
        self.tuning = tuning;
    }

    /// Pre-sizes the strash for about `ands` AND gates (used when a
    /// compaction knows the incoming cone size up front).
    pub(crate) fn reserve_ands(&mut self, ands: usize) {
        if let StrashTable::Open(t) = &self.strash {
            if t.len == 0 && t.keys.len() < ands * 2 {
                self.strash = StrashTable::new(true, ands);
            }
        }
    }

    /// Snapshot of the hot-path work counters (monotone within one
    /// manager; reset by compaction, which builds a fresh manager).
    pub fn perf_counters(&self) -> AigPerfCounters {
        AigPerfCounters {
            strash_probes: self.strash_probes,
            scratch_walk_nodes: self.scratch.walk_nodes,
            cofactor_cache_hits: self.cof_cache.hits,
        }
    }

    /// Adds a fresh primary input and returns its variable.
    pub fn add_input(&mut self) -> Var {
        let var = Var::from_index(self.nodes.len());
        let index = u32::try_from(self.inputs.len()).expect("too many inputs");
        self.nodes.push(Node::Input { index });
        self.level.push(0);
        self.inputs.push(var);
        var
    }

    /// The inputs of this AIG, in creation order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The variable of the `index`-th input.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_inputs()`.
    pub fn input_var(&self, index: usize) -> Var {
        self.inputs[index]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Total number of nodes (constant + inputs + AND gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// The node a variable refers to.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a node of this manager.
    pub fn node(&self, var: Var) -> Node {
        self.nodes[var.index()]
    }

    /// All nodes, indexable by [`Var::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Structural level (depth) of a node: 0 for constants/inputs,
    /// `1 + max(level(fanins))` for AND gates.
    pub fn node_level(&self, var: Var) -> u32 {
        self.level[var.index()]
    }

    /// Whether `var` names a primary input.
    pub fn is_input(&self, var: Var) -> bool {
        self.nodes[var.index()].is_input()
    }

    /// If `var` is an input, its ordinal among the inputs.
    pub fn input_index(&self, var: Var) -> Option<usize> {
        match self.nodes[var.index()] {
            Node::Input { index } => Some(index as usize),
            _ => None,
        }
    }

    fn try_two_level(&mut self, a: Lit, b: Lit) -> Option<Lit> {
        // Two-level local rewriting rules (Brummayer & Biere style, safe
        // subset). `a`/`b` are already non-constant and distinct vars.
        let fan = |aig: &Aig, l: Lit| aig.nodes[l.var().index()].fanins();
        if let Some((x, y)) = fan(self, a) {
            if !a.is_complemented() {
                // Contradiction: (x & y) & !x == 0.
                if b == !x || b == !y {
                    return Some(Lit::FALSE);
                }
                // Idempotence/subsumption: (x & y) & x == x & y.
                if b == x || b == y {
                    return Some(a);
                }
            } else {
                // Substitution: !(x & y) & x == x & !y.
                if b == x {
                    return Some(self.and(x, !y));
                }
                if b == y {
                    return Some(self.and(y, !x));
                }
            }
        }
        if let Some((u, v)) = fan(self, b) {
            if !b.is_complemented() {
                if a == !u || a == !v {
                    return Some(Lit::FALSE);
                }
                if a == u || a == v {
                    return Some(b);
                }
            } else {
                if a == u {
                    return Some(self.and(u, !v));
                }
                if a == v {
                    return Some(self.and(v, !u));
                }
            }
        }
        // Both positive ANDs sharing a complemented fanin: contradiction.
        if !a.is_complemented() && !b.is_complemented() {
            if let (Some((x, y)), Some((u, v))) = (fan(self, a), fan(self, b)) {
                if x == !u || x == !v || y == !u || y == !v {
                    return Some(Lit::FALSE);
                }
            }
        }
        None
    }

    /// Conjunction of two literals, with structural hashing and local
    /// simplification.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // One-level rules.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if let Some(res) = self.try_two_level(a, b) {
            return res;
        }
        // Normalise fanin order for semi-canonicity: f0 >= f1.
        let (f0, f1) = if a.code() >= b.code() { (a, b) } else { (b, a) };
        if let Some(var) = self.strash.get(f0, f1, &mut self.strash_probes) {
            return var.lit();
        }
        let var = Var::from_index(self.nodes.len());
        self.nodes.push(Node::And { f0, f1 });
        let lvl = 1 + self.level[f0.var().index()].max(self.level[f1.var().index()]);
        self.level.push(lvl);
        self.strash.insert(f0, f1, var);
        var.lit()
    }

    /// Disjunction of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Exclusive or of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(a, !b);
        let p = self.and(!a, b);
        self.or(n, p)
    }

    /// Equivalence (XNOR) of two literals.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// If-then-else multiplexer `c ? t : e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let pt = self.and(c, t);
        let pe = self.and(!c, e);
        self.or(pt, pe)
    }

    /// Conjunction of many literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Aig::and)
    }

    /// Disjunction of many literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::or)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        mut op: impl FnMut(&mut Aig, Lit, Lit) -> Lit + Copy,
    ) -> Lit {
        match lits.len() {
            0 => unit,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let l = self.reduce_balanced(lo, unit, op);
                let r = self.reduce_balanced(hi, unit, op);
                op(self, l, r)
            }
        }
    }

    /// Evaluates `root` under a complete input assignment (indexed by input
    /// ordinal).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_inputs()`.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let a = aig.add_input().lit();
    /// let b = aig.add_input().lit();
    /// let f = aig.xor(a, b);
    /// assert!(aig.eval(f, &[true, false]));
    /// assert!(!aig.eval(f, &[true, true]));
    /// ```
    pub fn eval(&self, root: Lit, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_inputs(),
            "assignment covers {} of {} inputs",
            assignment.len(),
            self.num_inputs()
        );
        // Every cone index is at most the root's (fanins precede gates).
        let cone = self.collect_cone(&[root]);
        let mut val = vec![false; root.var().index() + 1];
        for var in cone {
            val[var.index()] = match self.nodes[var.index()] {
                Node::Const => false,
                Node::Input { index } => assignment[index as usize],
                Node::And { f0, f1 } => {
                    let a = val[f0.var().index()] ^ f0.is_complemented();
                    let b = val[f1.var().index()] ^ f1.is_complemented();
                    a && b
                }
            };
        }
        val[root.var().index()] ^ root.is_complemented()
    }

    /// Simultaneously substitutes variables by literals in the cone of `f`.
    ///
    /// This is the paper's *quantification by substitution (in-lining)*:
    /// `∃y.(y ≡ δ) ∧ P(y)` becomes `P(δ)`, i.e. `compose(P, [(y, δ)])`.
    /// Substitution is simultaneous: mapped-in literals are **not**
    /// re-substituted.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let x = aig.add_input();
    /// let y = aig.add_input();
    /// let f = aig.and(x.lit(), y.lit());
    /// let g = aig.compose(f, &[(y, !x.lit())]);
    /// assert_eq!(g, cbq_aig::Lit::FALSE);
    /// ```
    pub fn compose(&mut self, f: Lit, map: &[(Var, Lit)]) -> Lit {
        if map.is_empty() {
            return f;
        }
        if !self.tuning.dense_scratch {
            return self.compose_reference(f, map);
        }
        self.map_cone_scratch(&[f], map);
        self.scratch.resolve(f)
    }

    /// [`Aig::compose`] applied to several roots under one substitution,
    /// sharing a single cone walk (the BMC unroller composes `bad` and
    /// every latch next-state function against the same frame
    /// substitution; walking their heavily shared cone once is much
    /// cheaper than once per root).
    pub fn compose_many(&mut self, roots: &[Lit], map: &[(Var, Lit)]) -> Vec<Lit> {
        if map.is_empty() {
            return roots.to_vec();
        }
        if !self.tuning.dense_scratch {
            return roots
                .iter()
                .map(|r| self.compose_reference(*r, map))
                .collect();
        }
        self.map_cone_scratch(roots, map);
        roots.iter().map(|r| self.scratch.resolve(*r)).collect()
    }

    /// The original `HashMap`-memo compose, kept as the reference rung
    /// (differential oracle) behind [`AigTuning::dense_scratch`].
    fn compose_reference(&mut self, f: Lit, map: &[(Var, Lit)]) -> Lit {
        let subst: HashMap<Var, Lit> = map.iter().copied().collect();
        let cone = self.collect_cone(&[f]);
        // Count the visited region like the dense walk does, so the e6q
        // ablation can compare nodes visited per rung: the reference walk
        // always covers the whole cone (no support limiting, no sharing
        // across `compose_many` roots).
        self.scratch.walk_nodes += cone.len() as u64;
        let mut memo: HashMap<Var, Lit> = HashMap::with_capacity(cone.len());
        for var in cone {
            let new = match self.nodes[var.index()] {
                Node::Const => Lit::FALSE,
                Node::Input { .. } => subst.get(&var).copied().unwrap_or_else(|| var.lit()),
                Node::And { f0, f1 } => {
                    let a = memo[&f0.var()].xor_sign(f0.is_complemented());
                    let b = memo[&f1.var()].xor_sign(f1.is_complemented());
                    self.and(a, b)
                }
            };
            // Non-input nodes can also be substitution targets (used by
            // node-merge transformations), taking precedence over rebuild.
            let new = subst.get(&var).copied().unwrap_or(new);
            memo.insert(var, new);
        }
        memo[&f.var()].xor_sign(f.is_complemented())
    }

    /// The dense-scratch substitution walk. On return, every root image is
    /// readable via `self.scratch.resolve(root)`.
    ///
    /// Support limiting comes from two facts about the append-only index
    /// order. (1) Fanins precede gates, so no node below the smallest
    /// substituted index can depend on any substituted variable — the walk
    /// never descends past it. (2) A visited gate whose resolved fanins
    /// are unchanged maps to itself without touching the strash (and a
    /// rebuilt gate with those exact fanins would strash back to the same
    /// node, so the shortcut is bit-identical to the reference rebuild).
    fn map_cone_scratch(&mut self, roots: &[Lit], map: &[(Var, Lit)]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.begin(self.nodes.len());
        // Pre-seed substitution targets: stamped-before-the-walk is what
        // gives them precedence over the rebuild, inputs and gates alike.
        let mut min_idx = usize::MAX;
        for &(v, l) in map {
            scratch.set(v, l);
            min_idx = min_idx.min(v.index());
        }
        if !self.tuning.support_limited {
            min_idx = 0;
        }
        for r in roots {
            let v = r.var();
            if v.index() >= min_idx && !scratch.visited(v) {
                scratch.stack.push(v.0);
                scratch.order.push(v.0);
            }
        }
        while let Some(i) = scratch.stack.pop() {
            if let Node::And { f0, f1 } = self.nodes[i as usize] {
                for l in [f0, f1] {
                    let w = l.var();
                    if w.index() >= min_idx && !scratch.visited(w) {
                        scratch.stack.push(w.0);
                        scratch.order.push(w.0);
                    }
                }
            }
        }
        // Ascending index is a topological order of the visited region.
        scratch.order.sort_unstable();
        scratch.walk_nodes += scratch.order.len() as u64;
        for k in 0..scratch.order.len() {
            let v = Var(scratch.order[k]);
            if scratch.get(v).is_some() {
                continue; // substitution target: its image is already set
            }
            let new = match self.nodes[v.index()] {
                Node::Const => Lit::FALSE,
                Node::Input { .. } => v.lit(),
                Node::And { f0, f1 } => {
                    let a = scratch.resolve(f0);
                    let b = scratch.resolve(f1);
                    if a == f0 && b == f1 && self.tuning.support_limited {
                        v.lit()
                    } else {
                        self.and(a, b)
                    }
                }
            };
            scratch.set(v, new);
        }
        self.scratch = scratch;
    }

    /// The positive or negative cofactor of `f` with respect to `v`.
    ///
    /// Support-limited: only the sub-cone of `f` that depends on `v` is
    /// rebuilt; everything outside it is copied through unchanged. Results
    /// are served from the cofactor cache when the same (root, var, phase)
    /// was computed before — `exists_many`'s cost re-estimation and
    /// aborted-variable retries ask for the same cofactors repeatedly.
    ///
    /// ```
    /// use cbq_aig::{Aig, Lit};
    /// let mut aig = Aig::new();
    /// let a = aig.add_input();
    /// let b = aig.add_input();
    /// let f = aig.and(a.lit(), b.lit());
    /// assert_eq!(aig.cofactor(f, a, true), b.lit());
    /// assert_eq!(aig.cofactor(f, a, false), Lit::FALSE);
    /// ```
    pub fn cofactor(&mut self, f: Lit, v: Var, value: bool) -> Lit {
        let constant = if value { Lit::TRUE } else { Lit::FALSE };
        if !self.tuning.cofactor_cache {
            return self.compose(f, &[(v, constant)]);
        }
        if let Some(hit) = self.cof_cache.get(f, v, value) {
            return hit;
        }
        let res = self.compose(f, &[(v, constant)]);
        self.cof_cache.put(f, v, value, res);
        res
    }

    /// Both cofactors `(f|v=1, f|v=0)` of `f` with respect to `v`.
    pub fn cofactors(&mut self, f: Lit, v: Var) -> (Lit, Lit) {
        (self.cofactor(f, v, true), self.cofactor(f, v, false))
    }

    /// Cached [`Aig::cone_size`](crate::Aig::cone_size). Exact: the cone
    /// of an existing literal can never change in an append-only manager.
    pub fn cone_size_cached(&mut self, root: Lit) -> usize {
        if let Some(size) = self.cone_cache.get(root) {
            return size;
        }
        let size = self.cone_size(root);
        self.cone_cache.put(root, size);
        size
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, ands: {} }}",
            self.num_inputs(),
            self.num_ands()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inputs() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        (aig, a, b)
    }

    #[test]
    fn one_level_rules() {
        let (mut aig, a, b) = two_inputs();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let (mut aig, a, b) = two_inputs();
        let f = aig.and(a, b);
        let g = aig.and(b, a);
        assert_eq!(f, g);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn two_level_contradiction_and_subsumption() {
        let (mut aig, a, b) = two_inputs();
        let ab = aig.and(a, b);
        assert_eq!(aig.and(ab, !a), Lit::FALSE);
        assert_eq!(aig.and(ab, a), ab);
        // Substitution: !(a&b) & a == a & !b.
        let expect = aig.and(a, !b);
        assert_eq!(aig.and(!ab, a), expect);
    }

    #[test]
    fn two_positive_ands_contradict() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let nac = aig.and(!a, c);
        assert_eq!(aig.and(ab, nac), Lit::FALSE);
    }

    #[test]
    fn derived_gates_truth_tables() {
        let (mut aig, a, b) = two_inputs();
        let x = aig.xor(a, b);
        let o = aig.or(a, b);
        let i = aig.iff(a, b);
        let imp = aig.implies(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let asg = [va, vb];
            assert_eq!(aig.eval(x, &asg), va ^ vb);
            assert_eq!(aig.eval(o, &asg), va || vb);
            assert_eq!(aig.eval(i, &asg), va == vb);
            assert_eq!(aig.eval(imp, &asg), !va || vb);
        }
    }

    #[test]
    fn ite_truth_table() {
        let mut aig = Aig::new();
        let c = aig.add_input().lit();
        let t = aig.add_input().lit();
        let e = aig.add_input().lit();
        let f = aig.ite(c, t, e);
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            let expect = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(aig.eval(f, &asg), expect);
        }
    }

    #[test]
    fn many_input_reduction() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..7).map(|_| aig.add_input().lit()).collect();
        let all = aig.and_many(&lits);
        let any = aig.or_many(&lits);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        let all_true = vec![true; 7];
        let mut one_false = all_true.clone();
        one_false[3] = false;
        assert!(aig.eval(all, &all_true));
        assert!(!aig.eval(all, &one_false));
        assert!(aig.eval(any, &one_false));
        assert!(!aig.eval(any, &[false; 7]));
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let f = {
            let t = aig.and(a, b);
            let e = aig.xor(b, c);
            aig.or(t, e)
        };
        let (f1, f0) = aig.cofactors(f, a.var());
        let shannon = {
            let hi = aig.and(a, f1);
            let lo = aig.and(!a, f0);
            aig.or(hi, lo)
        };
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(aig.eval(f, &asg), aig.eval(shannon, &asg));
        }
    }

    #[test]
    fn compose_is_simultaneous() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let f = aig.xor(x.lit(), y.lit());
        // Swap x and y simultaneously: xor is symmetric, result unchanged.
        let g = aig.compose(f, &[(x, y.lit()), (y, x.lit())]);
        assert_eq!(f, g);
    }

    #[test]
    fn compose_on_internal_node() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        // Replace the internal node (a & b) by constant true.
        let g = aig.compose(f, &[(ab.var(), Lit::TRUE)]);
        assert_eq!(g, Lit::TRUE);
    }

    #[test]
    fn compose_many_matches_individual_composes() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let z = aig.add_input();
        let f = aig.xor(x.lit(), y.lit());
        let g = aig.and(f, z.lit());
        let map = [(x, z.lit()), (y, Lit::TRUE)];
        let joint = aig.compose_many(&[f, g, !f], &map);
        let f1 = aig.compose(f, &map);
        let g1 = aig.compose(g, &map);
        assert_eq!(joint, vec![f1, g1, !f1]);
        assert_eq!(aig.compose_many(&[f, g], &[]), vec![f, g]);
    }

    #[test]
    fn levels_track_depth() {
        let (mut aig, a, b) = two_inputs();
        let ab = aig.and(a, b);
        let c = aig.add_input().lit();
        let abc = aig.and(ab, c);
        assert_eq!(aig.node_level(a.var()), 0);
        assert_eq!(aig.node_level(ab.var()), 1);
        assert_eq!(aig.node_level(abc.var()), 2);
    }

    /// One circuit, four tunings: every rung must build byte-identical
    /// node lists and return identical literals for every operation.
    #[test]
    fn tunings_are_bit_identical() {
        let tunings = [
            AigTuning::full(),
            AigTuning::reference(),
            AigTuning {
                open_strash: false,
                ..AigTuning::full()
            },
            AigTuning {
                support_limited: false,
                cofactor_cache: false,
                ..AigTuning::full()
            },
        ];
        let mut results: Vec<Vec<Lit>> = Vec::new();
        let mut node_counts = Vec::new();
        for t in tunings {
            let mut aig = Aig::with_tuning(t);
            let mut log = Vec::new();
            let ins: Vec<Lit> = (0..4).map(|_| aig.add_input().lit()).collect();
            let f = {
                let p = aig.and(ins[0], ins[1]);
                let q = aig.xor(ins[2], ins[3]);
                aig.or(p, q)
            };
            log.push(f);
            for input in &ins {
                let v = input.var();
                let (hi, lo) = aig.cofactors(f, v);
                log.push(hi);
                log.push(lo);
                // Repeat: cache rung must return the identical literal.
                log.push(aig.cofactor(f, v, true));
            }
            log.push(aig.compose(f, &[(ins[0].var(), ins[3]), (ins[2].var(), Lit::TRUE)]));
            results.push(log);
            node_counts.push(aig.num_nodes());
        }
        for i in 1..results.len() {
            assert_eq!(results[0], results[i], "tuning {i} diverged");
            assert_eq!(node_counts[0], node_counts[i], "tuning {i} node count");
        }
    }

    #[test]
    fn set_tuning_rebuilds_strash() {
        let (mut aig, a, b) = two_inputs();
        let f = aig.and(a, b);
        aig.set_tuning(AigTuning::reference());
        // The rebuilt HashMap strash still finds the existing node.
        assert_eq!(aig.and(b, a), f);
        aig.set_tuning(AigTuning::full());
        assert_eq!(aig.and(a, b), f);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn perf_counters_move() {
        let (mut aig, a, b) = two_inputs();
        let f = aig.and(a, b);
        let before = aig.perf_counters();
        let c1 = aig.cofactor(f, a.var(), true);
        let c2 = aig.cofactor(f, a.var(), true); // cache hit
        assert_eq!(c1, c2);
        let delta = aig.perf_counters().since(before);
        assert_eq!(delta.cofactor_cache_hits, 1);
        assert!(delta.scratch_walk_nodes > 0);
        let g = aig.and(b, a); // strash lookup
        assert_eq!(g, f);
        assert!(aig.perf_counters().since(before).strash_probes > 0);
    }

    #[test]
    fn cone_size_cached_matches_uncached() {
        let (mut aig, a, b) = two_inputs();
        let f = aig.xor(a, b);
        assert_eq!(aig.cone_size_cached(f), aig.cone_size(f));
        assert_eq!(aig.cone_size_cached(f), 3); // served from cache
        let g = aig.and(f, a);
        assert_eq!(aig.cone_size_cached(g), aig.cone_size(g));
    }
}
