//! # cbq-bench — the evaluation harness
//!
//! One module per experiment of `DESIGN.md` §3 (E1–E8). Each experiment
//! exposes a `*_table()` function that regenerates the corresponding
//! table/figure as a [`Table`] of printed rows; the `report` binary
//! dispatches on experiment ids, and the Criterion benches in `benches/`
//! time the same kernels.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

use cbq_aig::sim::BitSim;
use cbq_aig::{Aig, AigPerfCounters, AigTuning, Lit, Var};
use cbq_cec::{sweep, MergeOrder, SweepConfig};
use cbq_ckt::generators;
use cbq_ckt::random::similar_pair;
use cbq_ckt::Network;
use cbq_cnf::{AigCnf, CnfLifetime, ProofMode};
use cbq_core::{exists_bdd, exists_many, QuantConfig};
use cbq_mc::ganai::all_solutions_exists;
use cbq_mc::preimage::preimage_formula;
use cbq_mc::sweep::SweepConfig as StateSweepConfig;
use cbq_mc::{
    registry, Bmc, Budget, CircuitUmc, CircuitUmcStats, Engine, GenMode, Ic3, Ic3Stats, Itp,
    ItpStats, PartitionConfig, PartitionCount, PartitionStats, Portfolio, PortfolioBusStats,
    PortfolioStats, Verdict,
};
use cbq_synth::OptConfig;

/// A printable table of experiment results.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (experiment id and claim).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                write!(f, "{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8))?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn ms(start: Instant) -> String {
    format!("{:.1}", start.elapsed().as_secs_f64() * 1e3)
}

/// The circuits whose one-step pre-image formulas drive the
/// quantification experiments.
pub fn quant_workloads() -> Vec<Network> {
    vec![
        generators::arbiter(8),
        generators::fifo_ctrl(4),
        generators::mutex(),
        generators::token_ring_bug(8),
        generators::counter_bug(10, 512),
        generators::shift_ones(10),
    ]
}

/// Builds the raw pre-image formula (over state and inputs) of a
/// network's bad states, iterated `steps` times with full quantification
/// in between (the realistic workload of backward reachability).
pub fn preimage_workload(net: &Network, steps: usize) -> (Aig, Lit, Vec<Var>) {
    let mut aig = net.aig().clone();
    let pis: Vec<Var> = net.primary_inputs().to_vec();
    let mut cnf = AigCnf::new();
    let mut target = net.bad();
    for _ in 0..steps {
        let q = exists_many(&mut aig, target, &pis, &mut cnf, &QuantConfig::full());
        target = preimage_formula(&mut aig, net, q.lit);
    }
    (aig, target, pis)
}

/// The canonical-blow-up workload: product bit `bit` of an `n×m` array
/// multiplier, with the first `quantify` x-operand bits to eliminate.
/// Multiplier middle bits have exponential BDDs under any order but
/// linear AIGs — the paper's motivating asymmetry.
pub fn multiplier_workload(
    n: usize,
    m: usize,
    bit: usize,
    quantify: usize,
) -> (Aig, Lit, Vec<Var>) {
    let mut aig = Aig::new();
    let xv: Vec<Var> = (0..n).map(|_| aig.add_input()).collect();
    let yv: Vec<Var> = (0..m).map(|_| aig.add_input()).collect();
    let xs: Vec<Lit> = xv.iter().map(|v| v.lit()).collect();
    let ys: Vec<Lit> = yv.iter().map(|v| v.lit()).collect();
    let prod = cbq_ckt::arith::multiplier(&mut aig, &xs, &ys);
    (aig, prod[bit], xv[..quantify].to_vec())
}

/// A factorisation workload for the enumeration experiment: the
/// predicate `x * y == target` over `n`-bit operands, quantifying `y`.
/// `∃y` has one "solution region" per divisor — all-solutions SAT needs
/// one cofactor per region, while circuit quantification handles it
/// symbolically.
pub fn factor_workload(n: usize, target: u64) -> (Aig, Lit, Vec<Var>) {
    let mut aig = Aig::new();
    let xv: Vec<Var> = (0..n).map(|_| aig.add_input()).collect();
    let yv: Vec<Var> = (0..n).map(|_| aig.add_input()).collect();
    let xs: Vec<Lit> = xv.iter().map(|v| v.lit()).collect();
    let ys: Vec<Lit> = yv.iter().map(|v| v.lit()).collect();
    let prod = cbq_ckt::arith::multiplier(&mut aig, &xs, &ys);
    let eq_bits: Vec<Lit> = prod
        .iter()
        .enumerate()
        .map(|(i, p)| p.xor_sign((target >> i) & 1 == 0))
        .collect();
    let f = aig.and_many(&eq_bits);
    (aig, f, yv)
}

// ---------------------------------------------------------------------
// E1 / Table 1 — quantification compaction
// ---------------------------------------------------------------------

/// E1: AIG sizes after quantifying all inputs from a pre-image formula,
/// for naive / merge-only / merge+opt, plus the BDD size baseline.
pub fn e1_table() -> Table {
    let mut t = Table::new(
        "E1 / Table 1 — quantification compaction (AND gates; BDD nodes)",
        &[
            "circuit",
            "pre",
            "vars",
            "naive",
            "merge",
            "merge+opt",
            "bdd",
            "ms(full)",
        ],
    );
    let mut workloads: Vec<(String, Aig, Lit, Vec<Var>)> = quant_workloads()
        .into_iter()
        .map(|net| {
            let (aig, pre, pis) = preimage_workload(&net, 1);
            (net.name().to_string(), aig, pre, pis)
        })
        .collect();
    let (maig, mf, mvars) = multiplier_workload(7, 7, 8, 3);
    workloads.push(("mult7x7.b8".to_string(), maig, mf, mvars));
    for (name, aig0, pre, pis) in workloads {
        let mut row = vec![name, aig0.cone_size(pre).to_string(), pis.len().to_string()];
        for cfg in [
            QuantConfig::naive(),
            QuantConfig::merge_only(),
            QuantConfig::full(),
        ] {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let start = Instant::now();
            let res = exists_many(&mut aig, pre, &pis, &mut cnf, &cfg);
            let size = aig.cone_size(res.lit);
            if cfg.use_merge && cfg.use_opt {
                row.push(size.to_string());
                let mut aig_b = aig0.clone();
                let bdd = exists_bdd(&mut aig_b, pre, &pis, 2_000_000)
                    .map(|(_, s)| s.to_string())
                    .unwrap_or_else(|| ">cap".to_string());
                row.push(bdd);
                row.push(ms(start));
            } else {
                row.push(size.to_string());
            }
        }
        t.push(row);
    }
    t
}

// ---------------------------------------------------------------------
// E2 / Table 2 — factorised SAT-merge on one clause database
// ---------------------------------------------------------------------

/// Candidate merge pairs of two functions' cones, by simulation
/// signature (phase-normalised).
pub fn candidate_pairs(aig: &Aig, f: Lit, g: Lit, words: usize, seed: u64) -> Vec<(Lit, Lit)> {
    let sim = BitSim::random(aig, words, seed);
    let mut groups: std::collections::HashMap<Vec<u64>, Vec<Lit>> = Default::default();
    for v in aig.collect_cone(&[f, g]) {
        if v == Var::CONST {
            continue;
        }
        let (sig, flip) = sim.normalized_signature(v.lit());
        groups.entry(sig).or_default().push(v.lit().xor_sign(flip));
    }
    let mut pairs = Vec::new();
    for (_, mut members) in groups {
        if members.len() < 2 {
            continue;
        }
        members.sort_unstable();
        let repr = members[0];
        for m in &members[1..] {
            pairs.push((repr, *m));
        }
    }
    pairs.sort_unstable();
    pairs
}

/// E2 kernel: proves a list of candidate pairs either with a fresh solver
/// per check or on one shared database. Returns
/// `(proved, conflicts, decisions, encoded_gates)`.
pub fn satmerge_run(aig: &Aig, pairs: &[(Lit, Lit)], shared: bool) -> (usize, u64, u64, u64) {
    let mut proved = 0usize;
    let mut conflicts = 0u64;
    let mut decisions = 0u64;
    let mut encoded = 0u64;
    let mut shared_cnf = AigCnf::new();
    for (a, b) in pairs {
        if shared {
            if shared_cnf.prove_equiv(aig, *a, *b, None).is_equiv() {
                proved += 1;
            }
        } else {
            let mut cnf = AigCnf::new();
            if cnf.prove_equiv(aig, *a, *b, None).is_equiv() {
                proved += 1;
            }
            conflicts += cnf.solver().stats().conflicts;
            decisions += cnf.solver().stats().decisions;
            encoded += cnf.stats().encoded_ands;
        }
    }
    if shared {
        conflicts = shared_cnf.solver().stats().conflicts;
        decisions = shared_cnf.solver().stats().decisions;
        encoded = shared_cnf.stats().encoded_ands;
    }
    (proved, conflicts, decisions, encoded)
}

/// E2: per-check fresh solvers vs the paper's shared clause database.
pub fn e2_table() -> Table {
    let mut t = Table::new(
        "E2 / Table 2 — factorised SAT-merge (shared clause database)",
        &[
            "gates",
            "pairs",
            "mode",
            "proved",
            "conflicts",
            "decisions",
            "encoded",
            "ms",
        ],
    );
    for ops in [30usize, 80, 160] {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, ops, 0.08, 7);
        let pairs = candidate_pairs(&aig, f, g, 4, 9);
        for shared in [false, true] {
            let start = Instant::now();
            let (proved, conflicts, decisions, encoded) = satmerge_run(&aig, &pairs, shared);
            t.push(vec![
                ops.to_string(),
                pairs.len().to_string(),
                if shared { "shared" } else { "fresh" }.to_string(),
                proved.to_string(),
                conflicts.to_string(),
                decisions.to_string(),
                encoded.to_string(),
                ms(start),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E3 / Fig. 1 — forward vs backward merge order vs similarity
// ---------------------------------------------------------------------

/// E3 kernel: sweeps a cofactor-like pair at the given mutation rate with
/// the given order; returns (sat checks, skipped points, merged, ms).
pub fn order_run(rate: f64, order: MergeOrder, ops: usize) -> (u64, u64, usize, f64) {
    let mut aig = Aig::new();
    let ins: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
    let (f, g) = similar_pair(&mut aig, &ins, ops, rate, 21);
    let mut cnf = AigCnf::new();
    let cfg = SweepConfig {
        use_bdd_sweep: false,
        order,
        ..SweepConfig::default()
    };
    let start = Instant::now();
    let res = sweep(&mut aig, &[f, g], &mut cnf, &cfg);
    (
        res.stats.sat_checks,
        res.stats.skipped_out_of_cone,
        res.stats.merged_sat,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E3: the two orders across a similarity sweep.
pub fn e3_table() -> Table {
    let mut t = Table::new(
        "E3 / Fig. 1 — merge order vs cofactor similarity (80-op pairs)",
        &["mutation", "order", "sat checks", "skipped", "merged", "ms"],
    );
    for rate in [0.0, 0.02, 0.05, 0.1, 0.2, 0.5] {
        for order in [MergeOrder::Forward, MergeOrder::Backward] {
            let (checks, skipped, merged, time) = order_run(rate, order, 80);
            t.push(vec![
                format!("{rate:.2}"),
                format!("{order:?}"),
                checks.to_string(),
                skipped.to_string(),
                merged.to_string(),
                format!("{time:.1}"),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E4 / Fig. 2 — merge-tier effectiveness
// ---------------------------------------------------------------------

/// E4: which tier (structural sharing / BDD sweeping / SAT) discovers the
/// merge points, and how the load shifts when the BDD cap shrinks.
pub fn e4_table() -> Table {
    let mut t = Table::new(
        "E4 / Fig. 2 — merge tiers (structural / BDD sweep / SAT)",
        &[
            "workload",
            "bdd cap",
            "shared(strash)",
            "classes",
            "bdd",
            "sat",
            "cex",
        ],
    );
    // Cofactor pairs from real pre-images plus two synthetic pairs with
    // plentiful compare points.
    let mut workloads: Vec<(String, Aig, Lit, Lit)> = Vec::new();
    for net in quant_workloads() {
        let (mut aig, pre, pis) = preimage_workload(&net, 1);
        let Some(v) = pis.iter().find(|v| aig.support_contains(pre, **v)) else {
            continue;
        };
        let (f1, f0) = aig.cofactors(pre, *v);
        workloads.push((net.name().to_string(), aig, f1, f0));
    }
    for (ops, rate, seed) in [(60usize, 0.05f64, 31u64), (120, 0.1, 32)] {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..12).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, ops, rate, seed);
        workloads.push((format!("pair{ops}@{rate}"), aig, f, g));
    }
    for (name, aig0, f1, f0) in workloads {
        let shared = {
            let c1: std::collections::HashSet<Var> = aig0.collect_cone(&[f1]).into_iter().collect();
            aig0.collect_cone(&[f0])
                .into_iter()
                .filter(|x| c1.contains(x))
                .count()
        };
        for (cap_label, use_bdd, cap) in [
            ("2000", true, 2000usize),
            ("40", true, 40),
            ("off", false, 0),
        ] {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let cfg = SweepConfig {
                use_bdd_sweep: use_bdd,
                bdd_cap: cap,
                ..SweepConfig::default()
            };
            let res = sweep(&mut aig, &[f1, f0], &mut cnf, &cfg);
            t.push(vec![
                name.clone(),
                cap_label.to_string(),
                shared.to_string(),
                res.stats.classes_initial.to_string(),
                res.stats.merged_bdd.to_string(),
                res.stats.merged_sat.to_string(),
                res.stats.sat_cex.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E5 / Table 3 — don't-care optimisation ablation
// ---------------------------------------------------------------------

/// E5: sizes after quantification with the optimisation passes toggled.
pub fn e5_table() -> Table {
    let mut t = Table::new(
        "E5 / Table 3 — DC-based optimisation ablation (AND gates)",
        &[
            "circuit",
            "merge only",
            "+input DC",
            "+ODC",
            "const",
            "merges",
            "odc",
        ],
    );
    for net in quant_workloads() {
        let (aig0, pre, pis) = preimage_workload(&net, 1);
        let merge_only = {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, pre, &pis, &mut cnf, &QuantConfig::merge_only());
            aig.cone_size(res.lit)
        };
        let (dc_size, dc_stats) = {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, pre, &pis, &mut cnf, &QuantConfig::full());
            (aig.cone_size(res.lit), res.stats.opt)
        };
        let (odc_size, odc_stats) = {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let mut cfg = QuantConfig::full();
            cfg.opt = OptConfig {
                use_odc: true,
                ..OptConfig::default()
            };
            let res = exists_many(&mut aig, pre, &pis, &mut cnf, &cfg);
            (aig.cone_size(res.lit), res.stats.opt)
        };
        t.push(vec![
            net.name().to_string(),
            merge_only.to_string(),
            dc_size.to_string(),
            odc_size.to_string(),
            (dc_stats.const_applied + odc_stats.const_applied).to_string(),
            (dc_stats.merge_applied + odc_stats.merge_applied).to_string(),
            odc_stats.odc_applied.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6 / Table 4 — UMC engine comparison
// ---------------------------------------------------------------------

/// The suite for the engine-comparison table.
pub fn umc_suite() -> Vec<Network> {
    vec![
        generators::token_ring(10),
        generators::bounded_counter_gap(6, 20, 50),
        generators::gray_counter(10),
        generators::arbiter(7),
        generators::mutex(),
        generators::lfsr(10, &[0, 2, 3, 5]),
        generators::fifo_ctrl(4),
        generators::token_ring_bug(8),
        generators::mutex_bug(),
        generators::shift_ones(8),
        generators::counter_bug(8, 60),
    ]
}

/// A verdict as a table cell / comparison key: classification plus the
/// count that must be stable across equivalent runs (fixpoint iteration
/// or minimal counterexample depth), never the concrete trace inputs.
pub fn verdict_cell(v: &Verdict) -> String {
    match v {
        Verdict::Safe { iterations } => format!("safe@{iterations}"),
        Verdict::Unsafe { trace } => format!("cex@{}", trace.len() - 1),
        Verdict::Bounded { resource, .. } => format!("bounded({resource})"),
        Verdict::Unknown { .. } => "unknown".to_string(),
    }
}

/// The per-engine, per-circuit budget of the comparison table: generous
/// enough for every suite member, tight enough that a regression shows
/// up as `bounded(...)` instead of a stalled report.
pub fn e6_budget() -> Budget {
    Budget::unlimited().with_timeout(std::time::Duration::from_secs(30))
}

/// E6: verdict, effort, and representation peaks for every registered
/// engine — the registry *is* the comparison.
pub fn e6_table() -> Table {
    let mut header = vec!["circuit".to_string()];
    for spec in registry() {
        header.push(spec.name.to_string());
        header.push("nodes".to_string());
        header.push("ms".to_string());
    }
    let mut t = Table {
        title: "E6 / Table 4 — UMC comparison across the engine registry".to_string(),
        header,
        rows: Vec::new(),
    };
    let budget = e6_budget();
    for net in umc_suite() {
        let mut row = vec![net.name().to_string()];
        for spec in registry() {
            let run = (spec.build)().check(&net, &budget);
            row.push(verdict_cell(&run.verdict));
            row.push(run.stats.peak_nodes.to_string());
            row.push(format!("{:.1}", run.stats.elapsed.as_secs_f64() * 1e3));
        }
        t.push(row);
    }
    t
}

// ---------------------------------------------------------------------
// E6s — state-set sweeping ablation (frontier-size trajectory)
// ---------------------------------------------------------------------

/// Median of a size profile (0 for an empty one).
pub fn median(sizes: &[usize]) -> usize {
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable();
    sorted.get(sorted.len() / 2).copied().unwrap_or(0)
}

/// E6s kernel: one circuit-engine run with the given sweep setting.
/// Returns (verdict, reached size, median frontier, peak nodes, ms).
pub fn sweep_run(
    net: &Network,
    sweep: Option<StateSweepConfig>,
    budget: &Budget,
) -> (Verdict, usize, usize, usize, f64) {
    let engine = CircuitUmc {
        sweep,
        ..CircuitUmc::default()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let detail = run.detail::<CircuitUmcStats>().expect("circuit stats");
    (
        run.verdict.clone(),
        detail.reached_size,
        median(&detail.frontier_sizes),
        detail.peak_nodes,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E6s: the frontier-size trajectory of the circuit engine with
/// state-set sweeping on (eager) vs off, across the E6 suite. The claim:
/// sweeping strictly shrinks the reached set and the median frontier on
/// redundancy-heavy traversals while preserving every verdict.
pub fn e6s_table() -> Table {
    let mut t = Table::new(
        "E6s — state-set sweeping ablation (circuit engine, AND gates)",
        &[
            "circuit",
            "verdict",
            "reached off",
            "reached on",
            "medfront off",
            "medfront on",
            "peak off",
            "peak on",
            "ms off",
            "ms on",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let (v_off, r_off, f_off, p_off, ms_off) = sweep_run(&net, None, &budget);
        let (v_on, r_on, f_on, p_on, ms_on) =
            sweep_run(&net, Some(StateSweepConfig::eager()), &budget);
        let verdict = if verdict_cell(&v_off) == verdict_cell(&v_on) {
            verdict_cell(&v_off)
        } else {
            format!("{} != {}", verdict_cell(&v_off), verdict_cell(&v_on))
        };
        t.push(vec![
            net.name().to_string(),
            verdict,
            r_off.to_string(),
            r_on.to_string(),
            f_off.to_string(),
            f_on.to_string(),
            p_off.to_string(),
            p_on.to_string(),
            format!("{ms_off:.1}"),
            format!("{ms_on:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6a — solver-lifetime ablation (arena + activation vs rebuild)
// ---------------------------------------------------------------------

/// E6a kernel: one circuit-engine run with eager sweeping and the given
/// clause-database lifetime. Returns (verdict, SAT checks, solver
/// conflicts, learnts retained across GCs, ms).
pub fn lifetime_run(
    net: &Network,
    lifetime: CnfLifetime,
    budget: &Budget,
) -> (Verdict, u64, u64, u64, f64) {
    let engine = CircuitUmc {
        sweep: Some(StateSweepConfig {
            lifetime,
            ..StateSweepConfig::eager()
        }),
        ..CircuitUmc::default()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let detail = run.detail::<CircuitUmcStats>().expect("circuit stats");
    (
        run.verdict.clone(),
        detail.cnf.checks,
        detail.solver.conflicts,
        detail.cnf.learnts_retained,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E6a: the solver ablation of the arena/activation PR — the circuit
/// engine with eager sweeping, comparing the persistent
/// activation-literal clause database (`act`, learnt clauses survive
/// every GC) against the old throw-the-solver-away rebuild (`rb`). The
/// claims: identical verdicts, and on the deep traversals the retained
/// learnt clauses pay for themselves in conflicts and wall clock.
pub fn e6a_table() -> Table {
    let mut t = Table::new(
        "E6a — solver lifetime ablation (circuit engine, eager sweep)",
        &[
            "circuit",
            "verdict",
            "checks act",
            "checks rb",
            "conflicts act",
            "conflicts rb",
            "retained",
            "ms act",
            "ms rb",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let (v_act, checks_act, confl_act, retained, ms_act) =
            lifetime_run(&net, CnfLifetime::Activation, &budget);
        let (v_rb, checks_rb, confl_rb, _, ms_rb) =
            lifetime_run(&net, CnfLifetime::Rebuild, &budget);
        let verdict = if verdict_cell(&v_act) == verdict_cell(&v_rb) {
            verdict_cell(&v_act)
        } else {
            format!("{} != {}", verdict_cell(&v_act), verdict_cell(&v_rb))
        };
        t.push(vec![
            net.name().to_string(),
            verdict,
            checks_act.to_string(),
            checks_rb.to_string(),
            confl_act.to_string(),
            confl_rb.to_string(),
            retained.to_string(),
            format!("{ms_act:.1}"),
            format!("{ms_rb:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6p — partitioned vs monolithic state sets (circuit engine)
// ---------------------------------------------------------------------

/// E6p kernel: one circuit-engine run at the given partition count.
/// Returns (verdict, reached size, partition stats, ms).
pub fn partition_run(
    net: &Network,
    count: PartitionCount,
    budget: &Budget,
) -> (Verdict, usize, PartitionStats, f64) {
    // with_count(Fixed(1)) keeps the watermark off: genuinely monolithic.
    let engine = CircuitUmc {
        partition: PartitionConfig::with_count(count),
        ..CircuitUmc::default()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let detail = run.detail::<CircuitUmcStats>().expect("circuit stats");
    (
        run.verdict.clone(),
        detail.reached_size,
        detail.partitions.clone(),
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E6p: the partitioned state-set ablation across the E6 suite — the
/// circuit engine monolithic (`x1`) vs partitioned (`x4`) vs one
/// partition per core (`auto`). The claims: verdicts (and fixpoint
/// iterations / cex depths) are identical at every partition count, and
/// on redundancy-heavy models the largest per-partition state cone stays
/// strictly below the monolithic reached-set representation.
pub fn e6p_table() -> Table {
    let mut t = Table::new(
        "E6p — partitioned state sets (circuit engine, AND gates)",
        &[
            "circuit",
            "verdict",
            "reached x1",
            "maxcone x1",
            "maxcone x4",
            "parts",
            "splits",
            "prunes",
            "ms x1",
            "ms x4",
            "ms auto",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let (v1, reached1, p1, ms1) = partition_run(&net, PartitionCount::Fixed(1), &budget);
        let (v4, _, p4, ms4) = partition_run(&net, PartitionCount::Fixed(4), &budget);
        let (va, _, _, msa) = partition_run(&net, PartitionCount::Auto, &budget);
        let verdict =
            if verdict_cell(&v1) == verdict_cell(&v4) && verdict_cell(&v1) == verdict_cell(&va) {
                verdict_cell(&v1)
            } else {
                format!(
                    "{} != {} != {}",
                    verdict_cell(&v1),
                    verdict_cell(&v4),
                    verdict_cell(&va)
                )
            };
        t.push(vec![
            net.name().to_string(),
            verdict,
            reached1.to_string(),
            p1.max_cone.to_string(),
            p4.max_cone.to_string(),
            p4.trajectory.last().copied().unwrap_or(1).to_string(),
            p4.splits.to_string(),
            p4.prunes.to_string(),
            format!("{ms1:.1}"),
            format!("{ms4:.1}"),
            format!("{msa:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6pdr — IC3/PDR vs the bounded and traversal engines
// ---------------------------------------------------------------------

/// E6pdr kernel: one IC3 run at generalization mode `gen`. Returns
/// (verdict, frames, obligations, clauses learned, clauses pushed,
/// generalization drops, ms).
pub fn ic3_run(
    net: &Network,
    gen: GenMode,
    budget: &Budget,
) -> (Verdict, usize, u64, u64, u64, u64, f64) {
    let engine = Ic3 {
        gen,
        ..Ic3::default()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let detail = run.detail::<Ic3Stats>().expect("ic3 stats");
    (
        run.verdict.clone(),
        detail.frames,
        detail.obligations,
        detail.clauses,
        detail.pushed,
        detail.gen_drops,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E6pdr: property-directed reachability across the E6 suite, against
/// the circuit traversal and BMC. The claims: IC3 agrees with the
/// circuit engine's verdict on every model (the `verdict` column prints
/// a `!=` marker otherwise — counterexample depths are *not* compared,
/// IC3 traces need not be minimal), it **proves the safe models BMC can
/// never close** (the `bmc` column stays `unknown` there), and the
/// literal-dropping generalization ablation (`ms nodrop`) shows what the
/// unsat-core-only baseline costs.
pub fn e6pdr_table() -> Table {
    let mut t = Table::new(
        "E6pdr — IC3/PDR vs circuit traversal and BMC (E6 suite)",
        &[
            "circuit",
            "verdict",
            "bmc",
            "frames",
            "obls",
            "clauses",
            "pushed",
            "drops",
            "ms circuit",
            "ms ic3",
            "ms nodrop",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let start = Instant::now();
        let circuit = CircuitUmc::default().check(&net, &budget);
        let ms_circuit = start.elapsed().as_secs_f64() * 1e3;
        let bmc = Bmc::default().check(&net, &budget);
        let (v_ic3, frames, obls, clauses, pushed, drops, ms_ic3) =
            ic3_run(&net, GenMode::default(), &budget);
        let (v_nodrop, _, _, _, _, _, ms_nodrop) = ic3_run(&net, GenMode::Core, &budget);
        // Agreement on the classification (safe/unsafe), not the depth:
        // IC3 counterexamples are genuine but need not be minimal. The
        // ablation run must agree too — a generalization regression that
        // flips the core-only verdict prints a `!=` marker here.
        let agree = circuit.verdict.is_safe() == v_ic3.is_safe()
            && circuit.verdict.is_unsafe() == v_ic3.is_unsafe()
            && circuit.verdict.is_safe() == v_nodrop.is_safe()
            && circuit.verdict.is_unsafe() == v_nodrop.is_unsafe();
        let verdict = if agree {
            verdict_cell(&v_ic3)
        } else {
            format!(
                "{} != {}",
                verdict_cell(&circuit.verdict),
                verdict_cell(&v_ic3)
            )
        };
        t.push(vec![
            net.name().to_string(),
            verdict,
            verdict_cell(&bmc.verdict),
            frames.to_string(),
            obls.to_string(),
            clauses.to_string(),
            pushed.to_string(),
            drops.to_string(),
            format!("{ms_circuit:.1}"),
            format!("{ms_ic3:.1}"),
            format!("{ms_nodrop:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6g — IC3 generalization ablation (the GenMode ladder)
// ---------------------------------------------------------------------

/// One [`ic3_gen_run`] row: (verdict, SAT checks, obligations, ternary
/// drops, CTGs blocked, deep CTGs blocked, F_∞ clauses, ms).
pub type GenRunRow = (Verdict, u64, u64, u64, u64, u64, u64, f64);

/// E6g kernel: one IC3 run at `gen`, surfacing the query-stream
/// counters. Returns (verdict, SAT checks, obligations, ternary drops,
/// CTGs blocked, deep CTGs blocked, F_∞ clauses, ms).
pub fn ic3_gen_run(net: &Network, gen: GenMode, budget: &Budget) -> GenRunRow {
    let engine = Ic3 {
        gen,
        ..Ic3::default()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let d = run.detail::<Ic3Stats>().expect("ic3 stats");
    (
        run.verdict.clone(),
        d.cnf.checks,
        d.obligations,
        d.tern_drops,
        d.ctg_blocked,
        d.ctg_deep_blocked,
        d.inf_clauses,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// The E6g suite: the engine-comparison models plus three don't-care
/// rich safe circuits — a deeper FIFO controller, a wider arbiter and a
/// wide shadowed counter — where ternary widening has latches to X out.
pub fn e6g_suite() -> Vec<Network> {
    let mut suite = umc_suite();
    suite.push(generators::fifo_ctrl(6));
    suite.push(generators::arbiter(9));
    suite.push(generators::shadowed_counter_gap(7, 50, 100, 256));
    suite
}

/// E6g: the generalization-effort ladder, one IC3 run per
/// [`GenMode`] per model. The claims: every rung reaches the same
/// verdict (a `!=` marker prints otherwise), and the structural rungs —
/// ternary widening, CTG blocking, F_∞ promotion — cut the SAT query
/// stream (`chk`) and the obligation count (`obl`) that the paper's
/// thesis says dominate the wall clock.
pub fn e6g_table() -> Table {
    let mut t = Table::new(
        "E6g — IC3 generalization ablation (core < drop < ternary < ctg < ctg-deep)",
        &[
            "circuit", "verdict", "chk core", "chk drop", "chk tern", "chk ctg", "chk deep",
            "obl drop", "obl tern", "obl ctg", "tdrops", "ctg blk", "deep blk", "inf", "ms deep",
        ],
    );
    let budget = e6_budget();
    for net in e6g_suite() {
        let runs: Vec<GenRunRow> = GenMode::ALL
            .iter()
            .map(|&gen| ic3_gen_run(&net, gen, &budget))
            .collect();
        let agree = runs.iter().all(|(v, ..)| {
            v.is_safe() == runs[0].0.is_safe() && v.is_unsafe() == runs[0].0.is_unsafe()
        });
        let verdict = if agree {
            verdict_cell(&runs[4].0)
        } else {
            format!(
                "{} != {}",
                verdict_cell(&runs[0].0),
                verdict_cell(&runs[4].0)
            )
        };
        t.push(vec![
            net.name().to_string(),
            verdict,
            runs[0].1.to_string(),
            runs[1].1.to_string(),
            runs[2].1.to_string(),
            runs[3].1.to_string(),
            runs[4].1.to_string(),
            runs[1].2.to_string(),
            runs[2].2.to_string(),
            runs[3].2.to_string(),
            runs[4].3.to_string(),
            runs[4].4.to_string(),
            runs[4].5.to_string(),
            runs[4].6.to_string(),
            format!("{:.1}", runs[4].7),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6i — Craig interpolation vs IC3 and circuit traversal
// ---------------------------------------------------------------------

/// E6i kernel: one interpolation-engine run. Returns (verdict, frames,
/// refinements, interpolants derived, final interpolant nodes, ms).
pub fn itp_run(net: &Network, budget: &Budget) -> (Verdict, usize, u64, u64, usize, f64) {
    let start = Instant::now();
    let run = Itp::default().check(net, budget);
    let d = run.detail::<ItpStats>().expect("itp stats");
    (
        run.verdict.clone(),
        d.frames,
        d.refinements,
        d.interpolants,
        d.itp_nodes,
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E6i kernel: the proof-plane overhead probe. Builds one monolithic
/// "bad within `depth` steps" unrolling of the net (functional
/// composition, fresh inputs per frame — the workload shape the
/// interpolation engine's bounded queries take) and solves it through
/// the arena solver twice: proof logging off, then full
/// resolution-trace logging. Returns (ms off, ms traced); panics if the
/// two solves disagree, since logging must never change an answer.
pub fn proof_overhead_run(net: &Network, depth: usize) -> (f64, f64) {
    let mut aig = net.aig().clone();
    let latches: Vec<Var> = net.latches().iter().map(|l| l.var).collect();
    let pis: Vec<Var> = net.primary_inputs().to_vec();
    let mut roots: Vec<Lit> = net.latches().iter().map(|l| l.next).collect();
    roots.push(net.bad());
    let mut state: Vec<Lit> = net
        .latches()
        .iter()
        .map(|l| if l.init { Lit::TRUE } else { Lit::FALSE })
        .collect();
    let mut any_bad = Lit::FALSE;
    for _ in 0..=depth {
        let mut sub: Vec<(Var, Lit)> = latches.iter().copied().zip(state.iter().copied()).collect();
        for p in &pis {
            sub.push((*p, aig.add_input().lit()));
        }
        let composed = aig.compose_many(&roots, &sub);
        any_bad = aig.or(any_bad, composed[latches.len()]);
        state = composed[..latches.len()].to_vec();
    }
    let mut times = [0.0f64; 2];
    let mut results = Vec::new();
    for (i, mode) in [ProofMode::Off, ProofMode::Trace].into_iter().enumerate() {
        let mut cnf = AigCnf::with_lifetime(CnfLifetime::Rebuild);
        cnf.set_proof_mode(mode);
        let start = Instant::now();
        cnf.assert_lit(&aig, any_bad);
        results.push(cnf.solve_under(&aig, &[]));
        times[i] = start.elapsed().as_secs_f64() * 1e3;
    }
    assert_eq!(results[0], results[1], "proof logging changed the verdict");
    (times[0], times[1])
}

/// E6i: Craig interpolation across the E6 suite, against IC3 and the
/// circuit traversal. The claims: the interpolation engine agrees with
/// the circuit engine's classification on every model (a `!=` marker
/// prints otherwise), it closes the safe models from bounded proofs
/// alone — `frames` stays well under the models' diameters — and the
/// proof plane that feeds it is cheap: `ms sat` vs `ms sat+pf` solve
/// the *same* monolithic unrolling with logging off and on, so the gap
/// is the whole tracing tax.
pub fn e6i_table() -> Table {
    let mut t = Table::new(
        "E6i — Craig interpolation vs IC3 and circuit traversal (E6 suite)",
        &[
            "circuit",
            "verdict",
            "frames",
            "refin",
            "itps",
            "i-nodes",
            "ms itp",
            "ms ic3",
            "ms circuit",
            "ms sat",
            "ms sat+pf",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let start = Instant::now();
        let circuit = CircuitUmc::default().check(&net, &budget);
        let ms_circuit = start.elapsed().as_secs_f64() * 1e3;
        let (v_ic3, .., ms_ic3) = ic3_run(&net, GenMode::default(), &budget);
        let (v_itp, frames, refin, itps, nodes, ms_itp) = itp_run(&net, &budget);
        let agree = circuit.verdict.is_safe() == v_itp.is_safe()
            && circuit.verdict.is_unsafe() == v_itp.is_unsafe()
            && v_ic3.is_safe() == v_itp.is_safe();
        let verdict = if agree {
            verdict_cell(&v_itp)
        } else {
            format!(
                "{} != {}",
                verdict_cell(&circuit.verdict),
                verdict_cell(&v_itp)
            )
        };
        let (ms_off, ms_trace) = proof_overhead_run(&net, frames.max(4));
        t.push(vec![
            net.name().to_string(),
            verdict,
            frames.to_string(),
            refin.to_string(),
            itps.to_string(),
            nodes.to_string(),
            format!("{ms_itp:.1}"),
            format!("{ms_ic3:.1}"),
            format!("{ms_circuit:.1}"),
            format!("{ms_off:.1}"),
            format!("{ms_trace:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6q — AIG-manager hot-path ablation (quantification tunings)
// ---------------------------------------------------------------------

/// The e6q tuning ladder: from the all-`HashMap` reference manager up to
/// the full dense hot path, each rung enabling one more fast path in the
/// order the implementation layers them (open-addressing strash, dense
/// generation-stamped scratchpads, support-limited cofactoring, and the
/// direct-mapped cofactor cache).
pub fn e6q_rungs() -> [(&'static str, AigTuning); 5] {
    [
        ("hashmap", AigTuning::reference()),
        (
            "strash",
            AigTuning {
                open_strash: true,
                ..AigTuning::reference()
            },
        ),
        (
            "scratch",
            AigTuning {
                open_strash: true,
                dense_scratch: true,
                ..AigTuning::reference()
            },
        ),
        (
            "support",
            AigTuning {
                cofactor_cache: false,
                ..AigTuning::full()
            },
        ),
        ("cache", AigTuning::full()),
    ]
}

/// E6q kernel: one circuit-engine run with the given manager tuning
/// installed as the process default (the engine creates managers
/// internally, one per state-set partition). Restores the full tuning
/// before returning. Returns (verdict, peak nodes, quantifier hot-path
/// counters, ms).
pub fn quant_tuning_run(
    net: &Network,
    tuning: AigTuning,
    budget: &Budget,
) -> (Verdict, usize, AigPerfCounters, f64) {
    AigTuning::set_process_default(tuning);
    // The engine quantifies inside a clone of the network's own manager
    // (and clones preserve their source tuning), so the rung has to be
    // installed on the network too, not just on fresh managers.
    let mut net = net.clone();
    net.aig_mut().set_tuning(tuning);
    let start = Instant::now();
    let run = CircuitUmc::default().check(&net, budget);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    AigTuning::set_process_default(AigTuning::full());
    let detail = run.detail::<CircuitUmcStats>().expect("circuit stats");
    (
        run.verdict.clone(),
        detail.peak_nodes,
        detail.quant_perf,
        elapsed,
    )
}

/// E6q: the manager hot-path ablation across the E6 suite. The claims:
/// every rung reaches the *same* verdict with the same fixpoint
/// iteration count or counterexample depth (a `!=` marker prints
/// otherwise — the tunings are semantics-preserving by construction),
/// and the `walk` columns — nodes visited by the quantifier's
/// substitution walks, counted identically on the reference and dense
/// paths — drop at the `support` rung: support limiting stops every
/// cofactor walk at the substituted variable's node index instead of
/// descending through the whole cone. `probes` counts strash *slots
/// inspected* on the open table but *lookups* on the `HashMap` (whose
/// per-probe cost includes hashing `RandomState` and chasing boxes), so
/// it sizes each rung's table traffic rather than comparing across
/// representations. `hits` is full-rung-only: unbudgeted engine runs
/// never re-ask a (root, var, phase) cofactor, so the cache earns its
/// keep under growth-budget aborts (e7), not here.
pub fn e6q_table() -> Table {
    let mut t = Table::new(
        "E6q — AIG-manager hot-path ablation (hashmap < strash < scratch < support < cache)",
        &[
            "circuit",
            "verdict",
            "walk hashmap",
            "walk strash",
            "walk scratch",
            "walk support",
            "walk cache",
            "probes ref",
            "probes full",
            "hits",
            "ms hashmap",
            "ms cache",
            "peak",
        ],
    );
    let budget = e6_budget();
    for net in umc_suite() {
        let runs: Vec<(Verdict, usize, AigPerfCounters, f64)> = e6q_rungs()
            .iter()
            .map(|(_, tuning)| quant_tuning_run(&net, *tuning, &budget))
            .collect();
        let agree = runs
            .iter()
            .all(|(v, ..)| verdict_cell(v) == verdict_cell(&runs[0].0));
        let verdict = if agree {
            verdict_cell(&runs[4].0)
        } else {
            format!(
                "{} != {}",
                verdict_cell(&runs[0].0),
                verdict_cell(&runs[4].0)
            )
        };
        let full = &runs[4];
        let mut row = vec![net.name().to_string(), verdict];
        for r in &runs {
            row.push(r.2.scratch_walk_nodes.to_string());
        }
        row.push(runs[0].2.strash_probes.to_string());
        row.push(full.2.strash_probes.to_string());
        row.push(full.2.cofactor_cache_hits.to_string());
        row.push(format!("{:.1}", runs[0].3));
        row.push(format!("{:.1}", full.3));
        row.push(full.1.to_string());
        t.push(row);
    }
    t
}

// ---------------------------------------------------------------------
// E6c — the serve cache: whole-run replay and IC3 warm starts
// ---------------------------------------------------------------------

/// E6c kernel: one `check` request through the service core against a
/// shared cache. Returns (verdict, tier, obligations if IC3, ms).
pub fn cache_run(
    cache: &std::sync::Mutex<cbq_serve::StructuralCache>,
    net: &Network,
    id: u64,
    use_cache: bool,
) -> (Verdict, cbq_serve::CacheTier, u64, f64) {
    let request = cbq_serve::CheckRequest {
        id,
        model: cbq_ckt::io::write_network(net),
        engine: "ic3".to_string(),
        budget: e6_budget(),
        use_cache,
    };
    let start = Instant::now();
    let outcome = cbq_serve::process_check(&request, cache, &cbq_serve::ServerCaps::default());
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let run = outcome.run.expect("model serializes round-trip");
    let obls = run
        .detail::<Ic3Stats>()
        .map(|d| d.obligations)
        .unwrap_or_default();
    (run.verdict.clone(), outcome.tier, obls, elapsed)
}

/// E6c: the structural cache across the E6 suite. Three requests per
/// model — cold, identical (tier-1 whole-run replay), and a structurally
/// perturbed but semantically equal property (`bad ∨ (bad ∧ l₀)`, which
/// defeats tiers 1/2 and exercises the tier-3 IC3 warm start). The
/// claims: the replay is orders of magnitude faster than the cold run,
/// the warm start discharges no more obligations than cold, and all
/// three verdicts agree (a `!=` marker prints otherwise).
pub fn e6c_table() -> Table {
    let mut t = Table::new(
        "E6c — serve cache: cold vs tier-1 replay vs tier-3 warm start (ic3, E6 suite)",
        &[
            "circuit",
            "verdict",
            "ms cold",
            "ms replay",
            "obls cold",
            "obls warm",
            "tier warm",
            "ms warm",
        ],
    );
    for net in umc_suite() {
        let cache = std::sync::Mutex::new(cbq_serve::StructuralCache::new());
        let (v_cold, _, obls_cold, ms_cold) = cache_run(&cache, &net, 1, true);
        let (v_replay, tier_replay, _, ms_replay) = cache_run(&cache, &net, 2, true);

        let mut variant = net.clone();
        let perturbed = {
            let bad = variant.bad();
            let l0 = variant.latches()[0].var.lit();
            let aig = variant.aig_mut();
            let both = aig.and(bad, l0);
            aig.or(bad, both)
        };
        variant.set_bad(perturbed);
        let (v_warm, tier_warm, obls_warm, ms_warm) = cache_run(&cache, &variant, 3, true);

        let agree = verdict_cell(&v_cold) == verdict_cell(&v_replay)
            && v_cold.is_safe() == v_warm.is_safe()
            && v_cold.is_unsafe() == v_warm.is_unsafe()
            && tier_replay == cbq_serve::CacheTier::WholeRun;
        let verdict = if agree {
            verdict_cell(&v_cold)
        } else {
            format!("{} != {}", verdict_cell(&v_cold), verdict_cell(&v_warm))
        };
        t.push(vec![
            net.name().to_string(),
            verdict,
            format!("{ms_cold:.1}"),
            format!("{ms_replay:.3}"),
            obls_cold.to_string(),
            obls_warm.to_string(),
            format!("{}", tier_warm.number()),
            format!("{ms_warm:.1}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6pp — the parallel portfolio: sequential vs parallel vs parallel+bus
// ---------------------------------------------------------------------

/// E6pp kernel: one portfolio run in the requested mode. Returns the
/// verdict, wall-clock ms, and — for bus runs — the publication and
/// admission counters.
pub fn portfolio_run(
    net: &Network,
    parallel: bool,
    bus: bool,
    budget: &Budget,
) -> (Verdict, f64, Option<PortfolioBusStats>) {
    let engine = if parallel {
        Portfolio::standard_parallel(bus)
    } else {
        Portfolio::standard()
    };
    let start = Instant::now();
    let run = engine.check(net, budget);
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let bus_stats = run
        .detail::<PortfolioStats>()
        .and_then(|d| d.bus.as_ref().copied());
    (run.verdict, elapsed, bus_stats)
}

/// E6pp: the portfolio ablation on the E6 suite — the sequential
/// budget-sliced cascade against the concurrent scoped-thread race,
/// without and with the cross-engine lemma bus. The claims: all three
/// modes return the same verdict everywhere (parallel determinism — the
/// winner is the smallest-index conclusive member), and on wall clock
/// the parallel modes win wherever the sequential cascade burns its
/// early slices on members that cannot answer (a `!=` marker prints on
/// any verdict divergence).
pub fn e6pp_table() -> Table {
    let mut t = Table::new(
        "E6pp — portfolio: sequential vs parallel vs parallel+bus (E6 suite)",
        &[
            "circuit",
            "verdict",
            "ms seq",
            "ms par",
            "ms par+bus",
            "cubes",
            "admitted",
            "merges",
        ],
    );
    let budget = e6_budget();
    // The E6 suite plus a showcase model where the lemma bus has real
    // work to save: a gap counter padded with 256 bits of shadow state
    // outside the property's cone. k-induction alone burns all 40
    // simple-path frames over the full state vector; IC3's cone-directed
    // clauses never touch the shadows and converge fast. The sequential
    // cascade pays both in series, while on the bus k-induction admits
    // IC3's published invariant mid-run and concludes early.
    let mut models = umc_suite();
    models.push(generators::shadowed_counter_gap(7, 50, 100, 256));
    for net in models {
        let (v_seq, ms_seq, _) = portfolio_run(&net, false, false, &budget);
        let (v_par, ms_par, _) = portfolio_run(&net, true, false, &budget);
        let (v_bus, ms_bus, bus) = portfolio_run(&net, true, true, &budget);
        let agree = v_seq.is_safe() == v_par.is_safe()
            && v_seq.is_unsafe() == v_par.is_unsafe()
            && v_seq.is_safe() == v_bus.is_safe()
            && v_seq.is_unsafe() == v_bus.is_unsafe();
        let verdict = if agree {
            verdict_cell(&v_seq)
        } else {
            format!("{} != {}", verdict_cell(&v_seq), verdict_cell(&v_bus))
        };
        let (cubes, admitted, merges) = bus
            .map(|b| {
                (
                    b.published.cubes,
                    b.clients.lemmas_admitted,
                    b.published.merges,
                )
            })
            .unwrap_or_default();
        t.push(vec![
            net.name().to_string(),
            verdict,
            format!("{ms_seq:.1}"),
            format!("{ms_par:.1}"),
            format!("{ms_bus:.1}"),
            cubes.to_string(),
            admitted.to_string(),
            merges.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Smoke — one tiny model per engine (the CI fail-fast run)
// ---------------------------------------------------------------------

/// Smoke: every registered engine on one tiny model under a tight
/// budget — regressions in any engine (or in sweeping, which is on by
/// default for the circuit engines) fail fast in CI.
pub fn smoke_table() -> Table {
    let mut t = Table::new(
        "Smoke — every registered engine on one tiny model",
        &["engine", "circuit", "verdict", "nodes", "ms"],
    );
    let budget = Budget::unlimited()
        .with_steps(256)
        .with_timeout(std::time::Duration::from_secs(10));
    for spec in registry() {
        for net in [generators::mutex(), generators::mutex_bug()] {
            let start = Instant::now();
            let run = (spec.build)().check(&net, &budget);
            t.push(vec![
                spec.name.to_string(),
                net.name().to_string(),
                verdict_cell(&run.verdict),
                run.stats.peak_nodes.to_string(),
                ms(start),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E7 / Fig. 3 — partial quantification budget sweep
// ---------------------------------------------------------------------

/// E7 kernel: quantify a pre-image under a growth budget; returns
/// (residual vars, result size, ms).
pub fn partial_run(aig0: &Aig, pre: Lit, pis: &[Var], budget: Option<f64>) -> (usize, usize, f64) {
    let mut aig = aig0.clone();
    let mut cnf = AigCnf::new();
    let cfg = match budget {
        Some(b) => QuantConfig::full().with_budget(b),
        None => QuantConfig::full(),
    };
    let start = Instant::now();
    let res = exists_many(&mut aig, pre, pis, &mut cnf, &cfg);
    (
        res.remaining.len(),
        aig.cone_size(res.lit),
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E7: residuals and sizes across the abort-budget sweep.
pub fn e7_table() -> Table {
    let mut t = Table::new(
        "E7 / Fig. 3 — partial quantification budget sweep",
        &["workload", "budget", "residual", "size", "ms"],
    );
    let mut workloads: Vec<(String, Aig, Lit, Vec<Var>)> = Vec::new();
    for net in [generators::arbiter(8), generators::fifo_ctrl(4)] {
        let (aig, pre, pis) = preimage_workload(&net, 1);
        workloads.push((net.name().to_string(), aig, pre, pis));
    }
    // The growth-prone workload: multiplier middle bits (cofactors by
    // operand bits share little).
    let (maig, mf, mvars) = multiplier_workload(6, 6, 7, 4);
    workloads.push(("mult6x6.b7".to_string(), maig, mf, mvars));
    for (name, aig0, pre, pis) in workloads {
        for budget in [
            Some(0.8),
            Some(1.0),
            Some(1.25),
            Some(1.5),
            Some(2.0),
            Some(4.0),
            None,
        ] {
            let (residual, size, time) = partial_run(&aig0, pre, &pis, budget);
            t.push(vec![
                name.clone(),
                budget.map_or("∞".to_string(), |b| format!("{b:.2}x")),
                residual.to_string(),
                size.to_string(),
                format!("{time:.1}"),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E8 / Table 5 — hybrid with all-solutions SAT pre-image
// ---------------------------------------------------------------------

/// E8 kernel: pre-quantify `frac` of the inputs with the circuit engine,
/// enumerate the rest by circuit cofactoring. Returns
/// (decision vars, cofactor rounds, result size, ms).
pub fn hybrid_run(aig0: &Aig, pre: Lit, pis: &[Var], frac: f64) -> (usize, usize, usize, f64) {
    let mut aig = aig0.clone();
    let mut cnf = AigCnf::new();
    let split = ((pis.len() as f64) * frac).round() as usize;
    let (first, rest) = pis.split_at(split);
    let start = Instant::now();
    let q = exists_many(&mut aig, pre, first, &mut cnf, &QuantConfig::full());
    let (lit, stats) =
        all_solutions_exists(&mut aig, q.lit, rest, &mut cnf, 100_000).expect("converges");
    (
        rest.len(),
        stats.cofactors,
        aig.cone_size(lit),
        start.elapsed().as_secs_f64() * 1e3,
    )
}

/// E8: SAT pre-image effort as a function of pre-quantified fraction.
pub fn e8_table() -> Table {
    let mut t = Table::new(
        "E8 / Table 5 — circuit quantification as preprocessing for SAT pre-image",
        &[
            "workload",
            "prequant",
            "decision vars",
            "cofactors",
            "size",
            "ms",
        ],
    );
    let mut workloads: Vec<(String, Aig, Lit, Vec<Var>)> = Vec::new();
    for net in [generators::arbiter(8), generators::fifo_ctrl(4)] {
        let (aig, pre, pis) = preimage_workload(&net, 1);
        workloads.push((net.name().to_string(), aig, pre, pis));
    }
    // Enumeration-heavy workload: ∃y. (x*y == 60) — one cofactor per
    // divisor region for the pure SAT method.
    let (faig, ff, fvars) = factor_workload(6, 60);
    workloads.push(("factor60".to_string(), faig, ff, fvars));
    for (name, aig0, pre, pis) in workloads {
        for frac in [0.0, 0.25, 0.5, 1.0] {
            let (vars, rounds, size, time) = hybrid_run(&aig0, pre, &pis, frac);
            t.push(vec![
                name.clone(),
                format!("{:.0}%", frac * 100.0),
                vars.to_string(),
                rounds.to_string(),
                size.to_string(),
                format!("{time:.1}"),
            ]);
        }
    }
    t
}

/// Runs one experiment by id (`"e1"` … `"e8"`, `"e6s"`, `"smoke"`).
pub fn run_experiment(id: &str) -> Option<Table> {
    match id {
        "e1" => Some(e1_table()),
        "e2" => Some(e2_table()),
        "e3" => Some(e3_table()),
        "e4" => Some(e4_table()),
        "e5" => Some(e5_table()),
        "e6" => Some(e6_table()),
        "e6s" => Some(e6s_table()),
        "e6p" => Some(e6p_table()),
        "e6a" => Some(e6a_table()),
        "e6pdr" => Some(e6pdr_table()),
        "e6g" => Some(e6g_table()),
        "e6i" => Some(e6i_table()),
        "e6q" => Some(e6q_table()),
        "e6c" => Some(e6c_table()),
        "e6pp" => Some(e6pp_table()),
        "e7" => Some(e7_table()),
        "e8" => Some(e8_table()),
        "smoke" => Some(smoke_table()),
        _ => None,
    }
}

/// All experiment ids in report order (`smoke` is CI-only and excluded).
pub const EXPERIMENTS: [&str; 17] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e6s", "e6p", "e6a", "e6pdr", "e6g", "e6i", "e6q", "e6c",
    "e6pp", "e7", "e8",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_pairs_are_plausible() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, 40, 0.05, 1);
        let pairs = candidate_pairs(&aig, f, g, 4, 3);
        assert!(!pairs.is_empty());
    }

    #[test]
    fn satmerge_modes_prove_the_same_pairs() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, 30, 0.1, 5);
        let pairs = candidate_pairs(&aig, f, g, 4, 7);
        assert!(!pairs.is_empty());
        let (p1, ..) = satmerge_run(&aig, &pairs, false);
        let (p2, ..) = satmerge_run(&aig, &pairs, true);
        assert_eq!(p1, p2);
        assert!(p1 > 0);
    }

    #[test]
    fn registry_engines_complete_the_e6_kernel() {
        // One tiny circuit through every registered engine, budgeted the
        // same way as the full table.
        let net = generators::mutex();
        for spec in registry() {
            let run = (spec.build)().check(&net, &Budget::unlimited().with_steps(100));
            assert_eq!(run.stats.engine, spec.name);
            assert!(
                !run.verdict.is_unsafe(),
                "{}: mutex is safe, got {}",
                spec.name,
                run.verdict
            );
        }
    }

    #[test]
    fn sweep_kernel_preserves_verdicts_on_a_tiny_model() {
        let net = generators::mutex();
        let budget = Budget::unlimited().with_steps(64);
        let (v_off, ..) = sweep_run(&net, None, &budget);
        let (v_on, reached_on, ..) = sweep_run(&net, Some(StateSweepConfig::eager()), &budget);
        assert_eq!(verdict_cell(&v_off), verdict_cell(&v_on));
        assert!(v_on.is_safe());
        let _ = reached_on;
        assert_eq!(median(&[]), 0);
        assert_eq!(median(&[3, 1, 2]), 2);
    }

    #[test]
    fn smoke_covers_every_engine() {
        let t = smoke_table();
        assert_eq!(t.rows.len(), registry().len() * 2);
        for row in &t.rows {
            // BMC legitimately reports unknown on the safe model; nobody
            // may exhaust the smoke budget.
            assert!(
                !row[2].contains("bounded"),
                "{}: smoke budget exhausted ({})",
                row[0],
                row[2]
            );
        }
        assert!(t.rows.iter().any(|r| r[2].starts_with("safe")));
        assert!(t.rows.iter().any(|r| r[2].starts_with("cex")));
    }

    #[test]
    fn ic3_kernel_proves_and_refutes_tiny_models() {
        let budget = Budget::unlimited().with_steps(100);
        let (v, frames, _, clauses, _, _, _) =
            ic3_run(&generators::mutex(), GenMode::default(), &budget);
        assert!(v.is_safe(), "mutex should be safe, got {v:?}");
        assert!(frames >= 1);
        let _ = clauses;
        let (v, ..) = ic3_run(&generators::mutex_bug(), GenMode::Core, &budget);
        assert!(v.is_unsafe(), "mutex_bug should be unsafe, got {v:?}");
    }

    #[test]
    fn ic3_gen_kernel_agrees_across_the_ladder() {
        let budget = Budget::unlimited().with_steps(100);
        for net in [generators::mutex(), generators::mutex_bug()] {
            let runs: Vec<GenRunRow> = GenMode::ALL
                .iter()
                .map(|&gen| ic3_gen_run(&net, gen, &budget))
                .collect();
            for (v, checks, ..) in &runs {
                assert_eq!(v.is_safe(), runs[0].0.is_safe(), "{}", net.name());
                assert!(*checks > 0);
            }
        }
    }

    #[test]
    fn e6i_kernels_run_on_tiny_models() {
        let budget = Budget::unlimited().with_steps(100);
        let (v, frames, ..) = itp_run(&generators::mutex(), &budget);
        assert!(v.is_safe(), "mutex should be safe, got {v:?}");
        assert!(frames >= 1);
        let (v, ..) = itp_run(&generators::mutex_bug(), &budget);
        assert!(v.is_unsafe(), "mutex_bug should be unsafe, got {v:?}");
        // The overhead probe must agree across modes on both a SAT and
        // an UNSAT unrolling (it asserts internally).
        let _ = proof_overhead_run(&generators::mutex(), 4);
        let _ = proof_overhead_run(&generators::mutex_bug(), 4);
    }

    #[test]
    fn e6q_rungs_agree_on_tiny_models() {
        let budget = Budget::unlimited().with_steps(100);
        for net in [generators::mutex(), generators::mutex_bug()] {
            let runs: Vec<(Verdict, usize, AigPerfCounters, f64)> = e6q_rungs()
                .iter()
                .map(|(_, tuning)| quant_tuning_run(&net, *tuning, &budget))
                .collect();
            for (v, ..) in &runs {
                assert_eq!(verdict_cell(v), verdict_cell(&runs[0].0), "{}", net.name());
            }
            // The full rung actually drove the dense hot path.
            assert!(runs[4].2.scratch_walk_nodes > 0, "{}", net.name());
        }
    }

    #[test]
    fn small_experiment_kernels_run() {
        // Smoke-test the kernels on tiny instances (full tables are the
        // report binary's job).
        let net = generators::mutex();
        let (aig0, pre, pis) = preimage_workload(&net, 1);
        let (r, s, _) = partial_run(&aig0, pre, &pis, Some(1.5));
        assert!(r <= pis.len());
        assert!(s > 0 || pre.is_const());
        let (v, _, _, _) = hybrid_run(&aig0, pre, &pis, 0.5);
        assert_eq!(v, pis.len() - 2);
    }
}
