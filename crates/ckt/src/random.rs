//! Random combinational workloads with controlled similarity.
//!
//! Experiment E3 of the evaluation studies the forward vs backward merge
//! orders as a function of *cofactor similarity*. These helpers generate a
//! random function and a mutated copy whose fraction of perturbed gates is
//! the similarity knob.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cbq_aig::{Aig, Lit};

/// Builds a random `num_gates`-gate function over `inputs`, deterministic
/// in `seed`. Gates pick two random existing literals (with random
/// phases) and AND them; the last gate is the root.
pub fn random_function(aig: &mut Aig, inputs: &[Lit], num_gates: usize, seed: u64) -> Lit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool: Vec<Lit> = inputs.to_vec();
    assert!(pool.len() >= 2, "need at least two inputs");
    let mut root = pool[0];
    for _ in 0..num_gates {
        let a = pool[rng.gen_range(0..pool.len())].xor_sign(rng.gen());
        let b = pool[rng.gen_range(0..pool.len())].xor_sign(rng.gen());
        let g = if rng.gen_bool(0.3) {
            aig.xor(a, b)
        } else {
            aig.and(a, b)
        };
        pool.push(g);
        root = g;
    }
    root
}

/// Rebuilds `root`'s cone, flipping the phase of roughly
/// `mutation_rate` of the AND gates — producing a function that agrees
/// with the original on most of its internal nodes.
///
/// `mutation_rate = 0.0` returns a function structurally identical to
/// `root` (the copy re-hashes onto the same nodes); higher rates produce
/// increasingly dissimilar functions.
pub fn mutate_function(aig: &mut Aig, root: Lit, mutation_rate: f64, seed: u64) -> Lit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cone = aig.collect_cone(&[root]);
    let mut memo: std::collections::HashMap<cbq_aig::Var, Lit> = std::collections::HashMap::new();
    for v in cone {
        let rebuilt = match aig.node(v) {
            cbq_aig::Node::Const => Lit::FALSE,
            cbq_aig::Node::Input { .. } => v.lit(),
            cbq_aig::Node::And { f0, f1 } => {
                let a = memo[&f0.var()].xor_sign(f0.is_complemented());
                let b = memo[&f1.var()].xor_sign(f1.is_complemented());
                let g = aig.and(a, b);
                if rng.gen_bool(mutation_rate) {
                    !g
                } else {
                    g
                }
            }
        };
        memo.insert(v, rebuilt);
    }
    memo[&root.var()].xor_sign(root.is_complemented())
}

/// Generates a *pair* of functions with controlled similarity, the
/// workload of the merge-order experiment (E3) and the factorised
/// SAT-merge experiment (E2).
///
/// An abstract three-operand expression DAG is emitted twice with
/// different associativity (`op(op(a,b),c)` vs `op(a,op(b,c))`), so the
/// two emissions are *functionally equivalent but structurally distinct*
/// at every unmutated operator — exactly the situation of two cofactors
/// of the same function. With probability `mutation_rate` an operator's
/// second emission complements one operand, making that subtree (and
/// everything above it) genuinely different.
pub fn similar_pair(
    aig: &mut Aig,
    inputs: &[Lit],
    num_ops: usize,
    mutation_rate: f64,
    seed: u64,
) -> (Lit, Lit) {
    assert!(inputs.len() >= 3, "need at least three inputs");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pool_a: Vec<Lit> = inputs.to_vec();
    let mut pool_b: Vec<Lit> = inputs.to_vec();
    let mut root_a = inputs[0];
    let mut root_b = inputs[0];
    for _ in 0..num_ops {
        // Chain through the most recent result so every operator stays in
        // the roots' cones (and thus becomes a compare point).
        let i = pool_a.len() - 1;
        let j = rng.gen_range(0..pool_a.len());
        let k = rng.gen_range(0..pool_a.len());
        let pa = rng.gen::<bool>();
        let pb = rng.gen::<bool>();
        let pc = rng.gen::<bool>();
        let is_and = rng.gen_bool(0.6);
        let mutate = rng.gen_bool(mutation_rate);
        let (a1, b1, c1) = (
            pool_a[i].xor_sign(pa),
            pool_a[j].xor_sign(pb),
            pool_a[k].xor_sign(pc),
        );
        let (a2, b2, mut c2) = (
            pool_b[i].xor_sign(pa),
            pool_b[j].xor_sign(pb),
            pool_b[k].xor_sign(pc),
        );
        if mutate {
            c2 = !c2;
        }
        let (ra, rb) = if is_and {
            let t1 = aig.and(a1, b1);
            let l = aig.and(t1, c1);
            let t2 = aig.and(b2, c2);
            let r = aig.and(a2, t2);
            (l, r)
        } else {
            let t1 = aig.xor(a1, b1);
            let l = aig.xor(t1, c1);
            let t2 = aig.xor(b2, c2);
            let r = aig.xor(a2, t2);
            (l, r)
        };
        pool_a.push(ra);
        pool_b.push(rb);
        root_a = ra;
        root_b = rb;
    }
    (root_a, root_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_pair_zero_mutation_is_equivalent() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, 30, 0.0, 5);
        for mask in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(aig.eval(f, &asg), aig.eval(g, &asg), "mask {mask}");
        }
    }

    #[test]
    fn similar_pair_emissions_are_structurally_distinct() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, 30, 0.0, 5);
        // Equivalent but (almost surely) not the same node.
        assert_ne!(f, g);
    }

    #[test]
    fn similar_pair_high_mutation_differs() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| aig.add_input().lit()).collect();
        let (f, g) = similar_pair(&mut aig, &ins, 30, 0.9, 5);
        let differs = (0..64u32).any(|mask| {
            let asg: Vec<bool> = (0..6).map(|i| (mask >> i) & 1 != 0).collect();
            aig.eval(f, &asg) != aig.eval(g, &asg)
        });
        assert!(differs);
    }

    #[test]
    fn random_function_is_deterministic() {
        let mut a1 = Aig::new();
        let ins1: Vec<Lit> = (0..6).map(|_| a1.add_input().lit()).collect();
        let f1 = random_function(&mut a1, &ins1, 40, 7);
        let mut a2 = Aig::new();
        let ins2: Vec<Lit> = (0..6).map(|_| a2.add_input().lit()).collect();
        let f2 = random_function(&mut a2, &ins2, 40, 7);
        for mask in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| (mask >> i) & 1 != 0).collect();
            assert_eq!(a1.eval(f1, &asg), a2.eval(f2, &asg));
        }
    }

    #[test]
    fn zero_mutation_is_identity() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|_| aig.add_input().lit()).collect();
        let f = random_function(&mut aig, &ins, 30, 3);
        let g = mutate_function(&mut aig, f, 0.0, 11);
        assert_eq!(f, g);
    }

    #[test]
    fn high_mutation_changes_function() {
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|_| aig.add_input().lit()).collect();
        let f = random_function(&mut aig, &ins, 30, 3);
        let g = mutate_function(&mut aig, f, 0.8, 11);
        let differs = (0..32u32).any(|mask| {
            let asg: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 != 0).collect();
            aig.eval(f, &asg) != aig.eval(g, &asg)
        });
        assert!(differs);
    }
}
