//! The optional proof plane: resolution provenance for every clause the
//! solver derives.
//!
//! [`ProofMode`] selects how much provenance [`crate::Solver`] keeps:
//! `Off` (the default — the solving hot path pays a single
//! `Option::is_some` branch), `Drat` (an event log sufficient to emit a
//! DRAT proof after an UNSAT answer) or `Trace` (the full in-memory
//! resolution DAG, the input to Craig interpolation in `cbq-mc`). Both
//! active modes record the same structure; the distinction is consumer
//! intent.
//!
//! Every derived clause carries a *trivial resolution chain*: a base
//! clause plus a sequence of `(pivot variable, side clause)` steps,
//! replayed with set semantics — remove both phases of the pivot from the
//! running resolvent and the side clause, union the rest. Conflict
//! analysis records one chain per learnt clause (including the
//! clause-minimisation steps and the trailing resolutions against level-0
//! units); level-0 propagations, input-clause simplification and the
//! final empty clause get chains of their own, so an UNSAT answer without
//! assumptions always ends in a derivation of the empty clause.
//!
//! Clause lifetime mirrors the solver's arena: additions and deletions
//! are recorded as [`ProofEvent`]s in database order (what DRAT needs),
//! and the `CRef → ClauseId` bookkeeping survives in-place arena
//! compaction via [`ArenaRemap`] forwarding.

use std::collections::HashMap;

use crate::arena::{ArenaRemap, CRef};
use crate::types::{SatLit, SatVar};

/// How much resolution provenance the solver records.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum ProofMode {
    /// No proof logging (default): the hot path pays only a branch.
    #[default]
    Off,
    /// Log enough to emit a DRAT proof on an assumption-free UNSAT.
    Drat,
    /// Keep the full in-memory resolution trace (implies DRAT emission).
    Trace,
}

/// Index of a clause in the proof log (dense, allocation order — which is
/// also topological order of the resolution DAG).
pub type ClauseId = u32;

/// A database event, in the order the solver performed it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProofEvent {
    /// A derived clause entered the database (roots are not events).
    Add(ClauseId),
    /// A clause (root or derived) left the database.
    Delete(ClauseId),
}

/// One recorded clause: its literals, its partition label, and — for
/// derived clauses — the trivial resolution chain that produced it.
#[derive(Clone, Debug)]
struct ProofClause {
    lits: Vec<SatLit>,
    label: u32,
    chain: Option<Chain>,
}

#[derive(Clone, Debug)]
struct Chain {
    base: ClauseId,
    steps: Vec<(SatVar, ClauseId)>,
}

/// The resolution log attached to a [`crate::Solver`] when a
/// [`ProofMode`] other than `Off` is selected.
#[derive(Clone, Debug, Default)]
pub struct ProofLog {
    mode: ProofMode,
    clauses: Vec<ProofClause>,
    events: Vec<ProofEvent>,
    empty: Option<ClauseId>,
    /// Partition label stamped on clauses registered from now on
    /// (interpolation partitions A/B; 0 until told otherwise).
    label: u32,
    /// Live arena clause → proof clause. Entries are removed at deletion
    /// time (before compaction), so every key is a live `CRef`.
    cref: HashMap<u32, ClauseId>,
    /// Per-variable derivation of its current level-0 unit, recorded
    /// eagerly at enqueue time — level-0 *reasons* are nulled by the
    /// purges, so they cannot be consulted after the fact.
    unit: Vec<Option<ClauseId>>,
    /// Chain stashed by `analyze`, consumed when the learnt clause is
    /// attached (or enqueued, for unit learnts).
    pending: Option<Chain>,
}

impl ProofLog {
    pub(crate) fn new(mode: ProofMode) -> ProofLog {
        debug_assert_ne!(mode, ProofMode::Off);
        ProofLog {
            mode,
            ..ProofLog::default()
        }
    }

    /// The mode this log was created with.
    pub fn mode(&self) -> ProofMode {
        self.mode
    }

    /// Number of recorded clauses (roots and derived).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The literals of clause `id`.
    pub fn lits(&self, id: ClauseId) -> &[SatLit] {
        &self.clauses[id as usize].lits
    }

    /// Whether `id` is a root (input) clause, i.e. has no chain.
    pub fn is_root(&self, id: ClauseId) -> bool {
        self.clauses[id as usize].chain.is_none()
    }

    /// The partition label clause `id` was registered under.
    pub fn clause_label(&self, id: ClauseId) -> u32 {
        self.clauses[id as usize].label
    }

    /// The resolution chain of a derived clause: base clause and
    /// `(pivot, side clause)` steps. `None` for roots.
    pub fn chain(&self, id: ClauseId) -> Option<(ClauseId, &[(SatVar, ClauseId)])> {
        self.clauses[id as usize]
            .chain
            .as_ref()
            .map(|c| (c.base, c.steps.as_slice()))
    }

    /// The derived empty clause, once the database is proven UNSAT
    /// without assumptions.
    pub fn empty_id(&self) -> Option<ClauseId> {
        self.empty
    }

    /// Whether the log contains a derivation of the empty clause.
    pub fn unsat(&self) -> bool {
        self.empty.is_some()
    }

    /// The add/delete event stream, in database order.
    pub fn events(&self) -> &[ProofEvent] {
        &self.events
    }

    /// Sets the partition label stamped on subsequently registered
    /// clauses (interpolation tags the A/B sides this way).
    pub fn set_label(&mut self, label: u32) {
        self.label = label;
    }

    // ------------------------------------------------------------------
    // Producer surface (the solver).
    // ------------------------------------------------------------------

    pub(crate) fn register_root(&mut self, lits: &[SatLit]) -> ClauseId {
        let id = self.clauses.len() as ClauseId;
        self.clauses.push(ProofClause {
            lits: lits.to_vec(),
            label: self.label,
            chain: None,
        });
        id
    }

    pub(crate) fn register_derived(
        &mut self,
        lits: &[SatLit],
        base: ClauseId,
        steps: Vec<(SatVar, ClauseId)>,
    ) -> ClauseId {
        let id = self.clauses.len() as ClauseId;
        self.clauses.push(ProofClause {
            lits: lits.to_vec(),
            label: self.label,
            chain: Some(Chain { base, steps }),
        });
        self.events.push(ProofEvent::Add(id));
        id
    }

    pub(crate) fn set_empty(&mut self, id: ClauseId) {
        debug_assert!(self.clauses[id as usize].lits.is_empty());
        debug_assert!(self.empty.is_none(), "empty clause derived twice");
        self.empty = Some(id);
    }

    pub(crate) fn map_cref(&mut self, c: CRef, id: ClauseId) {
        let prev = self.cref.insert(c.0, id);
        debug_assert!(prev.is_none(), "arena slot registered twice");
    }

    pub(crate) fn cref_id(&self, c: CRef) -> ClauseId {
        *self.cref.get(&c.0).expect("live clause missing from proof")
    }

    /// Records the deletion of the clause at `c` and drops the arena
    /// mapping (must run before compaction invalidates the `CRef`).
    pub(crate) fn delete_cref(&mut self, c: CRef) {
        let id = self
            .cref
            .remove(&c.0)
            .expect("deleted clause missing from proof");
        self.events.push(ProofEvent::Delete(id));
    }

    /// Forwards every live `CRef` key across an arena compaction.
    pub(crate) fn remap(&mut self, remap: &ArenaRemap) {
        self.cref = std::mem::take(&mut self.cref)
            .into_iter()
            .map(|(off, id)| (remap.forward(CRef(off)).0, id))
            .collect();
    }

    pub(crate) fn set_unit(&mut self, v: SatVar, id: ClauseId) {
        if self.unit.len() <= v.index() {
            self.unit.resize(v.index() + 1, None);
        }
        self.unit[v.index()] = Some(id);
    }

    pub(crate) fn unit_id(&self, v: SatVar) -> ClauseId {
        self.unit
            .get(v.index())
            .copied()
            .flatten()
            .expect("level-0 assignment without a recorded unit derivation")
    }

    pub(crate) fn clear_unit(&mut self, v: SatVar) {
        if let Some(slot) = self.unit.get_mut(v.index()) {
            *slot = None;
        }
    }

    pub(crate) fn stash(&mut self, base: ClauseId, steps: Vec<(SatVar, ClauseId)>) {
        debug_assert!(self.pending.is_none(), "unconsumed analysis chain");
        self.pending = Some(Chain { base, steps });
    }

    pub(crate) fn take_stash_as(&mut self, lits: &[SatLit]) -> ClauseId {
        let chain = self.pending.take().expect("no stashed analysis chain");
        self.register_derived(lits, chain.base, chain.steps)
    }

    // ------------------------------------------------------------------
    // Consumers: replay, verification, DRAT emission.
    // ------------------------------------------------------------------

    /// Replays the chain of `id` with set semantics and returns the
    /// sorted resolvent.
    ///
    /// # Errors
    ///
    /// Reports a malformed chain: a pivot absent from either side or
    /// present with the same phase on both.
    pub fn replay(&self, id: ClauseId) -> Result<Vec<SatLit>, String> {
        let c = &self.clauses[id as usize];
        let mut cur: Vec<SatLit> = match &c.chain {
            None => c.lits.clone(),
            Some(chain) => {
                let mut cur = self.clauses[chain.base as usize].lits.clone();
                for &(pivot, side) in &chain.steps {
                    let here = cur.iter().find(|l| l.var() == pivot).copied();
                    let Some(here) = here else {
                        return Err(format!("clause {id}: pivot {pivot:?} not in resolvent"));
                    };
                    cur.retain(|l| l.var() != pivot);
                    let side_lits = &self.clauses[side as usize].lits;
                    if !side_lits.contains(&!here) {
                        return Err(format!("clause {id}: side clause {side} lacks {:?}", !here));
                    }
                    if side_lits.contains(&here) {
                        return Err(format!("clause {id}: pivot {pivot:?} same-phase"));
                    }
                    for &l in side_lits {
                        if l.var() != pivot && !cur.contains(&l) {
                            cur.push(l);
                        }
                    }
                }
                cur
            }
        };
        cur.sort_unstable();
        cur.dedup();
        Ok(cur)
    }

    /// Replays every derived clause and checks the resolvent matches the
    /// stored literals (and that the empty clause, if any, is empty).
    ///
    /// # Errors
    ///
    /// Reports the first clause whose chain does not replay to its
    /// stored literals.
    pub fn verify(&self) -> Result<(), String> {
        for id in 0..self.clauses.len() as ClauseId {
            if self.is_root(id) {
                continue;
            }
            let got = self.replay(id)?;
            let mut want = self.clauses[id as usize].lits.clone();
            want.sort_unstable();
            want.dedup();
            if got != want {
                return Err(format!(
                    "clause {id}: chain replays to {got:?}, stored {want:?}"
                ));
            }
        }
        Ok(())
    }

    /// Serialises the event stream as a DRAT proof, or `None` while no
    /// empty clause has been derived (a SAT answer, or UNSAT only under
    /// assumptions, certifies nothing).
    pub fn to_drat(&self) -> Option<String> {
        self.empty?;
        let mut out = String::new();
        for &ev in &self.events {
            let (prefix, id) = match ev {
                ProofEvent::Add(id) => ("", id),
                ProofEvent::Delete(id) => ("d ", id),
            };
            out.push_str(prefix);
            for &l in &self.clauses[id as usize].lits {
                let n = l.var().index() as i64 + 1;
                let n = if l.is_negative() { -n } else { n };
                out.push_str(&format!("{n} "));
            }
            out.push_str("0\n");
            if ProofEvent::Add(id) == ev && self.empty == Some(id) {
                break;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use crate::types::SatResult;

    fn php(s: &mut Solver, p: usize, h: usize) {
        let v: Vec<Vec<SatVar>> = (0..p)
            .map(|_| (0..h).map(|_| s.new_var()).collect())
            .collect();
        for row in &v {
            let clause: Vec<SatLit> = row.iter().map(|x| x.pos()).collect();
            s.add_clause(&clause);
        }
        for (i1, row1) in v.iter().enumerate() {
            for row2 in &v[i1 + 1..] {
                for (a, b) in row1.iter().zip(row2) {
                    s.add_clause(&[a.neg(), b.neg()]);
                }
            }
        }
    }

    #[test]
    fn trace_ends_in_empty_clause_and_replays() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        php(&mut s, 4, 3);
        assert_eq!(s.solve(), SatResult::Unsat);
        let p = s.proof().expect("trace mode keeps the log");
        assert!(p.unsat());
        assert!(p.lits(p.empty_id().unwrap()).is_empty());
        p.verify().expect("every chain must replay");
    }

    #[test]
    fn deletions_survive_reduce_and_purge() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        s.force_reduce_db_for_tests();
        php(&mut s, 7, 6);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().reduces > 0, "reduce-DB never ran");
        let p = s.proof().unwrap();
        assert!(
            p.events()
                .iter()
                .any(|e| matches!(e, ProofEvent::Delete(_))),
            "no deletion events recorded"
        );
        p.verify().expect("chains must survive compaction");
    }

    #[test]
    fn level0_simplification_is_derived() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.pos()]);
        // `!a` is dropped at add time: the stored clause is derived.
        s.add_clause(&[a.neg(), b.pos(), c.pos()]);
        s.add_clause(&[b.neg()]);
        s.add_clause(&[c.neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
        let p = s.proof().unwrap();
        assert!(p.unsat());
        p.verify().unwrap();
    }

    #[test]
    fn sat_answers_certify_nothing() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Drat);
        let a = s.new_var();
        s.add_clause(&[a.pos()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.proof().unwrap().unsat());
        assert_eq!(s.drat_proof(), None);
    }

    #[test]
    fn unsat_under_assumptions_only_is_not_certified() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.pos(), b.pos()]);
        assert_eq!(s.solve_with(&[a.neg(), b.neg()]), SatResult::Unsat);
        assert!(!s.proof().unwrap().unsat());
        assert_eq!(s.drat_proof(), None);
        // The database itself stays satisfiable.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn labels_stamp_registration_order() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Trace);
        let a = s.new_var();
        let b = s.new_var();
        s.set_proof_label(1);
        s.add_clause(&[a.pos(), b.pos()]);
        s.set_proof_label(2);
        s.add_clause(&[a.neg(), b.pos()]);
        let p = s.proof().unwrap();
        assert_eq!(p.clause_label(0), 1);
        assert_eq!(p.clause_label(1), 2);
    }

    #[test]
    fn proof_mode_off_keeps_no_log() {
        let mut s = Solver::new();
        s.set_proof_mode(ProofMode::Off);
        let a = s.new_var();
        s.add_clause(&[a.pos()]);
        s.add_clause(&[a.neg()]);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.proof().is_none());
        assert_eq!(s.drat_proof(), None);
    }
}
