//! Content-addressed result cache keyed by structural AIG hashes.
//!
//! Three tiers, from strongest to weakest reuse:
//!
//! 1. **Whole-run memoization** — the full model structure (every δ cone,
//!    the bad cone, latch/input bindings, reset values) plus the engine
//!    name maps to a finished [`McRun`]. Only *conclusive* verdicts are
//!    stored: `Safe`/`Unsafe` are budget-independent facts about the
//!    model, so replaying one under any later budget is sound (and
//!    strictly more informative than re-running with a tight budget).
//! 2. **Depth-0 sub-query memoization** — when a run refutes the property
//!    in the initial state (`cex_depth == 0`), the verdict depends only
//!    on the reset assignment and the bad cone; the δ cones never
//!    participate. The run is re-keyed without them, so a near-duplicate
//!    model that rewired its transition logic but kept the same failing
//!    property still hits. Keys include the engine name because the
//!    replayed record must match what *that* engine's cold run would
//!    report (iteration counting differs across engines).
//! 3. **Warm-start seeding** — an IC3 run's exported frame lemmas are
//!    keyed by the δ cones and reset values alone (no bad cone, no
//!    engine). A structurally perturbed property over the same
//!    transition structure replays the lemmas as [`cbq_mc::Ic3::seed`]
//!    candidates; the engine re-validates each one, so a colliding or
//!    stale entry costs wasted queries, never a wrong verdict.
//!
//! All keys are FNV-1a combinations of [`cbq_aig::Aig::cone_hash_many`]
//! digests with the latch/input ordinal bindings, so they are independent
//! of node numbering, dead logic, and construction order.

use std::collections::HashMap;

use cbq_ckt::Network;
use cbq_mc::McRun;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

fn mix_str(base: u64, s: &str) -> u64 {
    let mut h = base;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The structural digests of one model, computed once per request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ModelKey {
    /// Full structure: δ cones + bad cone + bindings. Tier-1 base.
    pub full: u64,
    /// Bad cone + bindings only (no δ cones). Tier-2 base.
    pub bad_only: u64,
    /// δ cones + bindings only (no bad cone). Tier-3 base.
    pub delta_only: u64,
}

impl ModelKey {
    /// Digests `net`'s structure. Node numbering and dead logic do not
    /// affect the result; latch order, input-ordinal bindings, reset
    /// values, and cone shapes all do.
    pub fn of(net: &Network) -> ModelKey {
        let aig = net.aig();
        let deltas: Vec<_> = net.latches().iter().map(|l| l.next).collect();
        let mut all = deltas.clone();
        all.push(net.bad());
        // The binding words pin down which input ordinal is latch i's
        // state variable (and its reset value) and which ordinals are
        // free inputs — cone hashes alone see ordinals only where they
        // appear inside a cone.
        let mut bindings: Vec<u64> = vec![net.num_latches() as u64, net.num_inputs() as u64];
        for l in net.latches() {
            let ord = aig.input_index(l.var).expect("latch is an input") as u64;
            bindings.push(ord * 2 + u64::from(l.init));
        }
        for v in net.primary_inputs() {
            bindings.push(aig.input_index(*v).expect("PI is an input") as u64);
        }
        let keyed = |cone: u64| fnv(std::iter::once(cone).chain(bindings.iter().copied()));
        ModelKey {
            full: keyed(aig.cone_hash_many(&all)),
            bad_only: keyed(aig.cone_hash(net.bad())),
            delta_only: keyed(aig.cone_hash_many(&deltas)),
        }
    }
}

/// Which cache tier answered (0 = cold run).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum CacheTier {
    /// No tier applied; the engine ran cold.
    #[default]
    Miss,
    /// Tier 1: whole-run verdict replay.
    WholeRun,
    /// Tier 2: depth-0 sub-query replay.
    Depth0,
    /// Tier 3: IC3 warm start from cached lemmas.
    WarmStart,
}

impl CacheTier {
    /// The tier number as reported on the wire (0 for a miss).
    pub fn number(self) -> u8 {
        match self {
            CacheTier::Miss => 0,
            CacheTier::WholeRun => 1,
            CacheTier::Depth0 => 2,
            CacheTier::WarmStart => 3,
        }
    }
}

/// Hit/miss counters, reported as JSON in every result record.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Cache consultations (one per cached check request).
    pub lookups: u64,
    /// Tier-1 whole-run hits.
    pub tier1_hits: u64,
    /// Tier-2 depth-0 hits.
    pub tier2_hits: u64,
    /// Tier-3 warm-start hits (lemma sets handed to IC3).
    pub tier3_hits: u64,
    /// Lookups no tier could serve.
    pub misses: u64,
    /// Conclusive runs stored (tier-1 entries written).
    pub runs_cached: u64,
    /// Lemma sets stored (tier-3 entries written).
    pub lemma_sets_cached: u64,
}

impl CacheStats {
    /// Renders the counters as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lookups\":{},\"tier1_hits\":{},\"tier2_hits\":{},\"tier3_hits\":{},\
             \"misses\":{},\"runs_cached\":{},\"lemma_sets_cached\":{}}}",
            self.lookups,
            self.tier1_hits,
            self.tier2_hits,
            self.tier3_hits,
            self.misses,
            self.runs_cached,
            self.lemma_sets_cached,
        )
    }
}

/// The three-tier structural cache (see the module docs for the soundness
/// argument behind each tier).
#[derive(Default)]
pub struct StructuralCache {
    whole_runs: HashMap<u64, McRun>,
    depth0_runs: HashMap<u64, McRun>,
    lemma_sets: HashMap<u64, Vec<Vec<(usize, bool)>>>,
    /// Counters, readable by the `stats` protocol command.
    pub stats: CacheStats,
}

impl StructuralCache {
    /// An empty cache.
    pub fn new() -> StructuralCache {
        StructuralCache::default()
    }

    /// Tier-1/2 lookup: a finished run for this exact model (tier 1) or
    /// for its initial-state refutation (tier 2), under `engine`.
    /// Counts the lookup; a `None` here does *not* yet count as a miss —
    /// [`StructuralCache::seed_for`] gets the final say.
    pub fn lookup_run(&mut self, key: &ModelKey, engine: &str) -> Option<(McRun, CacheTier)> {
        self.stats.lookups += 1;
        if let Some(run) = self.whole_runs.get(&mix_str(key.full, engine)) {
            self.stats.tier1_hits += 1;
            return Some((run.clone(), CacheTier::WholeRun));
        }
        if let Some(run) = self.depth0_runs.get(&mix_str(key.bad_only, engine)) {
            self.stats.tier2_hits += 1;
            return Some((run.clone(), CacheTier::Depth0));
        }
        None
    }

    /// Tier-3 lookup: lemmas proved over the same transition structure,
    /// usable as IC3 warm-start candidates. Counts a tier-3 hit when
    /// found, a miss otherwise — call only after
    /// [`StructuralCache::lookup_run`] returned `None`.
    pub fn seed_for(&mut self, key: &ModelKey, engine: &str) -> Option<Vec<Vec<(usize, bool)>>> {
        if engine == "ic3" {
            if let Some(lemmas) = self.lemma_sets.get(&key.delta_only) {
                if !lemmas.is_empty() {
                    self.stats.tier3_hits += 1;
                    return Some(lemmas.clone());
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Stores what a finished run teaches: the run itself when the
    /// verdict is conclusive (tier 1), its depth-0 refutation re-keyed
    /// without the δ cones when applicable (tier 2), and any exported
    /// IC3 frame lemmas (tier 3).
    pub fn record(&mut self, key: &ModelKey, engine: &str, run: &McRun) {
        if run.verdict.is_conclusive() {
            // Strip the job tag: cached entries are request-independent;
            // replays re-tag with the requesting job's id.
            let entry = run.clone().with_job(0);
            if let Some(trace) = run.verdict.trace() {
                if trace.len() == 1 {
                    self.depth0_runs
                        .insert(mix_str(key.bad_only, engine), entry.clone());
                }
            }
            if self
                .whole_runs
                .insert(mix_str(key.full, engine), entry)
                .is_none()
            {
                self.stats.runs_cached += 1;
            }
        }
        if engine == "ic3" {
            if let Some(detail) = run.detail::<cbq_mc::Ic3Stats>() {
                if !detail.lemmas.is_empty()
                    && self
                        .lemma_sets
                        .insert(key.delta_only, detail.lemmas.clone())
                        .is_none()
                {
                    self.stats.lemma_sets_cached += 1;
                }
            }
        }
    }

    /// Number of tier-1 entries currently stored.
    pub fn len(&self) -> usize {
        self.whole_runs.len()
    }

    /// Whether no tier holds any entry.
    pub fn is_empty(&self) -> bool {
        self.whole_runs.is_empty() && self.depth0_runs.is_empty() && self.lemma_sets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;
    use cbq_mc::{Budget, Engine, Ic3};

    #[test]
    fn key_is_structural_not_nominal() {
        // Same circuit built twice (generator is deterministic).
        let a = ModelKey::of(&generators::token_ring(4));
        let b = ModelKey::of(&generators::token_ring(4));
        assert_eq!(a, b);
        // A different model differs in every component.
        let c = ModelKey::of(&generators::mutex());
        assert_ne!(a.full, c.full);
        assert_ne!(a.bad_only, c.bad_only);
        assert_ne!(a.delta_only, c.delta_only);
    }

    #[test]
    fn dead_logic_does_not_perturb_the_key() {
        let clean = generators::bounded_counter(4, 9);
        let mut noisy = generators::bounded_counter(4, 9);
        {
            // Dead nodes shift raw AIG indices but stay outside every
            // cone — and an unregistered AIG input is not a PI binding.
            let aig = noisy.aig_mut();
            let x = aig.add_input().lit();
            let _dead = aig.and(x, !x);
        }
        assert_eq!(ModelKey::of(&clean), ModelKey::of(&noisy));
    }

    #[test]
    fn property_perturbation_moves_full_but_not_delta() {
        let base = generators::token_ring(4);
        let mut variant = generators::token_ring(4);
        let strengthened = {
            let bad = variant.bad();
            let guard = variant.latches()[0].var.lit();
            variant.aig_mut().and(bad, guard)
        };
        variant.set_bad(strengthened);
        let kb = ModelKey::of(&base);
        let kv = ModelKey::of(&variant);
        assert_ne!(kb.full, kv.full, "bad cone changed");
        assert_ne!(kb.bad_only, kv.bad_only);
        assert_eq!(kb.delta_only, kv.delta_only, "transition structure kept");
    }

    #[test]
    fn whole_run_round_trips_with_tiers() {
        // The gap model converges deep enough for IC3 to export lemmas.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let key = ModelKey::of(&net);
        let mut cache = StructuralCache::new();
        assert!(cache.lookup_run(&key, "ic3").is_none());
        assert!(cache.seed_for(&key, "ic3").is_none());

        let run = Ic3::default().check(&net, &Budget::unlimited());
        assert!(run.verdict.is_safe());
        cache.record(&key, "ic3", &run);
        assert_eq!(cache.stats.runs_cached, 1);
        assert_eq!(cache.stats.lemma_sets_cached, 1);

        let (hit, tier) = cache.lookup_run(&key, "ic3").expect("tier-1 hit");
        assert_eq!(tier, CacheTier::WholeRun);
        assert_eq!(hit.verdict, run.verdict);
        // Engine-keyed: a different engine does not see the entry...
        assert!(cache.lookup_run(&key, "bmc").is_none());
        // ...but the engine-free lemma tier still serves IC3 under a
        // perturbed property (simulated here by asking for seeds only).
        assert!(cache.seed_for(&key, "ic3").is_some());
        assert!(cache.seed_for(&key, "bmc").is_none(), "ic3-only tier");
        assert_eq!(cache.stats.lookups, 3);
        assert_eq!(cache.stats.tier1_hits, 1);
        assert_eq!(cache.stats.tier3_hits, 1);
        assert_eq!(cache.stats.misses, 2);
        let json = cache.stats.to_json();
        assert!(json.contains("\"tier1_hits\":1"), "{json}");
    }

    /// A one-latch net failing in its initial state; `delta` picks the
    /// next-state function so variants share the bad cone but not the
    /// transition structure.
    fn depth0_bug(hold: bool) -> cbq_ckt::Network {
        let mut b = cbq_ckt::Network::builder("depth0");
        let s = b.add_latch(true);
        let next = if hold { s.lit() } else { !s.lit() };
        b.set_next(s, next);
        b.build(s.lit())
    }

    #[test]
    fn depth0_refutations_survive_delta_rewiring() {
        let net = depth0_bug(true);
        let run = cbq_mc::by_name("bmc")
            .expect("bmc")
            .check(&net, &Budget::unlimited());
        let trace = run.verdict.trace().expect("fails at reset");
        assert_eq!(trace.len(), 1, "fails at depth 0");

        let mut cache = StructuralCache::new();
        cache.record(&ModelKey::of(&net), "bmc", &run);

        let rewired = depth0_bug(false);
        let k2 = ModelKey::of(&rewired);
        assert_ne!(ModelKey::of(&net).full, k2.full, "δ cone changed");
        let (hit, tier) = cache.lookup_run(&k2, "bmc").expect("tier-2 hit");
        assert_eq!(tier, CacheTier::Depth0);
        assert_eq!(hit.verdict, run.verdict);
        assert!(cache.lookup_run(&k2, "kind").is_none(), "engine-keyed");
    }

    #[test]
    fn inconclusive_runs_are_not_cached() {
        let net = generators::token_ring(6);
        let key = ModelKey::of(&net);
        let mut cache = StructuralCache::new();
        let run = Ic3::default().check(&net, &Budget::unlimited().with_sat_checks(1));
        assert!(!run.verdict.is_conclusive());
        cache.record(&key, "ic3", &run);
        assert_eq!(cache.len(), 0);
        assert!(cache.lookup_run(&key, "ic3").is_none());
    }

    #[test]
    fn bindings_discriminate_reset_values() {
        let k1 = ModelKey::of(&generators::bounded_counter(4, 9));
        // Flip one latch's reset bit through the aag round-trip (latch
        // lines precede AND lines, so the first ` 0\n` is latch 0's
        // init field).
        let text = cbq_ckt::io::write_network(&generators::bounded_counter(4, 9));
        let flipped = text.replacen(" 0\n", " 1\n", 1);
        assert_ne!(flipped, text, "expected an init-0 latch line");
        let net2 = cbq_ckt::io::read_network(&flipped, "flipped").unwrap();
        let k2 = ModelKey::of(&net2);
        assert_ne!(k1.full, k2.full, "init bit must enter the key");
    }
}
