//! Cubes (partial assignments) over AIG variables.

use std::fmt;

use crate::aig::Aig;
use crate::lit::{Lit, Var};

/// A conjunction of literals over input variables — a partial assignment.
///
/// Used for initial-state sets, blocking cubes in all-solutions SAT
/// enumeration, and counterexample steps.
///
/// ```
/// use cbq_aig::{Aig, Cube};
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let cube = Cube::new(vec![a.lit(), !b.lit()]);
/// let f = cube.to_lit(&mut aig);
/// assert!(aig.eval(f, &[true, false]));
/// assert!(!aig.eval(f, &[true, true]));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// Creates a cube from literals, sorting and deduplicating them.
    ///
    /// # Panics
    ///
    /// Panics if the cube is contradictory (contains both `l` and `!l`) or
    /// mentions the constant.
    pub fn new(mut lits: Vec<Lit>) -> Cube {
        lits.sort_unstable();
        lits.dedup();
        for pair in lits.windows(2) {
            assert!(
                pair[0].var() != pair[1].var(),
                "contradictory cube on {:?}",
                pair[0].var()
            );
        }
        assert!(
            lits.iter().all(|l| !l.is_const()),
            "constant literal in cube"
        );
        Cube { lits }
    }

    /// The empty cube (constant true).
    pub fn empty() -> Cube {
        Cube::default()
    }

    /// The literals of this cube in sorted order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the cube is empty (constant true).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// The phase this cube requires of `v`, if constrained.
    pub fn phase(&self, v: Var) -> Option<bool> {
        self.lits
            .iter()
            .find(|l| l.var() == v)
            .map(|l| !l.is_complemented())
    }

    /// Conjunction of the cube's literals as an AIG literal.
    pub fn to_lit(&self, aig: &mut Aig) -> Lit {
        aig.and_many(&self.lits)
    }

    /// Whether `assignment` (indexed by input ordinal) satisfies the cube.
    pub fn matches(&self, aig: &Aig, assignment: &[bool]) -> bool {
        self.lits.iter().all(|l| {
            let idx = aig
                .input_index(l.var())
                .expect("cube literal on non-input variable");
            assignment[idx] != l.is_complemented()
        })
    }
}

impl FromIterator<Lit> for Cube {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Cube {
        Cube::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊤");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A complete assignment to the inputs of an AIG, by input ordinal.
///
/// Thin wrapper used when replaying counterexample traces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// Creates an assignment from per-input values.
    pub fn new(values: Vec<bool>) -> Assignment {
        Assignment { values }
    }

    /// All-false assignment for `n` inputs.
    pub fn zeros(n: usize) -> Assignment {
        Assignment {
            values: vec![false; n],
        }
    }

    /// The value of input ordinal `i`.
    pub fn get(&self, i: usize) -> bool {
        self.values[i]
    }

    /// Sets the value of input ordinal `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        self.values[i] = v;
    }

    /// The underlying values, indexed by input ordinal.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Number of inputs covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers zero inputs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl From<Vec<bool>> for Assignment {
    fn from(values: Vec<bool>) -> Assignment {
        Assignment::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_sorts_and_dedups() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = Cube::new(vec![b.lit(), a.lit(), b.lit()]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lits()[0].var(), a);
    }

    #[test]
    #[should_panic(expected = "contradictory")]
    fn contradictory_cube_panics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let _ = Cube::new(vec![a.lit(), !a.lit()]);
    }

    #[test]
    fn cube_phase_and_match() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = Cube::new(vec![a.lit(), !b.lit()]);
        assert_eq!(c.phase(a), Some(true));
        assert_eq!(c.phase(b), Some(false));
        assert!(c.matches(&aig, &[true, false]));
        assert!(!c.matches(&aig, &[false, false]));
    }

    #[test]
    fn empty_cube_is_true() {
        let mut aig = Aig::new();
        let c = Cube::empty();
        assert!(c.is_empty());
        assert_eq!(c.to_lit(&mut aig), Lit::TRUE);
        assert_eq!(format!("{c}"), "⊤");
    }

    #[test]
    fn assignment_roundtrip() {
        let mut asg = Assignment::zeros(3);
        asg.set(1, true);
        assert!(!asg.get(0));
        assert!(asg.get(1));
        assert_eq!(asg.values(), &[false, true, false]);
        assert_eq!(asg.len(), 3);
    }
}
