//! The append-only, structurally hashed AIG manager.

use std::collections::HashMap;
use std::fmt;

use crate::lit::{Lit, Var};
use crate::node::Node;

/// An And-Inverter Graph manager.
///
/// Nodes are append-only and structurally hashed: calling [`Aig::and`] with
/// fanins that already name an existing gate returns the existing literal.
/// One- and two-level simplification rules are applied on construction, so
/// the graph is *semi-canonical*: many (but not all) syntactically different
/// formulas map to the same node, which is the zero-cost first tier of the
/// paper's merge phase.
///
/// ```
/// use cbq_aig::{Aig, Lit};
/// let mut aig = Aig::new();
/// let a = aig.add_input().lit();
/// let b = aig.add_input().lit();
/// let f = aig.and(a, b);
/// let g = aig.and(b, a); // structural hashing: same node
/// assert_eq!(f, g);
/// assert_eq!(aig.and(a, !a), Lit::FALSE);
/// ```
#[derive(Clone)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), Var>,
    inputs: Vec<Var>,
    level: Vec<u32>,
}

impl Default for Aig {
    fn default() -> Self {
        Self::new()
    }
}

impl Aig {
    /// Creates an empty manager containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            inputs: Vec::new(),
            level: vec![0],
        }
    }

    /// Creates an empty manager with `n` inputs already added.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let aig = Aig::with_inputs(8);
    /// assert_eq!(aig.num_inputs(), 8);
    /// ```
    pub fn with_inputs(n: usize) -> Aig {
        let mut aig = Aig::new();
        for _ in 0..n {
            aig.add_input();
        }
        aig
    }

    /// Adds a fresh primary input and returns its variable.
    pub fn add_input(&mut self) -> Var {
        let var = Var::from_index(self.nodes.len());
        let index = u32::try_from(self.inputs.len()).expect("too many inputs");
        self.nodes.push(Node::Input { index });
        self.level.push(0);
        self.inputs.push(var);
        var
    }

    /// The inputs of this AIG, in creation order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The variable of the `index`-th input.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_inputs()`.
    pub fn input_var(&self, index: usize) -> Var {
        self.inputs[index]
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Total number of nodes (constant + inputs + AND gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// The node a variable refers to.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a node of this manager.
    pub fn node(&self, var: Var) -> Node {
        self.nodes[var.index()]
    }

    /// All nodes, indexable by [`Var::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Structural level (depth) of a node: 0 for constants/inputs,
    /// `1 + max(level(fanins))` for AND gates.
    pub fn node_level(&self, var: Var) -> u32 {
        self.level[var.index()]
    }

    /// Whether `var` names a primary input.
    pub fn is_input(&self, var: Var) -> bool {
        self.nodes[var.index()].is_input()
    }

    /// If `var` is an input, its ordinal among the inputs.
    pub fn input_index(&self, var: Var) -> Option<usize> {
        match self.nodes[var.index()] {
            Node::Input { index } => Some(index as usize),
            _ => None,
        }
    }

    fn try_two_level(&mut self, a: Lit, b: Lit) -> Option<Lit> {
        // Two-level local rewriting rules (Brummayer & Biere style, safe
        // subset). `a`/`b` are already non-constant and distinct vars.
        let fan = |aig: &Aig, l: Lit| aig.nodes[l.var().index()].fanins();
        if let Some((x, y)) = fan(self, a) {
            if !a.is_complemented() {
                // Contradiction: (x & y) & !x == 0.
                if b == !x || b == !y {
                    return Some(Lit::FALSE);
                }
                // Idempotence/subsumption: (x & y) & x == x & y.
                if b == x || b == y {
                    return Some(a);
                }
            } else {
                // Substitution: !(x & y) & x == x & !y.
                if b == x {
                    return Some(self.and(x, !y));
                }
                if b == y {
                    return Some(self.and(y, !x));
                }
            }
        }
        if let Some((u, v)) = fan(self, b) {
            if !b.is_complemented() {
                if a == !u || a == !v {
                    return Some(Lit::FALSE);
                }
                if a == u || a == v {
                    return Some(b);
                }
            } else {
                if a == u {
                    return Some(self.and(u, !v));
                }
                if a == v {
                    return Some(self.and(v, !u));
                }
            }
        }
        // Both positive ANDs sharing a complemented fanin: contradiction.
        if !a.is_complemented() && !b.is_complemented() {
            if let (Some((x, y)), Some((u, v))) = (fan(self, a), fan(self, b)) {
                if x == !u || x == !v || y == !u || y == !v {
                    return Some(Lit::FALSE);
                }
            }
        }
        None
    }

    /// Conjunction of two literals, with structural hashing and local
    /// simplification.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // One-level rules.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        if let Some(res) = self.try_two_level(a, b) {
            return res;
        }
        // Normalise fanin order for semi-canonicity: f0 >= f1.
        let (f0, f1) = if a.code() >= b.code() { (a, b) } else { (b, a) };
        if let Some(&var) = self.strash.get(&(f0, f1)) {
            return var.lit();
        }
        let var = Var::from_index(self.nodes.len());
        self.nodes.push(Node::And { f0, f1 });
        let lvl = 1 + self.level[f0.var().index()].max(self.level[f1.var().index()]);
        self.level.push(lvl);
        self.strash.insert((f0, f1), var);
        var.lit()
    }

    /// Disjunction of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Exclusive or of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(a, !b);
        let p = self.and(!a, b);
        self.or(n, p)
    }

    /// Equivalence (XNOR) of two literals.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// If-then-else multiplexer `c ? t : e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if t == e {
            return t;
        }
        let pt = self.and(c, t);
        let pe = self.and(!c, e);
        self.or(pt, pe)
    }

    /// Conjunction of many literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Aig::and)
    }

    /// Disjunction of many literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::or)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        mut op: impl FnMut(&mut Aig, Lit, Lit) -> Lit + Copy,
    ) -> Lit {
        match lits.len() {
            0 => unit,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let l = self.reduce_balanced(lo, unit, op);
                let r = self.reduce_balanced(hi, unit, op);
                op(self, l, r)
            }
        }
    }

    /// Evaluates `root` under a complete input assignment (indexed by input
    /// ordinal).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_inputs()`.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let a = aig.add_input().lit();
    /// let b = aig.add_input().lit();
    /// let f = aig.xor(a, b);
    /// assert!(aig.eval(f, &[true, false]));
    /// assert!(!aig.eval(f, &[true, true]));
    /// ```
    pub fn eval(&self, root: Lit, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_inputs(),
            "assignment covers {} of {} inputs",
            assignment.len(),
            self.num_inputs()
        );
        let cone = self.collect_cone(&[root]);
        let mut val: HashMap<Var, bool> = HashMap::with_capacity(cone.len());
        for var in cone {
            let v = match self.nodes[var.index()] {
                Node::Const => false,
                Node::Input { index } => assignment[index as usize],
                Node::And { f0, f1 } => {
                    let a = val[&f0.var()] ^ f0.is_complemented();
                    let b = val[&f1.var()] ^ f1.is_complemented();
                    a && b
                }
            };
            val.insert(var, v);
        }
        val[&root.var()] ^ root.is_complemented()
    }

    /// Simultaneously substitutes variables by literals in the cone of `f`.
    ///
    /// This is the paper's *quantification by substitution (in-lining)*:
    /// `∃y.(y ≡ δ) ∧ P(y)` becomes `P(δ)`, i.e. `compose(P, [(y, δ)])`.
    /// Substitution is simultaneous: mapped-in literals are **not**
    /// re-substituted.
    ///
    /// ```
    /// use cbq_aig::Aig;
    /// let mut aig = Aig::new();
    /// let x = aig.add_input();
    /// let y = aig.add_input();
    /// let f = aig.and(x.lit(), y.lit());
    /// let g = aig.compose(f, &[(y, !x.lit())]);
    /// assert_eq!(g, cbq_aig::Lit::FALSE);
    /// ```
    pub fn compose(&mut self, f: Lit, map: &[(Var, Lit)]) -> Lit {
        if map.is_empty() {
            return f;
        }
        let subst: HashMap<Var, Lit> = map.iter().copied().collect();
        let cone = self.collect_cone(&[f]);
        let mut memo: HashMap<Var, Lit> = HashMap::with_capacity(cone.len());
        for var in cone {
            let new = match self.nodes[var.index()] {
                Node::Const => Lit::FALSE,
                Node::Input { .. } => subst.get(&var).copied().unwrap_or_else(|| var.lit()),
                Node::And { f0, f1 } => {
                    let a = memo[&f0.var()].xor_sign(f0.is_complemented());
                    let b = memo[&f1.var()].xor_sign(f1.is_complemented());
                    self.and(a, b)
                }
            };
            // Non-input nodes can also be substitution targets (used by
            // node-merge transformations), taking precedence over rebuild.
            let new = subst.get(&var).copied().unwrap_or(new);
            memo.insert(var, new);
        }
        memo[&f.var()].xor_sign(f.is_complemented())
    }

    /// The positive or negative cofactor of `f` with respect to `v`.
    ///
    /// ```
    /// use cbq_aig::{Aig, Lit};
    /// let mut aig = Aig::new();
    /// let a = aig.add_input();
    /// let b = aig.add_input();
    /// let f = aig.and(a.lit(), b.lit());
    /// assert_eq!(aig.cofactor(f, a, true), b.lit());
    /// assert_eq!(aig.cofactor(f, a, false), Lit::FALSE);
    /// ```
    pub fn cofactor(&mut self, f: Lit, v: Var, value: bool) -> Lit {
        let constant = if value { Lit::TRUE } else { Lit::FALSE };
        self.compose(f, &[(v, constant)])
    }

    /// Both cofactors `(f|v=1, f|v=0)` of `f` with respect to `v`.
    pub fn cofactors(&mut self, f: Lit, v: Var) -> (Lit, Lit) {
        (self.cofactor(f, v, true), self.cofactor(f, v, false))
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ inputs: {}, ands: {} }}",
            self.num_inputs(),
            self.num_ands()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inputs() -> (Aig, Lit, Lit) {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let b = aig.add_input().lit();
        (aig, a, b)
    }

    #[test]
    fn one_level_rules() {
        let (mut aig, a, b) = two_inputs();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, b), b);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let (mut aig, a, b) = two_inputs();
        let f = aig.and(a, b);
        let g = aig.and(b, a);
        assert_eq!(f, g);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn two_level_contradiction_and_subsumption() {
        let (mut aig, a, b) = two_inputs();
        let ab = aig.and(a, b);
        assert_eq!(aig.and(ab, !a), Lit::FALSE);
        assert_eq!(aig.and(ab, a), ab);
        // Substitution: !(a&b) & a == a & !b.
        let expect = aig.and(a, !b);
        assert_eq!(aig.and(!ab, a), expect);
    }

    #[test]
    fn two_positive_ands_contradict() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let nac = aig.and(!a, c);
        assert_eq!(aig.and(ab, nac), Lit::FALSE);
    }

    #[test]
    fn derived_gates_truth_tables() {
        let (mut aig, a, b) = two_inputs();
        let x = aig.xor(a, b);
        let o = aig.or(a, b);
        let i = aig.iff(a, b);
        let imp = aig.implies(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let asg = [va, vb];
            assert_eq!(aig.eval(x, &asg), va ^ vb);
            assert_eq!(aig.eval(o, &asg), va || vb);
            assert_eq!(aig.eval(i, &asg), va == vb);
            assert_eq!(aig.eval(imp, &asg), !va || vb);
        }
    }

    #[test]
    fn ite_truth_table() {
        let mut aig = Aig::new();
        let c = aig.add_input().lit();
        let t = aig.add_input().lit();
        let e = aig.add_input().lit();
        let f = aig.ite(c, t, e);
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            let expect = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(aig.eval(f, &asg), expect);
        }
    }

    #[test]
    fn many_input_reduction() {
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..7).map(|_| aig.add_input().lit()).collect();
        let all = aig.and_many(&lits);
        let any = aig.or_many(&lits);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        let all_true = vec![true; 7];
        let mut one_false = all_true.clone();
        one_false[3] = false;
        assert!(aig.eval(all, &all_true));
        assert!(!aig.eval(all, &one_false));
        assert!(aig.eval(any, &one_false));
        assert!(!aig.eval(any, &[false; 7]));
    }

    #[test]
    fn cofactor_shannon_expansion() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let f = {
            let t = aig.and(a, b);
            let e = aig.xor(b, c);
            aig.or(t, e)
        };
        let (f1, f0) = aig.cofactors(f, a.var());
        let shannon = {
            let hi = aig.and(a, f1);
            let lo = aig.and(!a, f0);
            aig.or(hi, lo)
        };
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(aig.eval(f, &asg), aig.eval(shannon, &asg));
        }
    }

    #[test]
    fn compose_is_simultaneous() {
        let mut aig = Aig::new();
        let x = aig.add_input();
        let y = aig.add_input();
        let f = aig.xor(x.lit(), y.lit());
        // Swap x and y simultaneously: xor is symmetric, result unchanged.
        let g = aig.compose(f, &[(x, y.lit()), (y, x.lit())]);
        assert_eq!(f, g);
    }

    #[test]
    fn compose_on_internal_node() {
        let (mut aig, a, b) = two_inputs();
        let c = aig.add_input().lit();
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        // Replace the internal node (a & b) by constant true.
        let g = aig.compose(f, &[(ab.var(), Lit::TRUE)]);
        assert_eq!(g, Lit::TRUE);
    }

    #[test]
    fn levels_track_depth() {
        let (mut aig, a, b) = two_inputs();
        let ab = aig.and(a, b);
        let c = aig.add_input().lit();
        let abc = aig.and(ab, c);
        assert_eq!(aig.node_level(a.var()), 0);
        assert_eq!(aig.node_level(ab.var()), 1);
        assert_eq!(aig.node_level(abc.var()), 2);
    }
}
