//! DIMACS CNF reading and writing (used by tests and tooling).

use std::error::Error;
use std::fmt;

use crate::proof::ProofMode;
use crate::solver::Solver;
use crate::types::{SatLit, SatVar};

/// A CNF formula in memory: clause list over 0-based variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<SatLit>>,
}

impl Cnf {
    /// Loads this CNF into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        self.to_solver_with_proof(ProofMode::Off)
    }

    /// Loads this CNF into a fresh solver with the given proof mode
    /// (selected before any clause, as the proof plane requires).
    pub fn to_solver_with_proof(&self, mode: ProofMode) -> Solver {
        let mut s = Solver::new();
        s.set_proof_mode(mode);
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// Error parsing a DIMACS file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error: {}", self.message)
    }
}

impl Error for ParseDimacsError {}

fn err(message: impl Into<String>) -> ParseDimacsError {
    ParseDimacsError {
        message: message.into(),
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on missing/invalid headers or literals out
/// of the declared range.
///
/// ```
/// use cbq_sat::dimacs::parse_dimacs;
/// let cnf = parse_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), cbq_sat::dimacs::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<SatLit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(err("header must be `p cnf <vars> <clauses>`"));
            }
            num_vars = Some(parts[1].parse().map_err(|_| err("bad var count"))?);
            declared_clauses = parts[2].parse().map_err(|_| err("bad clause count"))?;
            continue;
        }
        let nv = num_vars.ok_or_else(|| err("clause before header"))?;
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| err(format!("bad literal `{tok}`")))?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = n.unsigned_abs() as usize;
                if v > nv {
                    return Err(err(format!("literal {n} out of range")));
                }
                current.push(SatVar::from_index(v - 1).lit(n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    let num_vars = num_vars.ok_or_else(|| err("missing header"))?;
    if declared_clauses != clauses.len() {
        return Err(err(format!(
            "header declares {declared_clauses} clauses, found {}",
            clauses.len()
        )));
    }
    Ok(Cnf { num_vars, clauses })
}

/// Serialises a CNF to DIMACS text.
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for l in c {
            let n = l.var().index() as i64 + 1;
            let n = if l.is_negative() { -n } else { n };
            out.push_str(&format!("{n} "));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatResult;

    #[test]
    fn roundtrip() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        let text = write_dimacs(&cnf);
        let cnf2 = parse_dimacs(&text).unwrap();
        assert_eq!(cnf, cnf2);
    }

    #[test]
    fn solves_parsed_instance() {
        let cnf = parse_dimacs("p cnf 2 3\n1 0\n-1 2 0\n-2 -1 0\n").unwrap();
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn error_cases() {
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n5 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 2\n1 0\n").is_err());
        assert!(parse_dimacs("p dnf 1 0\n").is_err());
    }
}
