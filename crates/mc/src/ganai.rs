//! All-solutions SAT quantification by circuit cofactoring
//! (Ganai, Gupta, Ashar — ICCAD 2004, reference [2] of the paper).
//!
//! `∃vars. F` is computed by enumeration on a SAT solver: each satisfying
//! assignment is generalised to the *circuit cofactor* of `F` by the
//! assignment's values on `vars` — a whole sub-space of solutions — which
//! is added to the running disjunction and blocked. Section 4 of the
//! paper proposes running **partial circuit quantification first**, so
//! the enumeration sees far fewer decision variables; that hybrid is
//! [`hybrid_exists`].

use cbq_aig::{Aig, Lit, Var};
use cbq_cnf::AigCnf;
use cbq_core::{exists_many, QuantConfig};
use cbq_sat::SatResult;

/// Counters for an all-solutions enumeration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GanaiStats {
    /// Enumeration rounds (= SAT models generalised to cofactors).
    pub cofactors: usize,
    /// Variables eliminated by the SAT enumeration.
    pub enumerated_vars: usize,
    /// Variables already eliminated by circuit quantification (hybrid).
    pub prequantified_vars: usize,
    /// Residual variables the circuit engine aborted on (hybrid).
    pub residual_vars: usize,
}

/// Computes `∃vars. f` by all-solutions enumeration with circuit
/// cofactoring. Returns `None` if `max_rounds` is exhausted.
///
/// Every round solves `f ∧ ¬R` (with `R` the accumulated result circuit),
/// generalises the model to the cofactor `f[vars ← model(vars)]`, and
/// disjoins it into `R` — covering many assignments per SAT call.
pub fn all_solutions_exists(
    aig: &mut Aig,
    f: Lit,
    vars: &[Var],
    cnf: &mut AigCnf,
    max_rounds: usize,
) -> Option<(Lit, GanaiStats)> {
    let mut stats = GanaiStats {
        enumerated_vars: vars.len(),
        ..GanaiStats::default()
    };
    if vars.is_empty() {
        return Some((f, stats));
    }
    let mut result = Lit::FALSE;
    for _ in 0..max_rounds {
        match cnf.solve_under(aig, &[f, !result]) {
            SatResult::Unsat => return Some((result, stats)),
            SatResult::Unknown => return None,
            SatResult::Sat => {
                let model = cnf.model_inputs(aig);
                let bindings: Vec<(Var, Lit)> = vars
                    .iter()
                    .map(|v| {
                        let idx = aig.input_index(*v).expect("quantified var is an input");
                        let value = model[idx];
                        (*v, if value { Lit::TRUE } else { Lit::FALSE })
                    })
                    .collect();
                let cofactor = aig.compose(f, &bindings);
                result = aig.or(result, cofactor);
                stats.cofactors += 1;
            }
        }
    }
    None
}

/// The paper's Section 4 hybrid: partial circuit-based quantification
/// first (cheap variables eliminated, expensive ones aborted under the
/// growth budget), then all-solutions SAT enumeration of the residuals.
///
/// With `quant_cfg.growth_budget = None` this degenerates to pure circuit
/// quantification; with `quant_cfg` set to a zero budget it degenerates to
/// pure SAT enumeration.
pub fn hybrid_exists(
    aig: &mut Aig,
    f: Lit,
    vars: &[Var],
    cnf: &mut AigCnf,
    quant_cfg: &QuantConfig,
    max_rounds: usize,
) -> Option<(Lit, GanaiStats)> {
    let q = exists_many(aig, f, vars, cnf, quant_cfg);
    let pre_done = vars.len() - q.remaining.len();
    let (lit, mut stats) = all_solutions_exists(aig, q.lit, &q.remaining, cnf, max_rounds)?;
    stats.prequantified_vars = pre_done;
    stats.residual_vars = q.remaining.len();
    stats.enumerated_vars = q.remaining.len();
    Some((lit, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exists_oracle(aig: &mut Aig, f: Lit, vars: &[Var], n_inputs: usize, result: Lit) -> bool {
        let idx: Vec<usize> = vars.iter().map(|v| aig.input_index(*v).unwrap()).collect();
        for mask in 0..1u32 << n_inputs {
            let mut asg: Vec<bool> = (0..n_inputs).map(|i| (mask >> i) & 1 != 0).collect();
            let mut any = false;
            for sub in 0..1u32 << idx.len() {
                for (j, &vi) in idx.iter().enumerate() {
                    asg[vi] = (sub >> j) & 1 != 0;
                }
                if aig.eval(f, &asg) {
                    any = true;
                    break;
                }
            }
            if aig.eval(result, &asg) != any {
                return false;
            }
        }
        true
    }

    #[test]
    fn enumeration_matches_semantics() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..5).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.xor(vars[0].lit(), vars[1].lit());
            let u = aig.and(t, vars[2].lit());
            let w = aig.and(vars[3].lit(), !vars[4].lit());
            aig.or(u, w)
        };
        let mut cnf = AigCnf::new();
        let (res, stats) = all_solutions_exists(&mut aig, f, &vars[..2], &mut cnf, 64).unwrap();
        assert!(exists_oracle(&mut aig, f, &vars[..2], 5, res));
        assert!(stats.cofactors >= 1);
    }

    #[test]
    fn cofactoring_covers_many_solutions_per_round() {
        // ∃x. (x ∨ y₁ ∨ … ∨ y₈): one cofactor with x=1 already covers
        // everything — enumeration must converge in O(1) rounds, far fewer
        // than the 2⁸ minterms.
        let mut aig = Aig::new();
        let x = aig.add_input();
        let ys: Vec<Lit> = (0..8).map(|_| aig.add_input().lit()).collect();
        let mut f = x.lit();
        for y in ys {
            f = aig.or(f, y);
        }
        let mut cnf = AigCnf::new();
        let (res, stats) = all_solutions_exists(&mut aig, f, &[x], &mut cnf, 64).unwrap();
        assert_eq!(res, Lit::TRUE);
        assert!(stats.cofactors <= 2, "took {} rounds", stats.cofactors);
    }

    #[test]
    fn empty_vars_is_identity() {
        let mut aig = Aig::new();
        let a = aig.add_input().lit();
        let mut cnf = AigCnf::new();
        let (res, _) = all_solutions_exists(&mut aig, a, &[], &mut cnf, 4).unwrap();
        assert_eq!(res, a);
    }

    #[test]
    fn unsatisfiable_f_yields_false() {
        let mut aig = Aig::new();
        let v = aig.add_input();
        let mut cnf = AigCnf::new();
        let (res, stats) = all_solutions_exists(&mut aig, Lit::FALSE, &[v], &mut cnf, 4).unwrap();
        assert_eq!(res, Lit::FALSE);
        assert_eq!(stats.cofactors, 0);
    }

    #[test]
    fn hybrid_reduces_enumerated_vars() {
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..6).map(|_| aig.add_input()).collect();
        let f = {
            let t = aig.and(vars[0].lit(), vars[1].lit());
            let u = aig.xor(vars[2].lit(), vars[3].lit());
            let w = aig.or(t, u);
            let g = aig.implies(vars[4].lit(), vars[5].lit());
            aig.and(w, g)
        };
        let mut cnf = AigCnf::new();
        let cfg = QuantConfig::full();
        let (res, stats) = hybrid_exists(&mut aig, f, &vars[..3], &mut cnf, &cfg, 64).unwrap();
        // Full budget: everything prequantified, nothing enumerated.
        assert_eq!(stats.prequantified_vars, 3);
        assert_eq!(stats.residual_vars, 0);
        assert!(exists_oracle(&mut aig, f, &vars[..3], 6, res));
    }
}
