//! Hand-rolled JSON rendering of [`McRun`] records and engine detail
//! statistics — the single wire format shared by `cbq check --json`,
//! `cbq sat --json`, and the `cbq serve` result stream (the bench
//! tooling's machine interface). No serialization dependency exists in
//! the workspace; these emitters are the counterpart of the service
//! crate's small recursive-descent parser.

use cbq_cnf::AigCnfStats;
use cbq_sat::SolverStats;

use crate::circuit_umc::CircuitUmcStats;
use crate::forward_umc::ForwardCircuitUmcStats;
use crate::ic3::Ic3Stats;
use crate::stateset::PartitionStats;
use crate::verdict::{McRun, Verdict};

/// Minimal JSON string escaping (engine names, human-readable reasons,
/// and serialized models; the full control-character range is escaped).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A `usize` slice as a JSON array.
pub fn json_usize_list(xs: &[usize]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// A `u64` slice as a JSON array.
pub fn json_u64_list(xs: &[u64]) -> String {
    let cells: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// The partitioned-traversal counters as a JSON object.
pub fn partition_json(p: &PartitionStats) -> String {
    format!(
        "{{\"trajectory\":{},\"final\":{},\"max_cone\":{},\"prunes\":{},\"splits\":{},\
         \"worker_panics\":{}}}",
        json_usize_list(&p.trajectory),
        p.trajectory.last().copied().unwrap_or(1),
        p.max_cone,
        p.prunes,
        p.splits,
        json_usize_list(&p.worker_panics)
    )
}

/// The solver-core counters as a JSON object (shared by `cbq sat --json`
/// and the `check --json` engine detail).
pub fn solver_json(s: &SolverStats) -> String {
    format!(
        "{{\"solves\":{},\"decisions\":{},\"propagations\":{},\"conflicts\":{},\
         \"restarts\":{},\"learnts\":{},\"deleted\":{},\"reduces\":{},\
         \"recycled_vars\":{},\"arena_bytes\":{},\"lbd_hist\":{}}}",
        s.solves,
        s.decisions,
        s.propagations,
        s.conflicts,
        s.restarts,
        s.learnts,
        s.deleted,
        s.reduces,
        s.recycled_vars,
        s.arena_bytes(),
        json_u64_list(&s.lbd_hist)
    )
}

/// The SAT-bridge counters as a JSON object (`check --json` detail).
pub fn cnf_json(s: &AigCnfStats) -> String {
    format!(
        "{{\"encoded_ands\":{},\"checks\":{},\"migrations\":{},\"retirements\":{},\
         \"clauses_retired\":{},\"learnts_retained\":{}}}",
        s.encoded_ands,
        s.checks,
        s.migrations,
        s.retirements,
        s.clauses_retired,
        s.learnts_retained
    )
}

/// The fields of [`run_to_json`] *without* the enclosing braces, so
/// callers (the serve result stream) can append fields of their own —
/// cache tier, queue timing — to the same flat object.
pub fn run_to_json_fields(run: &McRun) -> String {
    let verdict = match &run.verdict {
        Verdict::Safe { iterations } => {
            format!("\"verdict\":\"safe\",\"proved_at\":{iterations}")
        }
        Verdict::Unsafe { trace } => {
            format!("\"verdict\":\"unsafe\",\"cex_depth\":{}", trace.len() - 1)
        }
        Verdict::Bounded { resource, limit } => format!(
            "\"verdict\":\"bounded\",\"resource\":{},\"limit\":{limit}",
            json_str(&resource.to_string())
        ),
        Verdict::Unknown { reason } => {
            format!("\"verdict\":\"unknown\",\"reason\":{}", json_str(reason))
        }
    };
    let job = if run.job != 0 {
        format!("\"job\":{},", run.job)
    } else {
        String::new()
    };
    let mut detail = String::new();
    if let Some(d) = run.detail::<CircuitUmcStats>() {
        detail = format!(
            ",\"frontier_sizes\":{},\"reached_size\":{},\"quant_aborts\":{},\
             \"ganai_cofactors\":{},\"sweep_runs\":{},\"partitions\":{},\
             \"solver\":{},\"cnf\":{}",
            json_usize_list(&d.frontier_sizes),
            d.reached_size,
            d.quant_aborts,
            d.ganai_cofactors,
            d.sweep.runs,
            partition_json(&d.partitions),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    } else if let Some(d) = run.detail::<ForwardCircuitUmcStats>() {
        detail = format!(
            ",\"frontier_sizes\":{},\"quant_aborts\":{},\"ganai_cofactors\":{},\
             \"sweep_runs\":{},\"partitions\":{},\"solver\":{},\"cnf\":{}",
            json_usize_list(&d.frontier_sizes),
            d.quant_aborts,
            d.ganai_cofactors,
            d.sweep.runs,
            partition_json(&d.partitions),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    } else if let Some(d) = run.detail::<Ic3Stats>() {
        detail = format!(
            ",\"frames\":{},\"obligations\":{},\"clauses\":{},\"pushed\":{},\
             \"gen_drops\":{},\"subsumed\":{},\"seeded\":{},\"seed_rejected\":{},\
             \"lemma_count\":{},\"solver\":{},\"cnf\":{}",
            d.frames,
            d.obligations,
            d.clauses,
            d.pushed,
            d.gen_drops,
            d.subsumed,
            d.seeded,
            d.seed_rejected,
            d.lemmas.len(),
            solver_json(&d.solver),
            cnf_json(&d.cnf)
        );
    }
    format!(
        "{job}{verdict},\"engine\":{},\"iterations\":{},\"peak_nodes\":{},\
         \"sat_checks\":{},\"elapsed_ms\":{:.3}{detail}",
        json_str(run.stats.engine),
        run.stats.iterations,
        run.stats.peak_nodes,
        run.stats.sat_checks,
        run.stats.elapsed.as_secs_f64() * 1e3
    )
}

/// The `McRun` common stats record — plus the engine-specific detail
/// when the type is known — as one flat JSON object.
pub fn run_to_json(run: &McRun) -> String {
    format!("{{{}}}", run_to_json_fields(run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budget, Engine};
    use crate::ic3::Ic3;
    use cbq_ckt::generators;

    #[test]
    fn escapes_and_shapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_usize_list(&[1, 2]), "[1,2]");
        assert_eq!(json_u64_list(&[]), "[]");
    }

    #[test]
    fn run_json_carries_job_and_detail() {
        let run = Ic3::default()
            .check(&generators::token_ring(4), &Budget::unlimited())
            .with_job(42);
        let json = run_to_json(&run);
        assert!(json.starts_with("{\"job\":42,"), "got {json}");
        assert!(json.contains("\"verdict\":\"safe\""));
        assert!(json.contains("\"engine\":\"ic3\""));
        assert!(json.contains("\"subsumed\":"));
        assert!(json.contains("\"recycled_vars\":"));
        assert!(json.ends_with('}'));
        // Field form drops the braces but keeps the content.
        assert_eq!(format!("{{{}}}", run_to_json_fields(&run)), json);
    }
}
