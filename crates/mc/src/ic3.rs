//! IC3 / property-directed reachability (Bradley — VMCAI 2011; Eén,
//! Mishchenko, Brayton — FMCAD 2011), on the incremental SAT core.
//!
//! Where the paper's engines manipulate *state sets* (circuit
//! quantification, §3) or *unrollings* (BMC, k-induction), IC3 maintains
//! a sequence of over-approximating **frames** `F₁ ⊇ F₂ ⊇ … ⊇ F_k` of
//! the states reachable in at most `i` steps, each a conjunction of
//! clauses over the latch variables. Bad states found in `F_k` spawn
//! **proof obligations** that are recursively blocked by
//! relative-induction queries; blocked cubes are **generalized** by
//! unsat-core shrinking plus literal dropping, and clauses are
//! **propagated** forward each time a frame is added. The run terminates
//! at a frame fixpoint (`F_i = F_{i+1}` — an inductive invariant, the
//! property is proved) or when an obligation chain reaches the initial
//! state (a concrete counterexample trace).
//!
//! The implementation rides entirely on the PR-4 incremental SAT
//! lifecycle:
//!
//! * one persistent [`cbq_cnf::AigCnf`] bridge encodes the next-state
//!   cones lazily and keeps everything the solver learns across the
//!   thousands of queries a run issues;
//! * every frame is an activation-literal **guard generation**
//!   ([`cbq_cnf::AigCnf::new_guard`]): frame clauses are added once,
//!   guarded, and a query for `F_i` simply assumes the guards of frames
//!   `i..=k` — no clause is ever retracted, and retired per-query
//!   strengthening clauses are reclaimed by the arena's satisfied-clause
//!   purge, exactly like retired cone generations;
//! * cube generalization reads the solver's
//!   [`cbq_sat::Solver::failed_assumptions`] unsat core — each cube
//!   literal is passed as its own assumption, so the core names the
//!   literals that matter.
//!
//! Transitions are expressed functionally (the crate's in-lining style):
//! "the successor lies in cube `c`" is the conjunction of the next-state
//! functions `δ` signed by `c`'s values, so no next-state variables or
//! transition-relation clauses exist at all.
//!
//! Generalization is a four-level effort ladder ([`GenMode`]): the unsat
//! core alone, plus literal dropping, plus **ternary-simulation
//! predecessor widening** (every SAT model is widened into a cube by
//! [`cbq_aig::sim::TernSim`] — latches whose X keeps the bad/next cone
//! definite are dropped *before* any SAT query runs), plus **CTG-aware
//! dropping** (a counterexample-to-generalization is blocked at the
//! prior frame under a bounded retry budget instead of ending the drop).
//! On top of the finite frames sits **`F_∞`**: clauses that propagate to
//! the top frame and are inductive outright land in an infinity guard
//! generation that every future query assumes for free, and go out on
//! the lemma bus tagged as already inductive.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cbq_aig::sim::TernSim;
use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::{AigCnf, AigCnfStats};
use cbq_sat::{SatLit, SatResult, SolverStats};

use crate::bus::{BusClientStats, BusCursor, LemmaBus};
use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// Conflict budget for re-proving one bus merge. The scout already
/// proved the pair equivalent, so the consumer's re-proof usually closes
/// instantly; the cap only bounds the damage of a poisoned publication.
const MERGE_PROOF_CONFLICTS: u64 = 2_000;

/// Cube-generalization effort, a cumulative ladder: each mode includes
/// everything below it. `Core` is the `e6pdr`/`e6g` ablation baseline;
/// [`GenMode::Ctg`] is the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum GenMode {
    /// Unsat-core shrinking only.
    Core,
    /// Plus literal dropping (the `down`-less MIC step).
    Drop,
    /// Plus ternary-simulation predecessor widening: every SAT model is
    /// widened into a cube by X-valued re-simulation before the SAT
    /// path runs.
    Ternary,
    /// Plus CTG handling: a failed literal drop tries to block the
    /// counterexample-to-generalization at the prior frame, bounded by
    /// [`Ic3::ctg_retries`].
    #[default]
    Ctg,
    /// Plus *recursive* CTG blocking: a CTG that is itself not blocked
    /// at the prior frame recurses on its own predecessor (depth-capped,
    /// under a separate strike budget), so chains of almost-inductive
    /// states are strengthened in one descent instead of being abandoned
    /// after the first failed query.
    CtgDeep,
}

impl GenMode {
    /// All modes, ablation order.
    pub const ALL: [GenMode; 5] = [
        GenMode::Core,
        GenMode::Drop,
        GenMode::Ternary,
        GenMode::Ctg,
        GenMode::CtgDeep,
    ];

    /// The CLI-facing name (`--ic3-gen <name>`).
    pub fn name(self) -> &'static str {
        match self {
            GenMode::Core => "core",
            GenMode::Drop => "drop",
            GenMode::Ternary => "ternary",
            GenMode::Ctg => "ctg",
            GenMode::CtgDeep => "ctg-deep",
        }
    }

    /// Parses a CLI-facing name.
    pub fn parse(s: &str) -> Option<GenMode> {
        GenMode::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for GenMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The IC3/PDR engine.
#[derive(Clone, Debug)]
pub struct Ic3 {
    /// Frame-count safety net; reaching it yields [`Verdict::Unknown`].
    pub max_frames: usize,
    /// Generalization effort ([`GenMode`] ladder; default
    /// [`GenMode::Ctg`] = everything on).
    pub gen: GenMode,
    /// CTG retry budget: how many counterexamples-to-generalization one
    /// literal drop may block before giving up on that literal. Floored
    /// to 1 in [`GenMode::Ctg`] so a zero configuration cannot turn the
    /// retry loop into an unbounded one.
    pub ctg_retries: u32,
    /// In-frame clause subsumption: recording a blocked cube drops every
    /// recorded cube it subsumes (fewer literals at an equal-or-higher
    /// frame), so the propagation phase never re-pushes clauses a
    /// stronger lemma already implies.
    pub subsume: bool,
    /// Warm-start lemmas: candidate blocked cubes (as `(latch ordinal,
    /// value)` pairs) from a previous run on the same transition
    /// structure, e.g. the [`Ic3Stats::lemmas`] of a cached run. Each is
    /// re-validated by a relative-induction query at frame 0 before
    /// being admitted into `F₁` — an unsound candidate is simply
    /// rejected — so seeding can never change a verdict, only skip
    /// obligations.
    pub seed: Vec<Vec<(usize, bool)>>,
    /// The parallel portfolio's [`LemmaBus`]. When set, IC3 *publishes*
    /// every pushed frame clause (cubes blocked at frames `≥ 2`) for the
    /// unrolling engines to assume, and *absorbs* sweep-proven node
    /// merges at each frame extension — after re-proving each merge in
    /// its own SAT database under a small conflict budget, so a poisoned
    /// publication costs queries, never the verdict.
    pub bus: Option<Arc<LemmaBus>>,
}

impl Default for Ic3 {
    fn default() -> Ic3 {
        Ic3 {
            max_frames: 10_000,
            gen: GenMode::default(),
            ctg_retries: 3,
            subsume: true,
            seed: Vec::new(),
            bus: None,
        }
    }
}

/// Statistics of an [`Ic3`] run.
#[derive(Clone, Debug, Default)]
pub struct Ic3Stats {
    /// Frames opened (the final `k`).
    pub frames: usize,
    /// Proof obligations processed.
    pub obligations: u64,
    /// Blocking clauses learned (generalized cubes blocked).
    pub clauses: u64,
    /// Clauses moved forward by the propagation phase.
    pub pushed: u64,
    /// Cube literals dropped by generalization (unsat core + literal
    /// dropping), total.
    pub gen_drops: u64,
    /// Latch literals dropped by ternary-simulation widening *before*
    /// the SAT path ([`GenMode::Ternary`] and up).
    pub tern_drops: u64,
    /// Counterexamples-to-generalization blocked at a prior frame during
    /// literal dropping ([`GenMode::Ctg`]).
    pub ctg_blocked: u64,
    /// CTGs blocked at recursion depth > 1 ([`GenMode::CtgDeep`]): the
    /// CTG's own predecessor was blocked first, then the retry landed.
    pub ctg_deep_blocked: u64,
    /// Clauses promoted to the `F_∞` frame (inductive outright; assumed
    /// by every future query).
    pub inf_clauses: u64,
    /// Recorded cubes dropped because a newly blocked cube subsumed them.
    pub subsumed: u64,
    /// Warm-start lemmas admitted into `F₁` after re-validation.
    pub seeded: u64,
    /// Warm-start lemmas rejected (malformed or no longer inductive
    /// relative to this model's initial states / transition structure).
    pub seed_rejected: u64,
    /// The run's surviving frame clauses as cubes (every recorded cube
    /// at frames `≥ 1`) — inductive lemmas of the transition structure,
    /// replayable as [`Ic3::seed`] on a structurally matching model.
    pub lemmas: Vec<Vec<(usize, bool)>>,
    /// Frame clauses published to the lemma bus (parallel portfolio).
    pub published: u64,
    /// Bus traffic absorbed from siblings (merges re-proved/rejected).
    pub bus: BusClientStats,
    /// SAT-bridge counters (encodings, checks).
    pub cnf: AigCnfStats,
    /// Solver-core counters (conflicts, restarts, arena bytes, …).
    pub solver: SolverStats,
}

/// A cube over latches: `(latch ordinal, value)` pairs, ordinal-sorted.
type Cube = Vec<(usize, bool)>;

/// One frame: its clause-guard literal and the cubes whose blocking
/// clauses live at this level (delta encoding — a cube is recorded at
/// the *highest* frame it is blocked at; `F_i` is the conjunction of all
/// clauses recorded at levels `≥ i`).
struct Frame {
    act: SatLit,
    cubes: Vec<Cube>,
}

/// A proof obligation: a cube of states to block (a single concrete
/// state below [`GenMode::Ternary`]; a ternary-widened cube above, every
/// member of which the recorded inputs step into the parent obligation's
/// cube — or through `bad` for the root), and the parent link for
/// counterexample reconstruction.
struct Obligation {
    cube: Cube,
    inputs: Vec<bool>,
    parent: Option<usize>,
}

/// Outcome of one relative-induction query.
enum Rel {
    /// A predecessor exists: its full latch state and the inputs driving
    /// it into the queried cube.
    Pred(Vec<bool>, Vec<bool>),
    /// No predecessor; `keep[i]` marks the cube literals named by the
    /// unsat core (the rest are droppable).
    Blocked(Vec<bool>),
    /// The solver gave up (defensive; IC3 sets no conflict budget).
    Unknown,
}

/// Whether `small` subsumes `big`: every literal of `small` occurs in
/// `big` (both ordinal-sorted), so the clause `¬small` implies `¬big`.
fn cube_subsumes(small: &[(usize, bool)], big: &[(usize, bool)]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut big_iter = big.iter();
    'literals: for &lit in small {
        for &cand in big_iter.by_ref() {
            if cand == lit {
                continue 'literals;
            }
            if cand.0 >= lit.0 {
                // Passed the ordinal (or found it with the other value).
                return false;
            }
        }
        return false;
    }
    true
}

/// What the obligation queue produced.
enum BlockOutcome {
    Blocked,
    Cex(Trace),
    Stopped(Verdict),
}

struct Ic3Run<'a> {
    cfg: &'a Ic3,
    aig: Aig,
    cnf: AigCnf,
    pis: Vec<Var>,
    latches: Vec<Var>,
    deltas: Vec<Lit>,
    init_state: Vec<bool>,
    init_lit: Lit,
    bad: Lit,
    frames: Vec<Frame>,
    /// The `F_∞` guard: a generation that is *never* retired and that
    /// every query assumes, so clauses proved inductive outright
    /// strengthen all frames for free.
    inf_act: SatLit,
    /// Cubes whose clauses live in `F_∞` (for lemma export; their solver
    /// clauses are under `inf_act`, not any frame guard).
    inf_cubes: Vec<Cube>,
    /// Ternary simulator for predecessor widening (64 patterns — one
    /// concrete lane plus up to 63 prefix-X probe lanes per round).
    sim: TernSim,
    /// Reusable buffer for the widening target cone (filled by
    /// `TernSim::cone_of_reused`, so widening allocates nothing steady
    /// state).
    cone_buf: Vec<usize>,
    stats: Ic3Stats,
    seq: u64,
    retired_queries: u32,
    /// Consecutive failed CTG block attempts. Each failure costs one
    /// wasted query; once the count hits [`CTG_STRIKE_CAP`] the run stops
    /// attempting CTG blocks (a success resets it), so models where CTGs
    /// are never inductive pay a small bounded overhead instead of one
    /// extra query per failed literal drop.
    ctg_strikes: u32,
    /// Consecutive failed *recursive* CTG descents ([`GenMode::CtgDeep`]
    /// only); gated by [`CTG_DEEP_STRIKE_CAP`] like the flat counter, so
    /// recursion-hostile models stop paying for the extra queries.
    deep_strikes: u32,
    bus_cursor: BusCursor,
}

/// Consecutive CTG failures tolerated before the run gives up on CTG
/// blocking. Small: a model whose counterexamples-to-generalization are
/// inductive shows it immediately and keeps resetting the counter.
const CTG_STRIKE_CAP: u32 = 4;

/// Maximum nested CTG levels in [`GenMode::CtgDeep`] (the `try_drop`
/// entry is depth 1, so this allows two further recursive descents).
const CTG_DEEP_MAX_DEPTH: u32 = 3;

/// Consecutive failed recursive descents tolerated before the run stops
/// recursing (a deep success resets the counter).
const CTG_DEEP_STRIKE_CAP: u32 = 4;

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: Ic3Stats, peak_nodes: usize, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "ic3",
        iterations: stats.frames,
        peak_nodes,
        sat_checks: stats.cnf.checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for Ic3 {
    fn name(&self) -> &'static str {
        "ic3"
    }

    /// Runs IC3 on `net` within `budget` (`max_steps` caps the frame
    /// count).
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut run = Ic3Run::new(self, net);
        let verdict = run.solve(&meter);
        run.stats.cnf = run.cnf.stats();
        run.stats.solver = run.cnf.solver_stats();
        // Export the surviving frame clauses plus the F_∞ clauses: sound
        // warm-start candidates for any later run on the same transition
        // structure (each is re-validated on import, so this is safe for
        // every verdict).
        run.stats.lemmas = run
            .frames
            .iter()
            .skip(1)
            .flat_map(|f| f.cubes.iter().cloned())
            .chain(run.inf_cubes.iter().cloned())
            .collect();
        let peak = run.aig.num_nodes();
        finish(verdict, run.stats, peak, &meter)
    }
}

impl<'a> Ic3Run<'a> {
    fn new(cfg: &'a Ic3, net: &Network) -> Ic3Run<'a> {
        let mut aig = net.aig().clone();
        let init_lit = net.initial_cube().to_lit(&mut aig);
        let mut cnf = AigCnf::new();
        // Frame 0 is the initial states (queried through `init_lit`, not
        // clauses); its guard exists only to keep indexing uniform.
        let f0 = Frame {
            act: cnf.new_guard(),
            cubes: Vec::new(),
        };
        let f1 = Frame {
            act: cnf.new_guard(),
            cubes: Vec::new(),
        };
        let inf_act = cnf.new_guard();
        // Built after `init_lit` so the simulator covers the full AIG
        // (nothing grows the node table past this point).
        let sim = TernSim::new(&aig, 1);
        Ic3Run {
            cfg,
            aig,
            cnf,
            pis: net.primary_inputs().to_vec(),
            latches: net.latch_vars(),
            deltas: net.latches().iter().map(|l| l.next).collect(),
            init_state: net.initial_state(),
            init_lit,
            bad: net.bad(),
            frames: vec![f0, f1],
            inf_act,
            inf_cubes: Vec::new(),
            sim,
            cone_buf: Vec::new(),
            stats: Ic3Stats::default(),
            seq: 0,
            retired_queries: 0,
            ctg_strikes: 0,
            deep_strikes: 0,
            bus_cursor: BusCursor::default(),
        }
    }

    /// The top frame index `k`.
    fn top(&self) -> usize {
        self.frames.len() - 1
    }

    /// Budget check at a query boundary; steps count *completed* frame
    /// extensions, so a step limit of `n` allows frames `F₁ … F_{n+1}`.
    fn budget_verdict(&self, meter: &Meter) -> Option<Verdict> {
        meter.exceeded(
            self.top() - 1,
            self.aig.num_nodes(),
            self.cnf.stats().checks,
        )
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Model values of `vars` (all AIG inputs) after a SAT answer.
    fn read(&self, vars: &[Var]) -> Vec<bool> {
        let model = self.cnf.model_inputs(&self.aig);
        vars.iter()
            .map(|v| {
                model[self
                    .aig
                    .input_index(*v)
                    .expect("sequential var is an input")]
            })
            .collect()
    }

    /// The AIG literal asserting latch `ord == val`.
    fn latch_lit(&self, ord: usize, val: bool) -> Lit {
        self.latches[ord].lit().xor_sign(!val)
    }

    /// Whether `cube` excludes the (single, fully-specified) initial
    /// state — i.e. some literal disagrees with the reset values.
    fn excludes_init(&self, cube: &[(usize, bool)]) -> bool {
        cube.iter().any(|&(ord, val)| self.init_state[ord] != val)
    }

    /// Restores init-exclusion after a core shrink: if every literal of
    /// `cube` agrees with the reset state, re-adds a disagreeing literal
    /// from `fallback` (which is known to exclude init).
    fn fix_init_exclusion(&self, cube: &mut Cube, fallback: &[(usize, bool)]) {
        if self.excludes_init(cube) {
            return;
        }
        let lit = fallback
            .iter()
            .copied()
            .find(|&(ord, val)| self.init_state[ord] != val)
            .expect("fallback cube excludes the initial state");
        cube.push(lit);
        cube.sort_unstable_by_key(|&(ord, _)| ord);
    }

    /// The relative-induction query `SAT? [F_lvl ∧ ¬c ∧ c(δ)]` — can a
    /// state of `F_lvl` outside `c` step into `c`? `lvl == 0` queries the
    /// initial cube instead of frame clauses. The `¬c` strengthening
    /// clause lives under a per-query guard retired immediately after;
    /// each `c(δ)` conjunct is its own assumption so an UNSAT core names
    /// the cube literals that matter.
    ///
    /// A reusable-guard pool would be unsound here (re-arming a retired
    /// guard would resurrect the previous query's `¬c` clause), so
    /// retired guards go through the solver's variable recycling instead:
    /// every 512 retirements [`cbq_cnf::AigCnf::reclaim_guards`] purges
    /// the dead guarded clauses *and* returns the guard variables to the
    /// free list, keeping both the arena and the variable table bounded
    /// across the thousands of queries a run issues.
    fn rel_query(&mut self, cube: &[(usize, bool)], lvl: usize) -> Rel {
        self.raw_query(cube, Some(lvl))
    }

    /// The `F_∞` promotion query `SAT? [F_∞ ∧ ¬c ∧ c(δ)]`: no frame
    /// guard at all — an UNSAT answer makes `¬c` inductive outright
    /// (relative only to the already-promoted clauses), so `c` can join
    /// the infinity generation.
    fn inf_query(&mut self, cube: &[(usize, bool)]) -> Rel {
        self.raw_query(cube, None)
    }

    /// Shared body of [`Ic3Run::rel_query`] / [`Ic3Run::inf_query`].
    /// Every query assumes `inf_act` — the `F_∞` clauses are facts about
    /// all reachable states, so they strengthen each frame for free.
    fn raw_query(&mut self, cube: &[(usize, bool)], lvl: Option<usize>) -> Rel {
        let actq = self.cnf.new_guard();
        let neg_cube: Vec<SatLit> = cube
            .iter()
            .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
            .collect();
        self.cnf.add_guarded_by(actq, &neg_cube);
        let mut extra = vec![actq, self.inf_act];
        match lvl {
            Some(0) => {
                let init = self.cnf.ensure(&self.aig, self.init_lit);
                extra.push(init);
            }
            Some(lvl) => {
                for j in lvl..self.frames.len() {
                    extra.push(self.frames[j].act);
                }
            }
            None => {}
        }
        let delta_sls: Vec<SatLit> = cube
            .iter()
            .map(|&(ord, val)| {
                let succ = self.deltas[ord].xor_sign(!val);
                self.cnf.ensure(&self.aig, succ)
            })
            .collect();
        extra.extend_from_slice(&delta_sls);
        let result = self.cnf.solve_under_assuming(&self.aig, &[], &extra);
        let out = match result {
            SatResult::Sat => Rel::Pred(self.read(&self.latches), self.read(&self.pis)),
            SatResult::Unsat => {
                let failed = self.cnf.solver().failed_assumptions();
                let keep = delta_sls.iter().map(|sl| failed.contains(sl)).collect();
                Rel::Blocked(keep)
            }
            SatResult::Unknown => Rel::Unknown,
        };
        self.cnf.retire_guard(actq);
        self.retired_queries += 1;
        if self.retired_queries.is_multiple_of(512) {
            // Reclaim the retired per-query clauses and guard variables.
            self.cnf.reclaim_guards();
        }
        out
    }

    /// Filters `cube` down to its unsat-core literals and *immediately*
    /// repairs init-exclusion against `fallback` (a superset cube known
    /// to exclude the initial state). Used after every core answer —
    /// including each accepted drop inside [`Ic3Run::generalize`]'s loop
    /// — so a core that momentarily agrees with the reset state is fixed
    /// on the spot instead of forcing a full-cube fallback later.
    fn shrink(
        &mut self,
        cube: &[(usize, bool)],
        keep: &[bool],
        fallback: &[(usize, bool)],
    ) -> Cube {
        let mut cur: Cube = cube
            .iter()
            .zip(keep)
            .filter(|(_, k)| **k)
            .map(|(c, _)| *c)
            .collect();
        self.fix_init_exclusion(&mut cur, fallback);
        cur
    }

    /// Shrinks a blocked cube: keep the unsat-core literals (with
    /// init-exclusion repaired after each core answer), then — from
    /// [`GenMode::Drop`] up — try dropping each remaining literal with a
    /// fresh relative-induction query at `lvl` ([`Ic3Run::try_drop`]
    /// layers the CTG handling on top).
    fn generalize(&mut self, cube: &[(usize, bool)], keep: &[bool], lvl: usize) -> Cube {
        let mut cur = self.shrink(cube, keep, cube);
        if self.cfg.gen >= GenMode::Drop {
            let mut i = 0;
            while i < cur.len() && cur.len() > 1 {
                let mut cand = cur.clone();
                cand.remove(i);
                if !self.excludes_init(&cand) {
                    i += 1;
                    continue;
                }
                match self.try_drop(&cand, lvl) {
                    Some(keep2) => {
                        cur = self.shrink(&cand, &keep2, &cand);
                        i = 0;
                    }
                    None => i += 1,
                }
            }
        }
        self.stats.gen_drops += (cube.len() - cur.len()) as u64;
        cur
    }

    /// Attempts one literal drop: is `cand` still blocked at `lvl`? In
    /// [`GenMode::Ctg`] a SAT answer — a **counterexample to
    /// generalization**, an `F_lvl` state that steps into `cand` — is
    /// itself blocked at the prior frame and the drop retried, under a
    /// retry budget floored to 1 (so a zero configuration cannot loop)
    /// and the [`CTG_STRIKE_CAP`] failure gate. Returns the unsat core
    /// on success.
    fn try_drop(&mut self, cand: &[(usize, bool)], lvl: usize) -> Option<Vec<bool>> {
        let ctg_on = self.cfg.gen >= GenMode::Ctg && lvl >= 1 && self.ctg_strikes < CTG_STRIKE_CAP;
        let mut retries = if ctg_on {
            self.cfg.ctg_retries.max(1)
        } else {
            0
        };
        loop {
            match self.rel_query(cand, lvl) {
                Rel::Blocked(keep) => return Some(keep),
                Rel::Pred(ctg, _) if retries > 0 => {
                    retries -= 1;
                    if ctg == self.init_state || !self.block_ctg(&ctg, lvl) {
                        self.ctg_strikes += 1;
                        return None;
                    }
                    self.ctg_strikes = 0;
                }
                _ => return None,
            }
        }
    }

    /// Blocks one counterexample-to-generalization: if the CTG state is
    /// itself blocked relative to the *prior* frame, its core-shrunk cube
    /// is recorded at `lvl` — strengthening `F_lvl` so the failed drop
    /// can succeed on retry. Below [`GenMode::CtgDeep`] this is
    /// deliberately minimal effort — no recursive drop loop and no eager
    /// push-forward (the propagation phase moves the clause up one query
    /// per frame later, amortized), so a blocked CTG costs exactly one
    /// query plus the retry.
    fn block_ctg(&mut self, ctg: &[bool], lvl: usize) -> bool {
        self.block_ctg_rec(ctg, lvl, 1)
    }

    /// The recursive worker: at [`GenMode::CtgDeep`], a CTG whose own
    /// blocking query finds a predecessor recurses on that predecessor
    /// one frame down — capped at [`CTG_DEEP_MAX_DEPTH`] levels, bounded
    /// per level by the [`Ic3::ctg_retries`] budget, and gated by a
    /// separate [`CTG_DEEP_STRIKE_CAP`] strike counter so
    /// recursion-hostile models pay a small bounded overhead.
    fn block_ctg_rec(&mut self, ctg: &[bool], lvl: usize, depth: u32) -> bool {
        let cube: Cube = ctg.iter().enumerate().map(|(ord, v)| (ord, *v)).collect();
        let mut retries = self.cfg.ctg_retries.max(1);
        loop {
            match self.rel_query(&cube, lvl - 1) {
                Rel::Blocked(keep) => {
                    let shrunk = self.shrink(&cube, &keep, &cube);
                    self.add_blocked(shrunk, lvl);
                    self.stats.clauses += 1;
                    self.stats.ctg_blocked += 1;
                    if depth > 1 {
                        self.stats.ctg_deep_blocked += 1;
                        self.deep_strikes = 0;
                    }
                    return true;
                }
                Rel::Pred(pred, _)
                    if self.cfg.gen >= GenMode::CtgDeep
                        && depth < CTG_DEEP_MAX_DEPTH
                        && lvl >= 2
                        && retries > 0
                        && self.deep_strikes < CTG_DEEP_STRIKE_CAP
                        && pred != self.init_state =>
                {
                    retries -= 1;
                    if !self.block_ctg_rec(&pred, lvl - 1, depth + 1) {
                        self.deep_strikes += 1;
                        return false;
                    }
                    // The prior frame now excludes the predecessor; retry.
                }
                _ => {
                    if depth > 1 {
                        self.deep_strikes += 1;
                    }
                    return false;
                }
            }
        }
    }

    /// The obligation cube for a freshly found predecessor state: the
    /// full state below [`GenMode::Ternary`], the ternary-widened cube
    /// above. `targets` are the literals (with required values) that the
    /// widening must keep definite — the parent cube's next-state
    /// functions, or `bad` for a root obligation.
    fn pred_cube(&mut self, state: &[bool], inputs: &[bool], targets: &[(Lit, bool)]) -> Cube {
        if self.cfg.gen >= GenMode::Ternary {
            self.tern_widen(state, inputs, targets)
        } else {
            state.iter().enumerate().map(|(ord, v)| (ord, *v)).collect()
        }
    }

    /// Ternary-simulation predecessor widening: starting from the
    /// concrete SAT model (`state`, `inputs`), turn latches to X and keep
    /// every drop under which all `targets` still evaluate to their
    /// required *definite* values. Ternary evaluation is monotone in
    /// definedness, so a definite target value holds for **every**
    /// concretization of the X latches: each state of the widened cube
    /// provably steps into the parent cube (or fires `bad`) under the
    /// recorded inputs — which is exactly what keeps counterexample
    /// traces replayable and lets the whole cube be blocked at once.
    ///
    /// The probing is bit-parallel: lane 0 stays concrete, lane `j`
    /// additionally X-es the first `j` pending candidates. More X in can
    /// only mean more X out, so lane acceptability is prefix-closed and
    /// one cone evaluation finds the longest acceptable run of drops; the
    /// first refused candidate is kept for good and the rest re-queued.
    /// The first latch disagreeing with the reset state is never a
    /// candidate, so the widened cube always excludes the initial state.
    fn tern_widen(&mut self, state: &[bool], inputs: &[bool], targets: &[(Lit, bool)]) -> Cube {
        let anchor = state.iter().zip(&self.init_state).position(|(s, i)| s != i);
        for (i, v) in self.pis.iter().enumerate() {
            self.sim.broadcast_var(*v, Some(inputs[i]));
        }
        for (ord, v) in self.latches.iter().enumerate() {
            self.sim.broadcast_var(*v, Some(state[ord]));
        }
        // One full pass settles every node (and resizes the planes if the
        // AIG grew); the probe loop then re-evaluates only the target
        // cone.
        self.sim.run(&self.aig);
        let roots: Vec<Lit> = targets.iter().map(|&(l, _)| l).collect();
        let mut cone = std::mem::take(&mut self.cone_buf);
        self.sim.cone_of_reused(&self.aig, &roots, &mut cone);
        debug_assert!(
            targets
                .iter()
                .all(|&(l, want)| self.sim.lit_value(l, 0) == Some(want)),
            "concrete SAT model does not satisfy the widening targets"
        );
        let mut keep = vec![true; state.len()];
        let mut pending: Vec<usize> = (0..state.len())
            .filter(|&ord| Some(ord) != anchor)
            .collect();
        let lanes = self.sim.num_patterns() - 1;
        while !pending.is_empty() {
            let round: Vec<usize> = pending.drain(..pending.len().min(lanes)).collect();
            // Lane j (1-based) X-es candidates round[0..j]: candidate
            // round[t] is X in lanes t+1 and up.
            for (t, &ord) in round.iter().enumerate() {
                for lane in (t + 1)..=round.len() {
                    self.sim.set_var(self.latches[ord], lane, None);
                }
            }
            self.sim.run_cone(&self.aig, &cone);
            let mut ok = 0;
            while ok < round.len()
                && targets
                    .iter()
                    .all(|&(l, want)| self.sim.lit_value(l, ok + 1) == Some(want))
            {
                ok += 1;
            }
            for (t, &ord) in round.iter().enumerate() {
                if t < ok {
                    // Dropped: X in every lane from here on.
                    keep[ord] = false;
                    self.sim.broadcast_var(self.latches[ord], None);
                } else {
                    // Back to concrete; the first refused candidate (t ==
                    // ok) is kept permanently, the rest get another try.
                    self.sim.broadcast_var(self.latches[ord], Some(state[ord]));
                    if t > ok {
                        pending.push(ord);
                    }
                }
            }
        }
        self.cone_buf = cone;
        let cube: Cube = state
            .iter()
            .enumerate()
            .filter(|&(ord, _)| keep[ord])
            .map(|(ord, v)| (ord, *v))
            .collect();
        self.stats.tern_drops += (state.len() - cube.len()) as u64;
        cube
    }

    /// Records `cube` as blocked at frame `lvl`: one guarded clause `¬c`
    /// under the frame's activation literal, plus the delta-encoding
    /// bookkeeping entry. With [`Ic3::subsume`] on, every recorded cube
    /// the new one subsumes (a superset cube at an equal-or-lower level —
    /// its clause is implied by the new, stronger clause) is dropped from
    /// the bookkeeping first, so propagation never re-pushes it. The
    /// subsumed solver clauses stay behind their frame guards (redundant
    /// but sound); only the delta-encoding entries shrink, which keeps
    /// the frame-emptiness fixpoint test exact: dropping an implied
    /// clause changes no frame's semantics.
    fn add_blocked(&mut self, cube: Cube, lvl: usize) {
        if self.cfg.subsume {
            let stats = &mut self.stats;
            for j in 1..=lvl {
                self.frames[j].cubes.retain(|old| {
                    let dead = cube_subsumes(&cube, old);
                    if dead {
                        stats.subsumed += 1;
                    }
                    !dead
                });
            }
        }
        let clause: Vec<SatLit> = cube
            .iter()
            .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
            .collect();
        self.cnf.add_guarded_by(self.frames[lvl].act, &clause);
        // Pushed frame clauses (level ≥ 2 — they survived at least one
        // propagation) go out on the lemma bus for the unrolling engines.
        // Consumers re-validate, so no inductiveness claim is made here.
        if lvl >= 2 {
            if let Some(bus) = &self.cfg.bus {
                if bus.publish_cube(cube.clone()) {
                    self.stats.published += 1;
                }
            }
        }
        self.frames[lvl].cubes.push(cube);
    }

    /// Absorbs sweep-proven node merges off the bus: each is re-proved
    /// combinationally in this run's own SAT database (bounded conflicts)
    /// before [`cbq_cnf::AigCnf::learn_equiv`] records it, so the learned
    /// clauses are sound regardless of who published the pair. IC3's
    /// queries range over the *original* next-state/bad cones, which is
    /// exactly the coordinate space the sweep scout publishes in.
    fn absorb_merges(&mut self) {
        let Some(bus) = self.cfg.bus.clone() else {
            return;
        };
        for (a, b) in bus.merges_since(&mut self.bus_cursor) {
            let in_range =
                a.var().index() < self.aig.num_nodes() && b.var().index() < self.aig.num_nodes();
            if in_range
                && self
                    .cnf
                    .prove_equiv(&self.aig, a, b, Some(MERGE_PROOF_CONFLICTS))
                    .is_equiv()
            {
                let sa = self.cnf.ensure(&self.aig, a);
                let sb = self.cnf.ensure(&self.aig, b);
                self.cnf.learn_equiv(sa, sb);
                self.stats.bus.merges_learned += 1;
            } else {
                self.stats.bus.merges_rejected += 1;
            }
        }
    }

    /// Pushes a freshly blocked cube as far forward as relative induction
    /// allows, starting from `lvl`; returns the frame it lands at.
    fn push_forward(&mut self, cube: &[(usize, bool)], lvl: usize) -> usize {
        let mut j = lvl;
        while j < self.top() {
            match self.rel_query(cube, j) {
                Rel::Blocked(_) => j += 1,
                _ => break,
            }
        }
        j
    }

    /// Blocks one bad-state cube at the top frame through the
    /// proof-obligation priority queue (lowest frame first, FIFO within a
    /// frame).
    fn block_state(&mut self, cube: Cube, inputs: Vec<bool>, meter: &Meter) -> BlockOutcome {
        let mut arena = vec![Obligation {
            cube,
            inputs,
            parent: None,
        }];
        let mut queue: BinaryHeap<Reverse<(usize, u64, usize)>> = BinaryHeap::new();
        let top = self.top();
        queue.push(Reverse((top, self.next_seq(), 0)));
        while let Some(Reverse((lvl, _, idx))) = queue.pop() {
            if let Some(bounded) = self.budget_verdict(meter) {
                return BlockOutcome::Stopped(bounded);
            }
            self.stats.obligations += 1;
            let cube = arena[idx].cube.clone();
            match self.rel_query(&cube, lvl - 1) {
                Rel::Pred(pred, pred_inputs) => {
                    if pred == self.init_state {
                        return BlockOutcome::Cex(self.trace_from(&arena, idx, pred_inputs));
                    }
                    // A level-1 query assumes the init cube, so its model
                    // is always the initial state and was handled above.
                    debug_assert!(lvl >= 2, "non-initial predecessor below frame 1");
                    // Widen the concrete predecessor against the parent
                    // cube's next-state functions: every state of the
                    // widened cube steps into `cube` under `pred_inputs`.
                    let targets: Vec<(Lit, bool)> = cube
                        .iter()
                        .map(|&(ord, val)| (self.deltas[ord], val))
                        .collect();
                    let pcube = self.pred_cube(&pred, &pred_inputs, &targets);
                    arena.push(Obligation {
                        cube: pcube,
                        inputs: pred_inputs,
                        parent: Some(idx),
                    });
                    let fresh = arena.len() - 1;
                    queue.push(Reverse((lvl - 1, self.next_seq(), fresh)));
                    queue.push(Reverse((lvl, self.next_seq(), idx)));
                }
                Rel::Blocked(keep) => {
                    let generalized = self.generalize(&cube, &keep, lvl - 1);
                    let landing = self.push_forward(&generalized, lvl);
                    self.add_blocked(generalized, landing);
                    self.stats.clauses += 1;
                    if landing < top {
                        queue.push(Reverse((landing + 1, self.next_seq(), idx)));
                    }
                }
                Rel::Unknown => {
                    return BlockOutcome::Stopped(Verdict::Unknown {
                        reason: "solver gave up during obligation blocking".to_string(),
                    })
                }
            }
        }
        BlockOutcome::Blocked
    }

    /// Reconstructs the counterexample trace from an obligation chain:
    /// `init_inputs` steps the initial state into `arena[idx].cube`, each
    /// obligation's inputs step *every* state of its cube into its
    /// parent's cube (the ternary-widening invariant), and the root
    /// obligation's inputs fire `bad` from every state of its cube — so
    /// the inputs-only replay is valid wherever it lands in each cube.
    fn trace_from(&self, arena: &[Obligation], start: usize, init_inputs: Vec<bool>) -> Trace {
        let mut inputs = vec![init_inputs];
        let mut idx = start;
        loop {
            inputs.push(arena[idx].inputs.clone());
            match arena[idx].parent {
                Some(parent) => idx = parent,
                None => break,
            }
        }
        Trace::new(inputs)
    }

    /// The propagation phase: after opening a new top frame, try to move
    /// every recorded cube one frame forward. An emptied frame is the
    /// fixpoint `F_i = F_{i+1}` — the property is proved. A cube that
    /// would land at the (fresh, empty) top frame gets one extra
    /// [`Ic3Run::inf_query`]: if its clause is inductive outright it
    /// joins `F_∞` instead, leaving the finite bookkeeping entirely.
    fn propagate(&mut self, meter: &Meter) -> Result<Option<usize>, Verdict> {
        for i in 1..self.top() {
            let mut cubes = std::mem::take(&mut self.frames[i].cubes);
            let mut kept = Vec::new();
            while let Some(cube) = cubes.pop() {
                if let Some(bounded) = self.budget_verdict(meter) {
                    // Restore the bookkeeping before bailing out.
                    kept.push(cube);
                    kept.append(&mut cubes);
                    self.frames[i].cubes = kept;
                    return Err(bounded);
                }
                match self.rel_query(&cube, i) {
                    Rel::Blocked(_) => {
                        self.stats.pushed += 1;
                        if i + 1 == self.top() && matches!(self.inf_query(&cube), Rel::Blocked(_)) {
                            self.add_infinity(cube);
                        } else {
                            self.add_blocked(cube, i + 1);
                        }
                    }
                    _ => kept.push(cube),
                }
            }
            self.frames[i].cubes = kept;
            if self.frames[i].cubes.is_empty() {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Records `cube`'s clause in `F_∞`: one guarded clause under the
    /// never-retired `inf_act` generation that every query assumes, a bus
    /// publication tagged *already inductive* (consumers may fast-path
    /// admission), and a subsumption sweep over every finite frame — the
    /// infinity clause implies any finite copy, so dropping subsumed
    /// bookkeeping entries changes no frame's semantics and keeps the
    /// frame-emptiness fixpoint test exact.
    fn add_infinity(&mut self, cube: Cube) {
        let clause: Vec<SatLit> = cube
            .iter()
            .map(|&(ord, val)| !self.cnf.ensure(&self.aig, self.latch_lit(ord, val)))
            .collect();
        self.cnf.add_guarded_by(self.inf_act, &clause);
        self.stats.inf_clauses += 1;
        if let Some(bus) = &self.cfg.bus {
            if bus.publish_inductive(cube.clone()) {
                self.stats.published += 1;
            }
        }
        if self.cfg.subsume {
            let stats = &mut self.stats;
            for frame in &mut self.frames {
                frame.cubes.retain(|old| {
                    let dead = cube_subsumes(&cube, old);
                    if dead {
                        stats.subsumed += 1;
                    }
                    !dead
                });
            }
        }
        self.inf_cubes.push(cube);
    }

    fn solve(&mut self, meter: &Meter) -> Verdict {
        self.stats.frames = self.top();
        if let Some(bounded) = meter.exceeded(0, self.aig.num_nodes(), 0) {
            return bounded;
        }
        // Depth 0: can some input fire `bad` in the initial state?
        match self
            .cnf
            .solve_under_assuming(&self.aig, &[self.init_lit, self.bad], &[])
        {
            SatResult::Sat => {
                let trace = Trace::new(vec![self.read(&self.pis)]);
                return Verdict::Unsafe { trace };
            }
            SatResult::Unknown => {
                return Verdict::Unknown {
                    reason: "solver gave up on the initial-state check".to_string(),
                }
            }
            SatResult::Unsat => {}
        }
        // Warm start: replay candidate lemmas from a prior run on this
        // transition structure. Each candidate is independently
        // re-validated — well-formed, excludes the initial state, and
        // inductive relative to F₀ (`rel_query` at level 0) — before its
        // clause enters F₁, so a stale or even adversarial seed degrades
        // to wasted queries, never to a wrong verdict.
        if !self.cfg.seed.is_empty() {
            for cand in self.cfg.seed.clone() {
                if let Some(bounded) = self.budget_verdict(meter) {
                    return bounded;
                }
                let mut cube = cand;
                cube.sort_unstable_by_key(|&(ord, _)| ord);
                cube.dedup();
                let well_formed = !cube.is_empty()
                    && cube.windows(2).all(|w| w[0].0 != w[1].0)
                    && cube.iter().all(|&(ord, _)| ord < self.latches.len());
                if !well_formed || !self.excludes_init(&cube) {
                    self.stats.seed_rejected += 1;
                    continue;
                }
                match self.rel_query(&cube, 0) {
                    Rel::Blocked(_) => {
                        self.add_blocked(cube, 1);
                        self.stats.seeded += 1;
                    }
                    _ => self.stats.seed_rejected += 1,
                }
            }
        }
        loop {
            // Blocking phase: clear every bad state out of F_k.
            loop {
                if let Some(bounded) = self.budget_verdict(meter) {
                    return bounded;
                }
                let top_act = self.frames[self.top()].act;
                match self.cnf.solve_under_assuming(
                    &self.aig,
                    &[self.bad],
                    &[top_act, self.inf_act],
                ) {
                    SatResult::Unsat => break,
                    SatResult::Unknown => {
                        return Verdict::Unknown {
                            reason: "solver gave up on the bad-state check".to_string(),
                        }
                    }
                    SatResult::Sat => {
                        let state = self.read(&self.latches);
                        let inputs = self.read(&self.pis);
                        // `init ∧ bad` was refuted at depth 0.
                        debug_assert_ne!(state, self.init_state);
                        // Widen the root against `bad` itself: every
                        // state of the cube fires `bad` under `inputs`.
                        let cube = self.pred_cube(&state, &inputs, &[(self.bad, true)]);
                        match self.block_state(cube, inputs, meter) {
                            BlockOutcome::Blocked => {}
                            BlockOutcome::Cex(trace) => return Verdict::Unsafe { trace },
                            BlockOutcome::Stopped(verdict) => return verdict,
                        }
                    }
                }
            }
            // Extension: open F_{k+1} and propagate clauses forward.
            if self.top() >= self.cfg.max_frames {
                return Verdict::Unknown {
                    reason: format!("frame bound {} reached", self.cfg.max_frames),
                };
            }
            let act = self.cnf.new_guard();
            self.frames.push(Frame {
                act,
                cubes: Vec::new(),
            });
            self.stats.frames = self.top();
            self.absorb_merges();
            match self.propagate(meter) {
                Ok(Some(fix)) => return Verdict::Safe { iterations: fix },
                Ok(None) => {}
                Err(bounded) => return bounded,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{check_safe, check_unsafe};
    use cbq_ckt::generators;

    #[test]
    fn proves_safe_circuits() {
        for net in [
            generators::token_ring(6),
            generators::bounded_counter(4, 9),
            generators::gray_counter(4),
            generators::mutex(),
            generators::arbiter(4),
            generators::lfsr(5, &[0, 2]),
        ] {
            check_safe(&Ic3::default(), &net);
        }
    }

    #[test]
    fn proves_deep_gap_circuit_without_unrolling() {
        // The gap circuit's bad region sits behind a long unreachable
        // chain — BMC can never close it, IC3 converges on frames.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = Ic3::default().check(&net, &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let detail = run.detail::<Ic3Stats>().expect("ic3 stats");
        assert!(detail.frames >= 1);
        assert!(detail.clauses > 0);
    }

    #[test]
    fn finds_counterexamples_with_valid_traces() {
        // IC3 counterexamples are genuine but not necessarily minimal, so
        // no depth is pinned here (the cross-engine suite replays them).
        for net in [
            generators::token_ring_bug(5),
            generators::mutex_bug(),
            generators::shift_ones(4),
            generators::counter_bug(4, 6),
        ] {
            check_unsafe(&Ic3::default(), &net, None);
        }
    }

    #[test]
    fn bad_at_initial_state_is_a_one_step_trace() {
        let mut b = cbq_ckt::Network::builder("badinit");
        let s = b.add_latch(true);
        b.set_next(s, s.lit());
        let net = b.build(s.lit());
        let run = Ic3::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => {
                assert_eq!(trace.len(), 1);
                assert!(trace.validates(&net));
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn generalization_ablation_agrees() {
        // Every rung of the GenMode ladder must reach the same verdicts;
        // the generalization machinery only shrinks cubes and queries.
        for net in [
            generators::bounded_counter_gap(4, 6, 12),
            generators::token_ring(5),
            generators::counter_bug(4, 6),
        ] {
            let full = Ic3::default().check(&net, &Budget::unlimited());
            for mode in GenMode::ALL {
                let run = Ic3 {
                    gen: mode,
                    ..Ic3::default()
                }
                .check(&net, &Budget::unlimited());
                assert_eq!(
                    full.verdict.is_safe(),
                    run.verdict.is_safe(),
                    "{}: gen mode {mode} changed the verdict",
                    net.name()
                );
                if let Verdict::Unsafe { trace } = &run.verdict {
                    assert!(
                        trace.validates(&net),
                        "{}: gen mode {mode} trace bogus",
                        net.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gen_mode_names_round_trip() {
        for mode in GenMode::ALL {
            assert_eq!(GenMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(GenMode::parse("bogus"), None);
        assert_eq!(GenMode::default(), GenMode::Ctg);
        assert!(GenMode::Core < GenMode::Drop && GenMode::Ternary < GenMode::Ctg);
        assert!(GenMode::Ctg < GenMode::CtgDeep);
    }

    #[test]
    fn recursive_ctg_blocking_fires_and_preserves_verdicts() {
        // lfsr5 and fifo3 both produce CTGs whose own predecessors need
        // blocking; the deep rung must actually recurse there (counter
        // strictly positive), must never run below CtgDeep, and the
        // verdicts must match the flat-CTG rung exactly.
        for net in [generators::lfsr(5, &[0, 2]), generators::fifo_ctrl(3)] {
            let flat = Ic3 {
                gen: GenMode::Ctg,
                ..Ic3::default()
            }
            .check(&net, &Budget::unlimited());
            let deep = Ic3 {
                gen: GenMode::CtgDeep,
                ..Ic3::default()
            }
            .check(&net, &Budget::unlimited());
            assert_eq!(flat.verdict.is_safe(), deep.verdict.is_safe());
            let s_flat = flat.detail::<Ic3Stats>().expect("stats");
            let s_deep = deep.detail::<Ic3Stats>().expect("stats");
            assert_eq!(
                s_flat.ctg_deep_blocked, 0,
                "flat CTG mode must never recurse"
            );
            assert!(
                s_deep.ctg_deep_blocked > 0,
                "{}: deep mode never blocked a depth>1 CTG",
                net.name()
            );
        }
    }

    #[test]
    fn ternary_widening_drops_shadow_latches() {
        // The shadow register never feeds the property cone, so ternary
        // widening must X it out of every obligation — and the widened
        // runs must agree with the unwidened verdict.
        let net = generators::shadowed_counter_gap(4, 6, 12, 4);
        let plain = Ic3 {
            gen: GenMode::Drop,
            ..Ic3::default()
        }
        .check(&net, &Budget::unlimited());
        let widened = Ic3 {
            gen: GenMode::Ternary,
            ..Ic3::default()
        }
        .check(&net, &Budget::unlimited());
        assert_eq!(plain.verdict.is_safe(), widened.verdict.is_safe());
        let s_plain = plain.detail::<Ic3Stats>().expect("stats");
        let s_wide = widened.detail::<Ic3Stats>().expect("stats");
        assert_eq!(s_plain.tern_drops, 0, "Drop mode must not widen");
        assert!(s_wide.tern_drops > 0, "no literal was ternary-dropped");
    }

    #[test]
    fn inf_frame_promotes_inductive_clauses() {
        // A self-looping latch: `{a = 1}` is inductive outright, so its
        // clause must be promoted to F_∞ and still be exported as a
        // warm-start lemma.
        let mut b = cbq_ckt::Network::builder("selfloop");
        let a = b.add_latch(false);
        b.set_next(a, a.lit());
        let net = b.build(a.lit());
        let run = Ic3::default().check(&net, &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let detail = run.detail::<Ic3Stats>().expect("stats");
        assert!(detail.inf_clauses >= 1, "no clause reached F_∞");
        assert!(
            detail.lemmas.contains(&vec![(0, true)]),
            "F_∞ clause missing from the lemma export: {:?}",
            detail.lemmas
        );
    }

    #[test]
    fn ctg_retry_budget_is_floored() {
        // A zero retry budget must behave like a budget of one — the
        // floor keeps the CTG loop bounded without disabling it — and
        // verdicts must be unaffected.
        for net in [
            generators::bounded_counter_gap(4, 6, 12),
            generators::counter_bug(4, 6),
        ] {
            let run = Ic3 {
                gen: GenMode::Ctg,
                ctg_retries: 0,
                ..Ic3::default()
            }
            .check(&net, &Budget::unlimited());
            let base = Ic3::default().check(&net, &Budget::unlimited());
            assert_eq!(run.verdict.is_safe(), base.verdict.is_safe());
        }
    }

    #[test]
    fn stats_are_populated() {
        let run = Ic3::default().check(&generators::token_ring(5), &Budget::unlimited());
        assert!(run.verdict.is_safe());
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        let detail = run.detail::<Ic3Stats>().expect("ic3 stats");
        assert!(detail.frames >= 1);
        assert_eq!(detail.frames, run.stats.iterations);
        assert!(detail.obligations > 0 || detail.clauses == 0);
        assert_eq!(detail.cnf.checks, run.stats.sat_checks);
    }

    #[test]
    fn cube_subsumption_order() {
        let small = vec![(1, true), (3, false)];
        let big = vec![(0, true), (1, true), (3, false), (5, true)];
        assert!(cube_subsumes(&small, &big));
        assert!(cube_subsumes(&small, &small));
        assert!(!cube_subsumes(&big, &small));
        assert!(!cube_subsumes(&[(1, false)], &big), "value must match");
        assert!(!cube_subsumes(&[(7, true)], &big), "ordinal past the end");
    }

    #[test]
    fn subsumption_shrinks_frames_with_identical_verdicts() {
        // E6 gap model: deep safe convergence generates enough clauses
        // for stronger lemmas to subsume earlier, weaker ones. The
        // ablation must agree on the verdict and iteration count while
        // the subsuming run keeps strictly fewer recorded cubes.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let on = Ic3::default().check(&net, &Budget::unlimited());
        let off = Ic3 {
            subsume: false,
            ..Ic3::default()
        }
        .check(&net, &Budget::unlimited());
        assert!(on.verdict.is_safe(), "got {}", on.verdict);
        assert_eq!(on.verdict, off.verdict);
        let s_on = on.detail::<Ic3Stats>().expect("stats");
        let s_off = off.detail::<Ic3Stats>().expect("stats");
        assert!(s_on.subsumed > 0, "nothing was subsumed");
        assert_eq!(s_off.subsumed, 0, "ablation must not subsume");
        assert!(
            s_on.lemmas.len() < s_off.lemmas.len(),
            "frames did not shrink: {} vs {}",
            s_on.lemmas.len(),
            s_off.lemmas.len()
        );
    }

    #[test]
    fn warm_start_seed_skips_obligations() {
        // Harvest a cold run's lemmas, then re-run seeded: the verdict
        // and fixpoint frame must match, with fewer obligations.
        let net = generators::bounded_counter_gap(4, 6, 12);
        let cold = Ic3::default().check(&net, &Budget::unlimited());
        let lemmas = cold.detail::<Ic3Stats>().expect("stats").lemmas.clone();
        assert!(!lemmas.is_empty());
        let warm = Ic3 {
            seed: lemmas,
            ..Ic3::default()
        }
        .check(&net, &Budget::unlimited());
        assert_eq!(cold.verdict, warm.verdict);
        let s_cold = cold.detail::<Ic3Stats>().expect("stats");
        let s_warm = warm.detail::<Ic3Stats>().expect("stats");
        assert!(s_warm.seeded > 0, "no lemma was admitted");
        assert!(
            s_warm.obligations < s_cold.obligations,
            "warm start did not skip obligations: {} vs {}",
            s_warm.obligations,
            s_cold.obligations
        );
    }

    #[test]
    fn garbage_seed_is_rejected_not_believed() {
        // Malformed and non-inductive candidates must be filtered out
        // without changing the verdict — on safe and unsafe models.
        let junk: Vec<Vec<(usize, bool)>> = vec![
            vec![],                       // empty
            vec![(0, true), (0, false)],  // contradictory ordinal
            vec![(99, true)],             // out of range
            vec![(0, false), (1, false)], // may agree with reset
            vec![(0, true), (99, false)], // partially out of range
        ];
        for net in [generators::token_ring(5), generators::token_ring_bug(5)] {
            let plain = Ic3::default().check(&net, &Budget::unlimited());
            let seeded = Ic3 {
                seed: junk.clone(),
                ..Ic3::default()
            }
            .check(&net, &Budget::unlimited());
            assert_eq!(plain.verdict.is_safe(), seeded.verdict.is_safe());
            let s = seeded.detail::<Ic3Stats>().expect("stats");
            assert!(s.seed_rejected > 0, "junk seeds were not rejected");
        }
    }

    #[test]
    fn frame_bound_yields_unknown() {
        let net = generators::bounded_counter_gap(4, 6, 12);
        let run = Ic3 {
            max_frames: 1,
            ..Ic3::default()
        }
        .check(&net, &Budget::unlimited());
        assert!(
            matches!(run.verdict, Verdict::Unknown { .. }) || run.verdict.is_safe(),
            "got {}",
            run.verdict
        );
    }
}
