//! E6 / Table 4 — UMC engine comparison on a safe and an unsafe circuit.

use criterion::{criterion_group, criterion_main, Criterion};

use cbq_ckt::generators;
use cbq_mc::{BddUmc, Bmc, CircuitUmc, KInduction};

fn bench_umc(c: &mut Criterion) {
    let safe = generators::token_ring(8);
    let buggy = generators::token_ring_bug(8);
    let mut g = c.benchmark_group("e6-umc");
    g.sample_size(10);
    for (tag, net) in [("safe", &safe), ("buggy", &buggy)] {
        g.bench_function(format!("circuit-umc-{tag}"), |b| {
            b.iter(|| CircuitUmc::default().check(net).verdict)
        });
        g.bench_function(format!("bdd-umc-{tag}"), |b| {
            b.iter(|| BddUmc::default().check(net).verdict)
        });
        g.bench_function(format!("bmc-{tag}"), |b| {
            b.iter(|| Bmc { max_depth: 12 }.check(net).verdict)
        });
        g.bench_function(format!("kind-{tag}"), |b| {
            b.iter(|| {
                KInduction {
                    max_k: 12,
                    simple_path: true,
                }
                .check(net)
                .verdict
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_umc);
criterion_main!(benches);
