//! Bounded model checking (Biere, Cimatti, Clarke, Fujita, Zhu — DAC
//! 1999, reference [1] of the paper).
//!
//! The transition system is unrolled *functionally*: frame `t`'s state
//! bits are AIG functions of the initial constants and the input frames
//! `i₀ … i_{t-1}`, so no next-state variables ever exist — the circuit
//! analogue of in-lining. Each depth is one assumption-based SAT call on
//! the shared clause database.

use std::sync::Arc;

use cbq_aig::sim::TernSim;
use cbq_aig::{Aig, Lit, Var};
use cbq_ckt::{Network, Trace};
use cbq_cnf::AigCnf;
use cbq_sat::{SatLit, SatResult};

use crate::bus::{assume_cube_at, BusClientStats, BusCursor, LatchCube, LemmaBus, LemmaValidator};
use crate::engine::{Budget, Engine, Meter};
use crate::verdict::{McRun, McStats, Verdict};

/// Pre-unrolling reduction derived from ternary X-propagation: latches
/// proved stuck-at-constant unroll as constants, and latches that cannot
/// influence `bad` through the remaining transition functions are never
/// composed at all.
///
/// Stuck-at facts hold in *every reachable state*, and a functional
/// unrolling only ever valuates reachable states, so the reduced
/// unrolling has exactly the same counterexamples at every depth. The
/// k-induction step case ranges over arbitrary states, so it must not
/// use this reduction.
#[derive(Debug)]
struct CoiReduction {
    /// `Some(b)` when ternary X-propagation proved the latch holds `b`
    /// in every reachable state.
    stuck: Vec<Option<bool>>,
    /// Whether the latch's transition function must be unrolled (it can
    /// reach `bad` through non-stuck dependencies).
    active: Vec<bool>,
}

impl CoiReduction {
    /// Runs the widening fixpoint (all primary inputs X; a latch that can
    /// leave its current definite value widens to X) and then closes
    /// `bad`'s latch support over the non-stuck transition functions.
    fn analyse(net: &Network) -> CoiReduction {
        let aig = net.aig();
        let latches = net.latches();
        let mut sim = TernSim::new(aig, 1);
        for pi in net.primary_inputs() {
            sim.broadcast_var(*pi, None);
        }
        // Monotone: entries only ever go definite -> X, so the loop runs
        // at most |latches| + 1 iterations.
        let mut stuck: Vec<Option<bool>> = latches.iter().map(|l| Some(l.init)).collect();
        loop {
            for (l, v) in latches.iter().zip(&stuck) {
                sim.broadcast_var(l.var, *v);
            }
            sim.run(aig);
            let mut changed = false;
            for (i, l) in latches.iter().enumerate() {
                if stuck[i].is_some() && sim.lit_value(l.next, 0) != stuck[i] {
                    stuck[i] = None;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Latch ordinal by AIG variable, for reading latch supports.
        let top = latches
            .iter()
            .map(|l| l.var.index())
            .max()
            .map_or(0, |i| i + 1);
        let mut ord_of = vec![usize::MAX; top];
        for (i, l) in latches.iter().enumerate() {
            ord_of[l.var.index()] = i;
        }
        let latch_support = |root: Lit, out: &mut Vec<usize>| {
            for v in aig.collect_cone(&[root]) {
                if let Some(&o) = ord_of.get(v.index()) {
                    if o != usize::MAX {
                        out.push(o);
                    }
                }
            }
        };
        // Stuck latches read as constants, so they propagate no
        // dependencies; the closure runs over the others only.
        let mut active = vec![false; latches.len()];
        let mut support = Vec::new();
        let mut work: Vec<usize> = Vec::new();
        latch_support(net.bad(), &mut support);
        loop {
            for o in support.drain(..) {
                if stuck[o].is_none() && !active[o] {
                    active[o] = true;
                    work.push(o);
                }
            }
            match work.pop() {
                None => break,
                Some(i) => latch_support(latches[i].next, &mut support),
            }
        }
        CoiReduction { stuck, active }
    }
}

/// Incremental functional unroller, shared by BMC and the base case of
/// k-induction.
#[derive(Debug)]
pub(crate) struct Unroller {
    pub aig: Aig,
    pub cnf: AigCnf,
    /// Current-frame state functions (over initial constants and input
    /// frames created so far).
    state: Vec<Lit>,
    /// State functions of *every* frame unrolled so far (`states[t]` is
    /// the state entering frame `t`; `states[0]` is the init constants).
    /// Kept so bus lemmas can be instantiated at frames that already
    /// exist by the time they are admitted.
    pub states: Vec<Vec<Lit>>,
    /// Fresh input variables per frame.
    frame_inputs: Vec<Vec<Var>>,
    /// `bad` literal per unrolled frame.
    bads: Vec<Lit>,
    /// When set, stuck latches stay constants and pruned latches keep a
    /// frozen placeholder that no composed root — and no instantiated
    /// lemma — is allowed to read.
    coi: Option<CoiReduction>,
}

impl Unroller {
    pub fn new(net: &Network) -> Unroller {
        Unroller::build(net, None)
    }

    /// Like [`Unroller::new`] with the ternary X-propagation COI
    /// reduction enabled. Sound for exact-depth reachability queries
    /// only (see [`CoiReduction`]); k-induction keeps the plain
    /// constructor.
    pub fn with_coi_reduction(net: &Network) -> Unroller {
        Unroller::build(net, Some(CoiReduction::analyse(net)))
    }

    fn build(net: &Network, coi: Option<CoiReduction>) -> Unroller {
        let aig = net.aig().clone();
        let state: Vec<Lit> = net
            .latches()
            .iter()
            .map(|l| if l.init { Lit::TRUE } else { Lit::FALSE })
            .collect();
        Unroller {
            aig,
            cnf: AigCnf::new(),
            states: vec![state.clone()],
            state,
            frame_inputs: Vec::new(),
            bads: Vec::new(),
            coi,
        }
    }

    /// Latch-count summary of the reduction: `(stuck, pruned)`. Both 0
    /// when the reduction is off.
    pub fn coi_summary(&self) -> (usize, usize) {
        match &self.coi {
            None => (0, 0),
            Some(c) => {
                let stuck = c.stuck.iter().filter(|s| s.is_some()).count();
                let pruned = c
                    .active
                    .iter()
                    .zip(&c.stuck)
                    .filter(|(a, s)| !**a && s.is_none())
                    .count();
                (stuck, pruned)
            }
        }
    }

    /// Whether a bus cube may be instantiated on this unrolling: every
    /// literal must touch a latch whose per-frame value is actually
    /// computed (live or stuck-at-constant). Pruned latches keep a
    /// frozen placeholder that must never reach the solver.
    pub fn cube_instantiable(&self, cube: &[(usize, bool)]) -> bool {
        match &self.coi {
            None => true,
            Some(c) => cube
                .iter()
                .all(|&(ord, _)| c.active[ord] || c.stuck[ord].is_some()),
        }
    }

    /// Ensures frames `0..=depth` exist and returns `bad` at `depth`.
    pub fn bad_at(&mut self, net: &Network, depth: usize) -> Lit {
        while self.bads.len() <= depth {
            // Fresh inputs for this frame (all primary inputs get one,
            // even under COI reduction, so trace extraction is uniform).
            let fresh: Vec<Var> = net
                .primary_inputs()
                .iter()
                .map(|_| self.aig.add_input())
                .collect();
            let latches = net.latches();
            let mut subst: Vec<(Var, Lit)> = Vec::with_capacity(latches.len() + fresh.len());
            for (i, (l, s)) in latches.iter().zip(&self.state).enumerate() {
                // Pruned latches are unread by every composed root; their
                // (frozen) placeholder must not enter the substitution.
                let pruned = self
                    .coi
                    .as_ref()
                    .is_some_and(|c| !c.active[i] && c.stuck[i].is_none());
                if !pruned {
                    subst.push((l.var, *s));
                }
            }
            subst.extend(
                net.primary_inputs()
                    .iter()
                    .zip(&fresh)
                    .map(|(pi, f)| (*pi, f.lit())),
            );
            // One shared cone walk composes bad and every live
            // next-state function.
            let mut roots: Vec<Lit> = Vec::with_capacity(1 + latches.len());
            roots.push(net.bad());
            let mut live: Vec<usize> = Vec::with_capacity(latches.len());
            for (i, l) in latches.iter().enumerate() {
                // Stuck latches keep their constant; pruned ones their
                // placeholder.
                if self.coi.as_ref().is_none_or(|c| c.active[i]) {
                    live.push(i);
                    roots.push(l.next);
                }
            }
            let composed = self.aig.compose_many(&roots, &subst);
            let mut next_state = self.state.clone();
            for (k, &i) in live.iter().enumerate() {
                next_state[i] = composed[k + 1];
            }
            self.bads.push(composed[0]);
            self.frame_inputs.push(fresh);
            self.states.push(next_state.clone());
            self.state = next_state;
        }
        self.bads[depth]
    }

    /// Solves `bad` at exactly `depth` under `extra` assumptions (the
    /// lemma guard of the bus consumer; empty when no bus is attached).
    pub fn check_depth_assuming(
        &mut self,
        net: &Network,
        depth: usize,
        extra: &[SatLit],
    ) -> SatResult {
        let bad = self.bad_at(net, depth);
        self.cnf.solve_under_assuming(&self.aig, &[bad], extra)
    }

    /// Extracts the trace for a satisfiable `depth` query (model must be
    /// current).
    pub fn extract_trace(&self, net: &Network, depth: usize) -> Trace {
        let model = self.cnf.model_inputs(&self.aig);
        let inputs = (0..=depth)
            .map(|t| {
                self.frame_inputs[t]
                    .iter()
                    .map(|v| model[self.aig.input_index(*v).expect("frame input")])
                    .collect()
            })
            .collect();
        let _ = net;
        Trace::new(inputs)
    }
}

/// Bounded model checker: searches for counterexamples of increasing
/// depth up to `max_depth`.
///
/// Returns `Unsafe` with a minimal-depth trace, or `Unknown` (BMC alone
/// can never prove safety).
#[derive(Clone, Debug)]
pub struct Bmc {
    /// Maximum unrolling depth (inclusive).
    pub max_depth: usize,
    /// The parallel portfolio's [`LemmaBus`]. When set, BMC re-validates
    /// every published IC3 cube with its own [`LemmaValidator`] and
    /// instantiates the admitted clauses at every unrolled frame under
    /// one guard. In a functional unrolling from the concrete initial
    /// state every frame valuation is a reachable state, so admitted
    /// lemmas are *implied* — they can only prune the solver's search,
    /// never add or remove a counterexample.
    pub bus: Option<Arc<LemmaBus>>,
    /// Ternary X-propagation COI reduction before unrolling (on by
    /// default): stuck-at-constant latches unroll as constants, and
    /// latches that cannot influence `bad` are never composed. Verdicts
    /// and minimal counterexample depths are unchanged — stuck values
    /// hold in every reachable state, and a functional unrolling only
    /// valuates reachable states.
    pub coi_reduction: bool,
}

impl Default for Bmc {
    fn default() -> Bmc {
        Bmc {
            max_depth: 64,
            bus: None,
            coi_reduction: true,
        }
    }
}

/// Statistics of a [`Bmc`] run.
#[derive(Clone, Debug, Default)]
pub struct BmcStats {
    /// Deepest frame unrolled.
    pub depth_reached: usize,
    /// Total nodes in the unrolled AIG.
    pub unrolled_nodes: usize,
    /// SAT checks issued (one per depth, plus lemma validation).
    pub sat_checks: u64,
    /// Latches in the model.
    pub latches_total: usize,
    /// Latches proved stuck-at-constant by ternary X-propagation.
    pub latches_stuck: usize,
    /// Non-stuck latches pruned as outside the reduced COI of `bad`.
    pub latches_pruned: usize,
    /// Validated bus cubes dropped because they touch a pruned latch.
    pub coi_lemmas_skipped: u64,
    /// Lemma-bus traffic (cubes admitted/rejected after re-validation).
    pub bus: BusClientStats,
}

/// Bundles the typed stats into the uniform run record.
fn finish(verdict: Verdict, stats: BmcStats, meter: &Meter) -> McRun {
    let common = McStats {
        engine: "bmc",
        iterations: stats.depth_reached,
        peak_nodes: stats.unrolled_nodes,
        sat_checks: stats.sat_checks,
        elapsed: meter.elapsed(),
    };
    McRun::new(verdict, common).with_detail(stats)
}

impl Engine for Bmc {
    fn name(&self) -> &'static str {
        "bmc"
    }

    /// Runs BMC on `net` within `budget` (`max_steps` caps the depth).
    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut u = if self.coi_reduction {
            Unroller::with_coi_reduction(net)
        } else {
            Unroller::new(net)
        };
        let (latches_stuck, latches_pruned) = u.coi_summary();
        let mut stats = BmcStats {
            latches_total: net.latches().len(),
            latches_stuck,
            latches_pruned,
            ..BmcStats::default()
        };
        // Bus consumer state: a zero-trust validator, one guard carrying
        // every instantiated lemma clause, the read cursor, and the
        // admitted cubes (re-instantiated at each new frame).
        let mut validator = self.bus.as_ref().map(|_| LemmaValidator::new(net));
        let lemma_guard = validator.as_ref().map(|_| u.cnf.new_guard());
        let extra: Vec<SatLit> = lemma_guard.iter().copied().collect();
        let mut cursor = BusCursor::default();
        let mut admitted: Vec<LatchCube> = Vec::new();
        let mut pending: Vec<LatchCube> = Vec::new();
        let mut tagged_rejected: u64 = 0;
        let mut verdict = Verdict::Unknown {
            reason: format!("no counterexample up to depth {}", self.max_depth),
        };
        for d in 0..=self.max_depth {
            if let Some(bounded) = meter.exceeded(d, u.aig.num_nodes(), u.cnf.stats().checks) {
                verdict = bounded;
                break;
            }
            stats.depth_reached = d;
            u.bad_at(net, d);
            if let (Some(bus), Some(v), Some(guard)) =
                (self.bus.as_deref(), validator.as_mut(), lemma_guard)
            {
                // Previously admitted lemmas reach the newly opened frame
                // first, then fresh publications cover frames 1..=d (the
                // frame-0 instantiation is a constant-true clause — skip).
                if d >= 1 {
                    for cube in &admitted {
                        assume_cube_at(&mut u.cnf, &u.aig, guard, &u.states[d], cube);
                    }
                }
                let fresh = bus.cubes_since(&mut cursor);
                if !fresh.is_empty() {
                    // Tagged (already inductive) publications take the
                    // sequential fast path; untagged ones join the
                    // mutual-induction batch pool. A fast-path rejection
                    // is final; pool cubes stay pending for later rounds.
                    let mut tagged: Vec<LatchCube> = Vec::new();
                    for (cube, inductive) in fresh {
                        if inductive {
                            tagged.push(cube);
                        } else {
                            pending.push(cube);
                        }
                    }
                    let mut batch = v.admit_inductive(&tagged);
                    tagged_rejected += (tagged.len() - batch.len()) as u64;
                    if !pending.is_empty() {
                        let from_pool = v.admit_batch(&pending);
                        pending.retain(|c| !from_pool.contains(c));
                        batch.extend(from_pool);
                    }
                    stats.bus.lemmas_admitted += batch.len() as u64;
                    stats.bus.lemmas_rejected = tagged_rejected + pending.len() as u64;
                    for norm in batch {
                        // A cube over a pruned latch has no per-frame
                        // value to bind against — dropping it only loses
                        // pruning power, never soundness.
                        if !u.cube_instantiable(&norm) {
                            stats.coi_lemmas_skipped += 1;
                            continue;
                        }
                        for t in 1..=d {
                            assume_cube_at(&mut u.cnf, &u.aig, guard, &u.states[t], &norm);
                        }
                        admitted.push(norm);
                    }
                }
            }
            match u.check_depth_assuming(net, d, &extra) {
                SatResult::Sat => {
                    let trace = u.extract_trace(net, d);
                    verdict = Verdict::Unsafe { trace };
                    break;
                }
                SatResult::Unsat => {}
                SatResult::Unknown => {
                    verdict = Verdict::Unknown {
                        reason: format!("solver budget at depth {d}"),
                    };
                    break;
                }
            }
        }
        stats.unrolled_nodes = u.aig.num_nodes();
        stats.sat_checks = u.cnf.stats().checks + validator.as_ref().map_or(0, |v| v.checks());
        finish(verdict, stats, &meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn finds_minimal_depth_counterexamples() {
        for (net, depth) in [
            (generators::counter_bug(5, 7), 7),
            (generators::token_ring_bug(5), 3),
            (generators::mutex_bug(), 2),
            (generators::shift_ones(4), 4),
        ] {
            let run = Bmc::default().check(&net, &Budget::unlimited());
            match run.verdict {
                Verdict::Unsafe { trace } => {
                    assert_eq!(trace.len(), depth + 1, "{}", net.name());
                    assert!(trace.validates(&net), "{}", net.name());
                }
                other => panic!("{} expected unsafe, got {other}", net.name()),
            }
        }
    }

    #[test]
    fn safe_circuit_is_unknown() {
        let run = Bmc {
            max_depth: 20,
            ..Bmc::default()
        }
        .check(&generators::token_ring(4), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
        assert_eq!(run.detail::<BmcStats>().unwrap().depth_reached, 20);
        assert_eq!(run.stats.iterations, 20);
    }

    #[test]
    fn depth_budget_bounds_the_search() {
        // The bug sits at depth 7; a 3-step budget must trip first.
        let run = Bmc::default().check(
            &generators::counter_bug(5, 7),
            &Budget::unlimited().with_steps(3),
        );
        assert!(run.verdict.is_bounded(), "got {}", run.verdict);
        assert!(run.stats.iterations <= 3);
    }

    #[test]
    fn bound_below_bug_depth_misses_it() {
        let run = Bmc {
            max_depth: 5,
            ..Bmc::default()
        }
        .check(&generators::counter_bug(5, 7), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn coi_reduction_prunes_and_preserves_counterexamples() {
        // Four latches: `stuck` never leaves its init, `dead` toggles
        // forever but feeds nothing, and a two-stage pipeline carries a
        // 1 into `bad` (gated on the stuck latch staying 0) at depth 2.
        let mut b = cbq_ckt::Network::builder("coi");
        let stuck = b.add_latch(false);
        b.set_next(stuck, stuck.lit());
        let dead = b.add_latch(false);
        b.set_next(dead, !dead.lit());
        let p0 = b.add_latch(false);
        b.set_next(p0, Lit::TRUE);
        let p1 = b.add_latch(false);
        b.set_next(p1, p0.lit());
        let bad = b.aig_mut().and(p1.lit(), !stuck.lit());
        let net = b.build(bad);

        let reduced = Bmc::default().check(&net, &Budget::unlimited());
        let full = Bmc {
            coi_reduction: false,
            ..Bmc::default()
        }
        .check(&net, &Budget::unlimited());
        for run in [&reduced, &full] {
            match &run.verdict {
                Verdict::Unsafe { trace } => {
                    assert_eq!(trace.len(), 3);
                    assert!(trace.validates(&net));
                }
                other => panic!("expected unsafe, got {other}"),
            }
        }
        let rs = reduced.detail::<BmcStats>().unwrap();
        assert_eq!(rs.latches_total, 4);
        assert_eq!(rs.latches_stuck, 1, "stuck latch not detected");
        assert_eq!(rs.latches_pruned, 1, "dead latch not pruned");
        let fs = full.detail::<BmcStats>().unwrap();
        assert_eq!((fs.latches_stuck, fs.latches_pruned), (0, 0));
        assert!(
            rs.unrolled_nodes <= fs.unrolled_nodes,
            "reduction grew the unrolling: {} > {}",
            rs.unrolled_nodes,
            fs.unrolled_nodes
        );
    }

    #[test]
    fn bad_at_initial_state() {
        // Latch initialised to 1 with bad = latch: depth-0 cex.
        let mut b = cbq_ckt::Network::builder("badinit");
        let s = b.add_latch(true);
        b.set_next(s, s.lit());
        let net = b.build(s.lit());
        let run = Bmc::default().check(&net, &Budget::unlimited());
        match run.verdict {
            Verdict::Unsafe { trace } => assert_eq!(trace.len(), 1),
            other => panic!("expected unsafe, got {other}"),
        }
    }
}
