//! The portfolio engine: a budget-sliced sequence of member engines.
//!
//! The paper's Section 4 pitch is that circuit quantification and SAT
//! pre-image are stronger *combined* than either alone; the portfolio
//! expresses that as engine composition. Members run in order and the
//! first conclusive verdict (safe or unsafe) wins. The caller's
//! [`Budget`] is shared: cumulative axes (steps, SAT checks) hand each
//! member whatever the previous members left over, the wall clock is
//! divided among the members still to run (so an early member cannot
//! starve the rest), and the node limit — a peak, not a sum, since each
//! member builds and drops its own manager — passes through whole. The
//! standard lineup — BMC for quick refutation, k-induction for quick
//! proofs, IC3 for convergence on deep non-inductive properties, then
//! the circuit and BDD traversals — settles easy instances in the cheap
//! engines and only pays for a full traversal when it must.

use cbq_ckt::Network;

use crate::bdd_umc::BddUmc;
use crate::bmc::Bmc;
use crate::circuit_umc::CircuitUmc;
use crate::engine::{Budget, Engine, Meter};
use crate::ic3::Ic3;
use crate::induction::KInduction;
use crate::verdict::{McRun, McStats, Resource, Verdict};

/// Runs member engines in sequence and returns the first conclusive
/// verdict.
pub struct Portfolio {
    /// The member engines, in execution order.
    pub members: Vec<Box<dyn Engine>>,
}

/// Per-member outcomes of a [`Portfolio`] run, attached as the run's
/// detail record.
#[derive(Clone, Debug)]
pub struct PortfolioStats {
    /// `(engine name, run)` for every member that executed, in order.
    /// The winning member, if any, is last.
    pub runs: Vec<(&'static str, McRun)>,
}

impl Portfolio {
    /// A portfolio over the given members.
    pub fn new(members: Vec<Box<dyn Engine>>) -> Portfolio {
        Portfolio { members }
    }

    /// The standard lineup: `bmc`, `kind`, `ic3`, `circuit`, `bdd`, with
    /// member depth caps tightened so the refutation-only stages finish
    /// fast. IC3 sits between the inductive prover and the full
    /// traversals: it converges on deep non-inductive properties that
    /// k-induction's depth cap misses, without paying for a state-set
    /// fixpoint.
    pub fn standard() -> Portfolio {
        Portfolio::new(vec![
            Box::new(Bmc { max_depth: 32 }),
            Box::new(KInduction {
                max_k: 40,
                simple_path: true,
            }),
            Box::new(Ic3::default()),
            Box::new(CircuitUmc::default()),
            Box::new(BddUmc::default()),
        ])
    }
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::standard()
    }
}

impl Engine for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn check(&self, net: &Network, budget: &Budget) -> McRun {
        let meter = Meter::start(budget);
        let mut stats = McStats {
            engine: self.name(),
            ..McStats::default()
        };
        let mut detail = PortfolioStats { runs: Vec::new() };
        let finish = |verdict, mut stats: McStats, detail, meter: &Meter| {
            stats.elapsed = meter.elapsed();
            McRun::new(verdict, stats).with_detail::<PortfolioStats>(detail)
        };
        if self.members.is_empty() {
            let verdict = Verdict::Unknown {
                reason: "portfolio has no members".to_string(),
            };
            return finish(verdict, stats, detail, &meter);
        }
        // A zero budget bounds the portfolio before any member runs.
        if let Some(verdict) = meter.exceeded(0, 0, 0) {
            return finish(verdict, stats, detail, &meter);
        }
        let mut last_bounded: Option<Verdict> = None;
        for (i, member) in self.members.iter().enumerate() {
            let left = (self.members.len() - i) as u32;
            let slice = Budget {
                // Cumulative axes: whatever the caller's budget has left.
                max_steps: budget.max_steps.map(|s| s.saturating_sub(stats.iterations)),
                max_sat_checks: budget
                    .max_sat_checks
                    .map(|s| s.saturating_sub(stats.sat_checks)),
                // Peak axis: each member builds and drops its own
                // manager, so the caller's limit applies whole.
                max_nodes: budget.max_nodes,
                // Divide the remaining clock among the members still to
                // run, so an early member cannot starve the rest.
                timeout: budget
                    .timeout
                    .map(|t| t.saturating_sub(meter.elapsed()) / left),
            };
            let run = member.check(net, &slice);
            // A member bounded on a cumulative axis consumed exactly its
            // slice limit (engines trip at `spent >= limit`); its own
            // iteration counter can sit one below that, which would
            // over-grant the next member.
            stats.iterations += match run.verdict {
                Verdict::Bounded {
                    resource: Resource::Steps,
                    limit,
                } => limit as usize,
                _ => run.stats.iterations,
            };
            stats.sat_checks += match run.verdict {
                Verdict::Bounded {
                    resource: Resource::SatChecks,
                    limit,
                } => limit,
                _ => run.stats.sat_checks,
            };
            stats.peak_nodes = stats.peak_nodes.max(run.stats.peak_nodes);
            let conclusive = run.verdict.is_conclusive();
            if run.verdict.is_bounded() {
                last_bounded = Some(run.verdict.clone());
            }
            let verdict = run.verdict.clone();
            detail.runs.push((member.name(), run));
            if conclusive {
                return finish(verdict, stats, detail, &meter);
            }
            // Stop once the caller's own budget is spent — this reports
            // the limits the caller actually set, not a member's slice.
            if let Some(bounded) =
                meter.exceeded(stats.iterations, stats.peak_nodes, stats.sat_checks)
            {
                return finish(bounded, stats, detail, &meter);
            }
        }
        // Nothing conclusive: report budget exhaustion if any member hit
        // it — citing the caller's limit, not the member's slice — else
        // the portfolio as a whole is stumped.
        let verdict = match last_bounded {
            Some(Verdict::Bounded { resource, limit }) => Verdict::Bounded {
                resource,
                limit: caller_limit(budget, resource).unwrap_or(limit),
            },
            _ => Verdict::Unknown {
                reason: "no member engine was conclusive".to_string(),
            },
        };
        finish(verdict, stats, detail, &meter)
    }
}

/// The caller's own limit on `resource`, for rewriting a member's
/// slice-derived `Bounded` verdict. Members are only ever bounded on
/// axes the caller budgeted, so this is `Some` in practice.
fn caller_limit(budget: &Budget, resource: Resource) -> Option<u64> {
    match resource {
        Resource::Steps => budget.max_steps.map(|s| s as u64),
        Resource::Nodes => budget.max_nodes.map(|s| s as u64),
        Resource::SatChecks => budget.max_sat_checks,
        Resource::WallClock => budget.timeout.map(|t| t.as_millis() as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_ckt::generators;

    #[test]
    fn settles_safe_and_buggy_circuits() {
        let portfolio = Portfolio::standard();
        let run = portfolio.check(&generators::token_ring(5), &Budget::unlimited());
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
        let detail = run.detail::<PortfolioStats>().expect("portfolio stats");
        // BMC cannot prove safety, so a later member must have won.
        assert!(detail.runs.len() >= 2);
        assert!(detail.runs.last().unwrap().1.verdict.is_safe());

        let buggy = generators::token_ring_bug(5);
        let run = portfolio.check(&buggy, &Budget::unlimited());
        match &run.verdict {
            Verdict::Unsafe { trace } => {
                assert!(trace.validates(&buggy));
                assert_eq!(trace.len(), 4, "BMC member finds the minimal cex");
            }
            other => panic!("expected unsafe, got {other}"),
        }
    }

    #[test]
    fn aggregates_member_stats() {
        let run = Portfolio::standard().check(&generators::mutex(), &Budget::unlimited());
        assert!(run.stats.sat_checks > 0);
        assert!(run.stats.peak_nodes > 0);
        assert_eq!(run.stats.engine, "portfolio");
    }

    #[test]
    fn zero_budget_is_bounded_immediately() {
        let run = Portfolio::standard().check(
            &generators::token_ring(5),
            &Budget::unlimited().with_steps(0),
        );
        assert!(run.verdict.is_bounded(), "got {}", run.verdict);
        assert!(run.detail::<PortfolioStats>().unwrap().runs.is_empty());
    }

    #[test]
    fn small_step_budget_reaches_the_first_member_whole() {
        // A 5-step budget must hand the BMC member enough depth frames
        // to find the depth-3 bug (an even per-member split would give
        // each of the four members one step and find nothing).
        let buggy = generators::token_ring_bug(5);
        let run = Portfolio::standard().check(&buggy, &Budget::unlimited().with_steps(5));
        assert!(run.verdict.is_unsafe(), "got {}", run.verdict);
    }

    #[test]
    fn node_budget_applies_per_member_not_divided() {
        // The node axis is a peak: a limit that covers the largest
        // single member must let the portfolio conclude.
        let net = generators::mutex();
        let generous = Portfolio::standard().check(&net, &Budget::unlimited());
        let peak = generous.stats.peak_nodes;
        assert!(generous.verdict.is_safe());
        let run = Portfolio::standard().check(&net, &Budget::unlimited().with_nodes(peak));
        assert!(run.verdict.is_safe(), "got {}", run.verdict);
    }

    #[test]
    fn empty_portfolio_is_unknown() {
        let run = Portfolio::new(Vec::new()).check(&generators::mutex(), &Budget::unlimited());
        assert!(matches!(run.verdict, Verdict::Unknown { .. }));
    }
}
