//! # cbq-sat — a CDCL SAT solver with an incremental interface
//!
//! The DATE 2005 paper builds its merge and optimisation phases on
//! *factorised* SAT checks: "we load the clause database once and for-all,
//! and we factorize several checks together within a single ZChaff run".
//! This crate provides the solver that makes that workflow possible: a
//! conflict-driven clause-learning (CDCL) solver in the ZChaff/MiniSat
//! lineage with
//!
//! * a **contiguous `u32` clause arena** ([`arena::ClauseArena`]): every
//!   clause is a header-plus-literals run addressed by a typed
//!   [`arena::CRef`], watcher lists carry `CRef` + blocker literal, and
//!   reduce-DB compacts the arena in place instead of freeing per-clause
//!   `Vec`s,
//! * two-watched-literal propagation,
//! * first-UIP conflict analysis with clause minimisation,
//! * VSIDS variable activities, saved-phase **and target-phase**
//!   branching polarity (alternating restarts replay the deepest trail
//!   seen so far),
//! * **LBD (glue) scoring at learn time** with glue-tiered learnt-clause
//!   reduction (glue ≤ 2 is never deleted) and Luby-sequence restarts,
//! * **incremental solving under assumptions** ([`Solver::solve_with`]):
//!   the clause database (including learnt clauses) persists across calls,
//!   so successive equivalence checks share everything already derived,
//! * failed-assumption extraction ([`Solver::failed_assumptions`]) and
//!   **per-call** conflict budgets ([`Solver::set_conflict_budget`]) for
//!   abortable checks,
//! * a [`SatBackend`] trait with the exhaustive
//!   [`reference::ReferenceSolver`] as a differential oracle.
//!
//! ## Example
//!
//! ```
//! use cbq_sat::{Solver, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.pos(), b.pos()]);
//! s.add_clause(&[a.neg(), b.pos()]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! // The same database, incrementally, under an assumption:
//! assert_eq!(s.solve_with(&[b.neg()]), SatResult::Unsat);
//! assert_eq!(s.solve(), SatResult::Sat); // still satisfiable overall
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod solver;
mod types;

pub mod arena;
pub mod dimacs;
pub mod drat;
pub mod proof;
pub mod reference;

pub use crate::backend::SatBackend;
pub use crate::proof::{ClauseId, ProofEvent, ProofLog, ProofMode};
pub use crate::solver::{Solver, SolverStats, LBD_BUCKETS};
pub use crate::types::{Lbool, SatLit, SatResult, SatVar};
