//! # cbq-bdd — reduced ordered binary decision diagrams
//!
//! A classic hash-consed ROBDD package in the CUDD/Kuehlmann–Krohm
//! tradition, serving two roles in the reproduction of the DATE 2005
//! paper:
//!
//! 1. **BDD sweeping** (merge-phase tier 2): candidate equivalences between
//!    cofactor sub-circuits are confirmed by building *size-bounded* BDDs
//!    bottom-up from the AIG ([`BddManager::from_aig`] with a node limit) —
//!    two nodes with the same BDD are equivalent, canonically.
//! 2. **Baseline model checker**: the canonical state-set representation
//!    the paper argues against; backward reachability over BDDs uses
//!    [`BddManager::vector_compose`] (functional pre-image) and
//!    [`BddManager::exists`].
//!
//! All potentially exploding operations have `*_limited` variants that
//! abort (returning `None`) once the manager exceeds a node budget —
//! mirroring how sweeping keeps BDDs small and how the evaluation measures
//! BDD blow-up.
//!
//! ## Example
//!
//! ```
//! use cbq_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! let g = m.or(x, y);
//! // canonical: xor == (x|y) & !(x&y)
//! let nx = m.not(f);
//! let h = m.and(g, nx);
//! let x1 = m.xor(x, y);
//! assert_eq!(h, x1);
//! assert_eq!(m.sat_count(h), 4.0); // 2 of 4 over (x,y), times 2 for z
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use cbq_aig::{Aig, Lit, Node, Var};

/// A reference to a BDD node (index into the manager).
///
/// `BddRef::ZERO` and `BddRef::ONE` are the terminals.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false BDD.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant-true BDD.
    pub const ONE: BddRef = BddRef(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::ZERO => write!(f, "⊥"),
            BddRef::ONE => write!(f, "⊤"),
            other => write!(f, "bdd{}", other.0),
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct BddNode {
    level: u32,
    hi: BddRef,
    lo: BddRef,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A reduced ordered BDD manager with a fixed (but growable) number of
/// levels.
///
/// Levels *are* the variable order: level 0 is the topmost decision.
/// Callers map their own variables onto levels (e.g. an interleaved
/// current/next-state order for model checking).
#[derive(Clone)]
pub struct BddManager {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    apply_cache: HashMap<(Op, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    num_vars: usize,
}

const TERMINAL_LEVEL: u32 = u32::MAX;

impl BddManager {
    /// Creates a manager with `num_vars` levels.
    pub fn new(num_vars: usize) -> BddManager {
        BddManager {
            nodes: vec![
                BddNode {
                    level: TERMINAL_LEVEL,
                    hi: BddRef::ZERO,
                    lo: BddRef::ZERO,
                },
                BddNode {
                    level: TERMINAL_LEVEL,
                    hi: BddRef::ONE,
                    lo: BddRef::ONE,
                },
            ],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of levels (variables).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of nodes ever created (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant-false BDD.
    pub fn zero(&self) -> BddRef {
        BddRef::ZERO
    }

    /// The constant-true BDD.
    pub fn one(&self) -> BddRef {
        BddRef::ONE
    }

    /// The projection function of `level`, growing the level count if
    /// needed.
    pub fn var(&mut self, level: u32) -> BddRef {
        if level as usize >= self.num_vars {
            self.num_vars = level as usize + 1;
        }
        self.mk(level, BddRef::ONE, BddRef::ZERO)
    }

    /// The level of the root decision of `f` (`None` for terminals).
    pub fn root_level(&self, f: BddRef) -> Option<u32> {
        let l = self.nodes[f.index()].level;
        (l != TERMINAL_LEVEL).then_some(l)
    }

    fn level(&self, f: BddRef) -> u32 {
        self.nodes[f.index()].level
    }

    fn hi(&self, f: BddRef) -> BddRef {
        self.nodes[f.index()].hi
    }

    fn lo(&self, f: BddRef) -> BddRef {
        self.nodes[f.index()].lo
    }

    fn mk(&mut self, level: u32, hi: BddRef, lo: BddRef) -> BddRef {
        if hi == lo {
            return hi;
        }
        debug_assert!(level < self.level(hi) && level < self.level(lo));
        if let Some(&r) = self.unique.get(&(level, hi, lo)) {
            return r;
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("BDD node overflow"));
        self.nodes.push(BddNode { level, hi, lo });
        self.unique.insert((level, hi, lo), r);
        r
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        if f == BddRef::ZERO {
            return BddRef::ONE;
        }
        if f == BddRef::ONE {
            return BddRef::ZERO;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let (level, hi, lo) = (self.level(f), self.hi(f), self.lo(f));
        let nh = self.not(hi);
        let nl = self.not(lo);
        let r = self.mk(level, nh, nl);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    fn apply_terminal(op: Op, f: BddRef, g: BddRef) -> Option<BddRef> {
        match op {
            Op::And => {
                if f == BddRef::ZERO || g == BddRef::ZERO {
                    Some(BddRef::ZERO)
                } else if f == BddRef::ONE {
                    Some(g)
                } else if g == BddRef::ONE || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Or => {
                if f == BddRef::ONE || g == BddRef::ONE {
                    Some(BddRef::ONE)
                } else if f == BddRef::ZERO {
                    Some(g)
                } else if g == BddRef::ZERO || f == g {
                    Some(f)
                } else {
                    None
                }
            }
            Op::Xor => {
                if f == g {
                    Some(BddRef::ZERO)
                } else if f == BddRef::ZERO {
                    Some(g)
                } else if g == BddRef::ZERO {
                    Some(f)
                } else {
                    None
                }
            }
        }
    }

    fn apply(&mut self, op: Op, f: BddRef, g: BddRef, limit: Option<usize>) -> Option<BddRef> {
        if let Some(r) = Self::apply_terminal(op, f, g) {
            return Some(r);
        }
        // Commutative ops: normalise the cache key.
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.apply_cache.get(&key) {
            return Some(r);
        }
        if let Some(cap) = limit {
            if self.nodes.len() > cap {
                return None;
            }
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let top = lf.min(lg);
        let (fh, fl) = if lf == top {
            (self.hi(f), self.lo(f))
        } else {
            (f, f)
        };
        let (gh, gl) = if lg == top {
            (self.hi(g), self.lo(g))
        } else {
            (g, g)
        };
        let h = self.apply(op, fh, gh, limit)?;
        let l = self.apply(op, fl, gl, limit)?;
        let r = self.mk(top, h, l);
        self.apply_cache.insert(key, r);
        Some(r)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::And, f, g, None).expect("unlimited")
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Or, f, g, None).expect("unlimited")
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.apply(Op::Xor, f, g, None).expect("unlimited")
    }

    /// Equivalence.
    pub fn iff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// If-then-else.
    pub fn ite(&mut self, c: BddRef, t: BddRef, e: BddRef) -> BddRef {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let ce = self.and(nc, e);
        self.or(ct, ce)
    }

    /// Conjunction that aborts with `None` if the manager would exceed
    /// `cap` nodes.
    pub fn and_limited(&mut self, f: BddRef, g: BddRef, cap: usize) -> Option<BddRef> {
        self.apply(Op::And, f, g, Some(cap))
    }

    /// Disjunction with a node cap (see [`BddManager::and_limited`]).
    pub fn or_limited(&mut self, f: BddRef, g: BddRef, cap: usize) -> Option<BddRef> {
        self.apply(Op::Or, f, g, Some(cap))
    }

    /// The cofactor of `f` by `level = value`.
    pub fn restrict(&mut self, f: BddRef, level: u32, value: bool) -> BddRef {
        if f.is_const() || self.level(f) > level {
            return f;
        }
        if self.level(f) == level {
            return if value { self.hi(f) } else { self.lo(f) };
        }
        let (lvl, hi, lo) = (self.level(f), self.hi(f), self.lo(f));
        let h = self.restrict(hi, level, value);
        let l = self.restrict(lo, level, value);
        self.mk(lvl, h, l)
    }

    /// Existential quantification of the (sorted or unsorted) `levels`.
    pub fn exists(&mut self, f: BddRef, levels: &[u32]) -> BddRef {
        self.exists_limited(f, levels, usize::MAX)
            .expect("unlimited")
    }

    /// Existential quantification with a node cap.
    pub fn exists_limited(&mut self, f: BddRef, levels: &[u32], cap: usize) -> Option<BddRef> {
        let mut sorted: Vec<u32> = levels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo = HashMap::new();
        self.exists_rec(f, &sorted, cap, &mut memo)
    }

    fn exists_rec(
        &mut self,
        f: BddRef,
        levels: &[u32],
        cap: usize,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> Option<BddRef> {
        if f.is_const() {
            return Some(f);
        }
        let lvl = self.level(f);
        // Quantified levels strictly above the root are irrelevant.
        let rest: &[u32] = {
            let pos = levels.partition_point(|&l| l < lvl);
            &levels[pos..]
        };
        if rest.is_empty() {
            return Some(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Some(r);
        }
        if self.nodes.len() > cap {
            return None;
        }
        let (hi, lo) = (self.hi(f), self.lo(f));
        let h = self.exists_rec(hi, rest, cap, memo)?;
        let l = self.exists_rec(lo, rest, cap, memo)?;
        let r = if rest.first() == Some(&lvl) {
            self.apply(Op::Or, h, l, Some(cap))?
        } else {
            self.mk(lvl, h, l)
        };
        memo.insert(f, r);
        Some(r)
    }

    /// Universal quantification of `levels`.
    pub fn forall(&mut self, f: BddRef, levels: &[u32]) -> BddRef {
        let nf = self.not(f);
        let e = self.exists(nf, levels);
        self.not(e)
    }

    /// The relational product `∃ levels. f ∧ g`, computed without building
    /// the full conjunction first (classical and-exists).
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, levels: &[u32]) -> BddRef {
        let mut sorted: Vec<u32> = levels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, &sorted, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: BddRef,
        g: BddRef,
        levels: &[u32],
        memo: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if f == BddRef::ZERO || g == BddRef::ZERO {
            return BddRef::ZERO;
        }
        if f == BddRef::ONE && g == BddRef::ONE {
            return BddRef::ONE;
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let lf = self.level(f);
        let lg = self.level(g);
        let top = lf.min(lg);
        if top == TERMINAL_LEVEL {
            // Both terminal (handled above except f/g = ONE mix).
            return Self::apply_terminal(Op::And, f, g).expect("terminals");
        }
        let rest: &[u32] = {
            let pos = levels.partition_point(|&l| l < top);
            &levels[pos..]
        };
        if rest.is_empty() {
            // No quantified level below: plain conjunction.
            let r = self.and(f, g);
            memo.insert(key, r);
            return r;
        }
        let (fh, fl) = if lf == top {
            (self.hi(f), self.lo(f))
        } else {
            (f, f)
        };
        let (gh, gl) = if lg == top {
            (self.hi(g), self.lo(g))
        } else {
            (g, g)
        };
        let r = if rest.first() == Some(&top) {
            let h = self.and_exists_rec(fh, gh, rest, memo);
            if h == BddRef::ONE {
                BddRef::ONE
            } else {
                let l = self.and_exists_rec(fl, gl, rest, memo);
                self.or(h, l)
            }
        } else {
            let h = self.and_exists_rec(fh, gh, rest, memo);
            let l = self.and_exists_rec(fl, gl, rest, memo);
            self.mk(top, h, l)
        };
        memo.insert(key, r);
        r
    }

    /// Simultaneous functional substitution: every level in `subst` is
    /// replaced by the corresponding BDD (vector compose). Levels not in
    /// `subst` remain decision variables.
    ///
    /// This is the BDD analogue of AIG pre-image in-lining:
    /// `Pre(F)(s,i) = F[s ← δ(s,i)]`.
    pub fn vector_compose(&mut self, f: BddRef, subst: &HashMap<u32, BddRef>) -> BddRef {
        let mut memo = HashMap::new();
        self.vcompose_rec(f, subst, &mut memo)
    }

    fn vcompose_rec(
        &mut self,
        f: BddRef,
        subst: &HashMap<u32, BddRef>,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lvl, hi, lo) = (self.level(f), self.hi(f), self.lo(f));
        let h = self.vcompose_rec(hi, subst, memo);
        let l = self.vcompose_rec(lo, subst, memo);
        let c = match subst.get(&lvl) {
            Some(&g) => g,
            None => self.var(lvl),
        };
        let r = self.ite(c, h, l);
        memo.insert(f, r);
        r
    }

    /// Number of satisfying assignments over all [`BddManager::num_vars`]
    /// levels, as `f64` (exact for small counts).
    pub fn sat_count(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        let frac = self.count_rec(f, &mut memo);
        frac * 2f64.powi(self.num_vars as i32)
    }

    /// The fraction of assignments satisfying `f` (between 0 and 1).
    fn count_rec(&self, f: BddRef, memo: &mut HashMap<BddRef, f64>) -> f64 {
        if f == BddRef::ZERO {
            return 0.0;
        }
        if f == BddRef::ONE {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let h = self.count_rec(self.hi(f), memo);
        let l = self.count_rec(self.lo(f), memo);
        let c = 0.5 * (h + l);
        memo.insert(f, c);
        c
    }

    /// One satisfying assignment (by level), if any; unconstrained levels
    /// are `None`.
    pub fn one_sat(&self, f: BddRef) -> Option<Vec<Option<bool>>> {
        if f == BddRef::ZERO {
            return None;
        }
        let mut out = vec![None; self.num_vars];
        let mut cur = f;
        while cur != BddRef::ONE {
            let lvl = self.level(cur) as usize;
            if self.hi(cur) != BddRef::ZERO {
                out[lvl] = Some(true);
                cur = self.hi(cur);
            } else {
                out[lvl] = Some(false);
                cur = self.lo(cur);
            }
        }
        Some(out)
    }

    /// Evaluates `f` under a complete assignment by level.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let lvl = self.level(cur) as usize;
            cur = if assignment[lvl] {
                self.hi(cur)
            } else {
                self.lo(cur)
            };
        }
        cur == BddRef::ONE
    }

    /// Number of decision nodes in the sub-DAG rooted at `f`.
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_const() || !seen.insert(n) {
                continue;
            }
            stack.push(self.hi(n));
            stack.push(self.lo(n));
        }
        seen.len()
    }

    /// Builds the BDD of an AIG cone bottom-up, mapping each AIG input
    /// variable to the level given by `var_level`. Aborts with `None` if
    /// the manager grows beyond `cap` nodes (pass `usize::MAX` for
    /// unlimited).
    ///
    /// # Panics
    ///
    /// Panics if the cone references an input missing from `var_level`.
    pub fn from_aig(
        &mut self,
        aig: &Aig,
        root: Lit,
        var_level: &HashMap<Var, u32>,
        cap: usize,
    ) -> Option<BddRef> {
        let mut memo: HashMap<Var, BddRef> = HashMap::new();
        for v in aig.collect_cone(&[root]) {
            let b = match aig.node(v) {
                Node::Const => BddRef::ZERO,
                Node::Input { .. } => {
                    let lvl = *var_level
                        .get(&v)
                        .expect("AIG input missing from the level map");
                    self.var(lvl)
                }
                Node::And { f0, f1 } => {
                    let a = Self::edge(&memo, self, f0);
                    let b = Self::edge(&memo, self, f1);
                    self.apply(Op::And, a, b, Some(cap))?
                }
            };
            memo.insert(v, b);
        }
        let r = memo[&root.var()];
        Some(if root.is_complemented() {
            self.not(r)
        } else {
            r
        })
    }

    fn edge(memo: &HashMap<Var, BddRef>, me: &mut BddManager, l: Lit) -> BddRef {
        let b = memo[&l.var()];
        if l.is_complemented() {
            me.not(b)
        } else {
            b
        }
    }

    /// Dumps `f` into an AIG as a multiplexer tree over `level_lit`
    /// (the AIG literal to use for each level).
    pub fn to_aig(&self, aig: &mut Aig, f: BddRef, level_lit: &[Lit]) -> Lit {
        let mut memo: HashMap<BddRef, Lit> = HashMap::new();
        self.to_aig_rec(aig, f, level_lit, &mut memo)
    }

    fn to_aig_rec(
        &self,
        aig: &mut Aig,
        f: BddRef,
        level_lit: &[Lit],
        memo: &mut HashMap<BddRef, Lit>,
    ) -> Lit {
        if f == BddRef::ZERO {
            return Lit::FALSE;
        }
        if f == BddRef::ONE {
            return Lit::TRUE;
        }
        if let Some(&l) = memo.get(&f) {
            return l;
        }
        let c = level_lit[self.level(f) as usize];
        let h = self.to_aig_rec(aig, self.hi(f), level_lit, memo);
        let l = self.to_aig_rec(aig, self.lo(f), level_lit, memo);
        let r = aig.ite(c, h, l);
        memo.insert(f, r);
        r
    }
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BddManager {{ vars: {}, nodes: {} }}",
            self.num_vars,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_constants() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let nx = m.not(x);
        assert_eq!(m.and(x, nx), BddRef::ZERO);
        assert_eq!(m.or(x, nx), BddRef::ONE);
        assert_eq!(m.not(BddRef::ZERO), BddRef::ONE);
    }

    #[test]
    fn canonicity_merges_equivalent_builds() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        // (x & y) | (x & z) == x & (y | z)
        let a1 = m.and(x, y);
        let a2 = m.and(x, z);
        let lhs = m.or(a1, a2);
        let o = m.or(y, z);
        let rhs = m.and(x, o);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut m = BddManager::new(2);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let f_x1 = m.restrict(f, 0, true);
        let ny = m.not(y);
        assert_eq!(f_x1, ny);
        assert_eq!(m.restrict(f, 0, false), y);
    }

    #[test]
    fn exists_and_forall() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        assert_eq!(m.exists(f, &[0]), y);
        assert_eq!(m.forall(f, &[0]), BddRef::ZERO);
        let g = m.or(x, y);
        assert_eq!(m.exists(g, &[0]), BddRef::ONE);
        assert_eq!(m.forall(g, &[0]), y);
        // Quantifying everything yields a constant.
        assert_eq!(m.exists(f, &[0, 1]), BddRef::ONE);
    }

    #[test]
    fn and_exists_matches_composition() {
        let mut m = BddManager::new(4);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let w = m.var(3);
        let f = m.ite(x, y, z);
        let g = m.ite(y, z, w);
        let plain = {
            let c = m.and(f, g);
            m.exists(c, &[1, 2])
        };
        assert_eq!(m.and_exists(f, g, &[1, 2]), plain);
    }

    #[test]
    fn vector_compose_substitutes() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        // x := z, y := !z  =>  f == 0
        let nz = m.not(z);
        let subst = HashMap::from([(0u32, z), (1u32, nz)]);
        assert_eq!(m.vector_compose(f, &subst), BddRef::ZERO);
        // x := y  => f == y (idempotent conjunction)
        let subst2 = HashMap::from([(0u32, y)]);
        assert_eq!(m.vector_compose(f, &subst2), y);
    }

    #[test]
    fn sat_count_and_one_sat() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        assert_eq!(m.sat_count(f), 4.0); // 2 over (x,y) * 2 for z
        let asg = m.one_sat(f).unwrap();
        let concrete: Vec<bool> = asg.iter().map(|o| o.unwrap_or(false)).collect();
        assert!(m.eval(f, &concrete));
        assert_eq!(m.one_sat(BddRef::ZERO), None);
    }

    #[test]
    fn from_aig_agrees_with_eval() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let f = {
            let x = aig.xor(a.lit(), b.lit());
            aig.or(x, c.lit())
        };
        let mut m = BddManager::new(3);
        let map = HashMap::from([(a, 0u32), (b, 1u32), (c, 2u32)]);
        let bf = m.from_aig(&aig, f, &map, usize::MAX).unwrap();
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(aig.eval(f, &asg), m.eval(bf, &asg), "mask {mask}");
        }
    }

    #[test]
    fn from_aig_respects_cap() {
        // A wide xor chain grows the BDD; a tiny cap must abort it.
        let mut aig = Aig::new();
        let mut f = Lit::FALSE;
        let mut map = HashMap::new();
        for i in 0..16 {
            let v = aig.add_input();
            map.insert(v, i as u32);
            f = aig.xor(f, v.lit());
        }
        let mut m = BddManager::new(16);
        assert_eq!(m.from_aig(&aig, f, &map, 4), None);
        assert!(m.from_aig(&aig, f, &map, usize::MAX).is_some());
    }

    #[test]
    fn to_aig_roundtrip() {
        let mut m = BddManager::new(3);
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let t = m.xor(y, z);
        let f = m.ite(x, t, y);
        let mut aig = Aig::new();
        let lits: Vec<Lit> = (0..3).map(|_| aig.add_input().lit()).collect();
        let g = m.to_aig(&mut aig, f, &lits);
        for mask in 0..8u32 {
            let asg = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(m.eval(f, &asg), aig.eval(g, &asg));
        }
    }

    #[test]
    fn ordering_sensitivity_shows_in_size() {
        // f = (x0&x1) | (x2&x3) | (x4&x5): good order pairs adjacent vars.
        let mut aig = Aig::new();
        let vars: Vec<Var> = (0..6).map(|_| aig.add_input()).collect();
        let mut f = Lit::FALSE;
        for i in 0..3 {
            let t = aig.and(vars[2 * i].lit(), vars[2 * i + 1].lit());
            f = aig.or(f, t);
        }
        let good: HashMap<Var, u32> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, i as u32))
            .collect();
        // Bad order: x0,x2,x4 first then x1,x3,x5.
        let bad: HashMap<Var, u32> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let lvl = if i % 2 == 0 { i / 2 } else { 3 + i / 2 };
                (*v, lvl as u32)
            })
            .collect();
        let mut m1 = BddManager::new(6);
        let g = m1.from_aig(&aig, f, &good, usize::MAX).unwrap();
        let mut m2 = BddManager::new(6);
        let b = m2.from_aig(&aig, f, &bad, usize::MAX).unwrap();
        assert!(m1.size(g) < m2.size(b), "{} vs {}", m1.size(g), m2.size(b));
    }
}
