//! Prove safety properties with every complete engine in the registry,
//! comparing iteration counts and representation peaks — the paper's
//! circuit engine against the BDD baseline, k-induction, and friends,
//! all through the uniform `Engine`/`Budget` API.
//!
//! Run with: `cargo run --example safety_proof`

use std::time::Duration;

use cbq::ckt::generators;
use cbq::mc::registry;
use cbq::prelude::*;

fn main() {
    let nets = [
        generators::token_ring(8),
        generators::bounded_counter(6, 40),
        generators::gray_counter(6),
        generators::arbiter(5),
        generators::mutex(),
        generators::lfsr(7, &[0, 1, 3]),
    ];
    // Complete engines must close each proof inside this budget.
    let budget = Budget::unlimited().with_timeout(Duration::from_secs(30));
    println!(
        "{:<12} {:<12} {:>10} {:>10} {:>10} {:>8}",
        "circuit", "engine", "verdict", "iters", "peak", "ms"
    );
    for net in &nets {
        for spec in registry().iter().filter(|s| s.complete) {
            let run = (spec.build)().check(net, &budget);
            assert!(
                run.verdict.is_safe(),
                "{} via {}: {}",
                net.name(),
                spec.name,
                run.verdict
            );
            println!(
                "{:<12} {:<12} {:>10} {:>10} {:>10} {:>8.1}",
                net.name(),
                spec.name,
                "safe",
                run.stats.iterations,
                run.stats.peak_nodes,
                run.stats.elapsed.as_secs_f64() * 1e3
            );
        }
    }
    println!("\nall circuits proven safe by every complete engine ✓");
}
