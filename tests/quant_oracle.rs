//! Differential quantification oracle: on random AIGs small enough to
//! enumerate (≤ 10 inputs), `exists_many` must agree with truth-table
//! cofactor expansion for **every** configuration — each preset, each
//! variable order, both residual-completion policies, the interleaved
//! resweep, and the BDD baseline. The same oracle is applied to the
//! state-set sweeper: swept AIGs must be equivalent on all assignments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cbq::mc::ganai::all_solutions_exists;
use cbq::mc::sweep::{StateSetSweeper, SweepConfig};
use cbq::prelude::*;
use cbq::quant::{exists_bdd, VarOrder};

/// Number of random instances per test (fixed seeds: 0..CASES).
const CASES: u64 = 24;

/// Builds a random AIG over `n` inputs with `ops` random gates; returns
/// the manager, the full literal pool, and the last literal built.
fn random_aig(rng: &mut SmallRng, n: usize, ops: usize) -> (Aig, Vec<Lit>, Lit) {
    let mut aig = Aig::new();
    let mut pool: Vec<Lit> = (0..n).map(|_| aig.add_input().lit()).collect();
    for _ in 0..ops {
        let pick = |rng: &mut SmallRng, pool: &[Lit]| {
            let l = pool[rng.gen_range(0..pool.len())];
            l.xor_sign(rng.gen::<bool>())
        };
        let a = pick(rng, &pool);
        let b = pick(rng, &pool);
        let l = match rng.gen_range(0..3) {
            0 => aig.and(a, b),
            1 => aig.xor(a, b),
            _ => {
                let c = pick(rng, &pool);
                aig.ite(a, b, c)
            }
        };
        pool.push(l);
    }
    let root = *pool.last().expect("non-empty");
    (aig, pool, root)
}

/// The truth table of `∃vars. f` by cofactor expansion: entry `mask` is
/// true iff some assignment to `vars` (on top of `mask`) satisfies `f`.
fn exists_truth_table(aig: &Aig, f: Lit, vars: &[Var], n: usize) -> Vec<bool> {
    let var_idx: Vec<usize> = vars
        .iter()
        .map(|v| aig.input_index(*v).expect("quantified var is an input"))
        .collect();
    (0..1u32 << n)
        .map(|mask| {
            let mut asg: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 != 0).collect();
            (0..1u32 << var_idx.len()).any(|sub| {
                for (j, &vi) in var_idx.iter().enumerate() {
                    asg[vi] = (sub >> j) & 1 != 0;
                }
                aig.eval(f, &asg)
            })
        })
        .collect()
}

/// Asserts `result` matches the oracle table on every assignment (the
/// quantified variables were overwritten by the oracle loop, so a correct
/// result must not depend on them — checked via the support).
fn assert_matches_oracle(
    aig: &Aig,
    result: Lit,
    table: &[bool],
    vars: &[Var],
    n: usize,
    ctx: &str,
) {
    for v in vars {
        assert!(
            !aig.support_contains(result, *v),
            "{ctx}: quantified variable {v:?} still in support"
        );
    }
    for (mask, expect) in table.iter().enumerate() {
        let asg: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 != 0).collect();
        assert_eq!(
            aig.eval(result, &asg),
            *expect,
            "{ctx}: wrong value at assignment {mask:#b}"
        );
    }
}

/// Every preset × every variable order, plus the interleaved resweep.
fn configurations() -> Vec<(String, QuantConfig)> {
    let mut cfgs = Vec::new();
    let presets = [
        ("naive", QuantConfig::naive()),
        ("merge", QuantConfig::merge_only()),
        ("full", QuantConfig::full()),
    ];
    let orders = [
        VarOrder::CheapestFirst,
        VarOrder::StaticCost,
        VarOrder::AsGiven,
    ];
    for (pname, preset) in &presets {
        for order in orders {
            cfgs.push((
                format!("{pname}/{}", order.name()),
                preset.clone().with_order(order),
            ));
        }
    }
    cfgs.push((
        "full/resweep".to_string(),
        QuantConfig::full().with_resweep(1.0),
    ));
    cfgs
}

#[test]
fn every_configuration_matches_the_truth_table_oracle() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 4 + rng.gen_range(0..5); // 4..=8 inputs (≤ 10)
        let ops = 8 + rng.gen_range(0..18);
        let (aig0, _, f) = random_aig(&mut rng, n, ops);
        let nvars = 1 + rng.gen_range(0..3.min(n));
        let vars: Vec<Var> = (0..nvars).map(|i| aig0.input_var(i)).collect();
        let table = exists_truth_table(&aig0, f, &vars, n);
        for (name, cfg) in configurations() {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let res = exists_many(&mut aig, f, &vars, &mut cnf, &cfg);
            assert!(
                res.remaining.is_empty(),
                "seed {seed} {name}: unbudgeted run aborted variables"
            );
            let ctx = format!("seed {seed} cfg {name}");
            assert_matches_oracle(&aig, res.lit, &table, &vars, n, &ctx);
        }
        // The canonical baseline agrees too.
        let mut aig = aig0.clone();
        let (blit, _) = exists_bdd(&mut aig, f, &vars, usize::MAX).expect("no cap");
        assert_matches_oracle(&aig, blit, &table, &vars, n, &format!("seed {seed} bdd"));
    }
}

#[test]
fn budgeted_runs_complete_correctly_under_both_residual_policies() {
    // Partial quantification (tight growth budget) leaves residuals;
    // both residual policies — naive completion (`ResidualPolicy::Naive`)
    // and all-solutions enumeration (`ResidualPolicy::Enumerate`) — must
    // finish to the exact result.
    let mut saw_residuals = false;
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let n = 5 + rng.gen_range(0..4); // 5..=8 inputs
        let ops = 12 + rng.gen_range(0..20);
        let (aig0, _, f) = random_aig(&mut rng, n, ops);
        let nvars = 2 + rng.gen_range(0..2);
        let vars: Vec<Var> = (0..nvars).map(|i| aig0.input_var(i)).collect();
        let table = exists_truth_table(&aig0, f, &vars, n);
        let tight = QuantConfig::naive().with_budget(0.5);
        for policy in ["naive", "enumerate"] {
            let mut aig = aig0.clone();
            let mut cnf = AigCnf::new();
            let partial = exists_many(&mut aig, f, &vars, &mut cnf, &tight);
            // Soundness of the partial result itself: quantifying the
            // residuals by truth table must reproduce the oracle.
            let partial_table = exists_truth_table(&aig, partial.lit, &partial.remaining, n);
            assert_eq!(
                partial_table, table,
                "seed {seed}: partial result is not ∃remaining-equivalent"
            );
            saw_residuals |= !partial.remaining.is_empty();
            let finished = match policy {
                "naive" => {
                    exists_many(
                        &mut aig,
                        partial.lit,
                        &partial.remaining,
                        &mut cnf,
                        &QuantConfig::naive(),
                    )
                    .lit
                }
                _ => {
                    all_solutions_exists(&mut aig, partial.lit, &partial.remaining, &mut cnf, 4096)
                        .expect("enumeration converges on tiny instances")
                        .0
                }
            };
            let ctx = format!("seed {seed} residual policy {policy}");
            assert_matches_oracle(&aig, finished, &table, &vars, n, &ctx);
        }
    }
    assert!(
        saw_residuals,
        "the tight budget never aborted anything — the test exercises nothing"
    );
}

#[test]
fn swept_aigs_are_equivalent_on_all_assignments() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let n = 4 + rng.gen_range(0..5);
        let ops = 12 + rng.gen_range(0..24);
        let (mut aig, pool, root) = random_aig(&mut rng, n, ops);
        // A few live roots spread across the pool, plus the main root.
        let mut roots = vec![root];
        for _ in 0..2 {
            roots.push(pool[rng.gen_range(0..pool.len())]);
        }
        let reference = std::mem::replace(&mut aig, Aig::new());
        let ref_roots = roots.clone();
        let vars: Vec<Var> = (0..n).map(|i| reference.input_var(i)).collect();
        // Sweep with gc on and off; both must preserve semantics.
        for gc in [true, false] {
            let mut work = reference.clone();
            let mut work_roots = ref_roots.clone();
            let mut work_vars = vars.clone();
            let mut cnf = AigCnf::new();
            let cfg = SweepConfig {
                gc,
                ..SweepConfig::eager()
            };
            let mut sweeper = StateSetSweeper::new(cfg);
            let lit_refs: Vec<&mut Lit> = work_roots.iter_mut().collect();
            let var_refs: Vec<&mut Var> = work_vars.iter_mut().collect();
            sweeper.run(&mut work, &mut cnf, lit_refs, var_refs);
            for mask in 0..1u32 << n {
                let asg: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 != 0).collect();
                for (orig, swept) in ref_roots.iter().zip(&work_roots) {
                    assert_eq!(
                        reference.eval(*orig, &asg),
                        work.eval(*swept, &asg),
                        "seed {seed} gc={gc}: sweep changed semantics at {mask:#b}"
                    );
                }
            }
            // Remapped vars must still name the same input ordinals.
            for (i, v) in work_vars.iter().enumerate() {
                assert_eq!(work.input_index(*v), Some(i), "seed {seed}: ordinal moved");
            }
        }
    }
}
